//! End-to-end tests for the NCT trace subsystem (`TRACE_FORMAT.md`):
//!
//! * the headline guarantee — replaying a captured trace through
//!   `WorkloadAssignment::from_trace_file` reproduces the live-generator
//!   run's `SimReport` byte-for-byte;
//! * a property-based encode/decode round-trip over randomized streams;
//! * structured (panic-free) errors on missing, truncated, bad-magic and
//!   checksum-corrupted files;
//! * the golden fixture `tests/golden/example.nct`, pinned three ways:
//!   against the in-code encoder, against the worked hex dump embedded in
//!   `TRACE_FORMAT.md` §6, and against a golden replay report
//!   (`tests/golden/replay_example.json`).
//!
//! Bless intentional format or timing changes with
//! `UPDATE_GOLDEN=1 cargo test --test trace_replay` and review the diff.

use nocstar::prelude::*;
use nocstar::types::VirtPageNum;
use nocstar::workloads::nct::{NctFile, ThreadStream};
use nocstar::workloads::trace::{MemAccess, TraceEvent, TraceSource};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

const CORES: usize = 4;
const WARMUP: u64 = 200;
const MEASURE: u64 = 500;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

fn pretty_report(report: &SimReport) -> String {
    let mut text = report.to_json().to_string_pretty();
    text.push('\n');
    text
}

/// The headline acceptance test: a trace captured from the Redis preset
/// with the simulator's defaults (ASID 1, seed 0xcafe, THP on), replayed
/// through `from_trace_file`, produces a byte-identical report to the
/// live-generator run with the same configuration.
#[test]
fn replaying_a_captured_trace_is_byte_identical_to_the_live_run() {
    let config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    let live = Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis))
        .run_measured(WARMUP, MEASURE);

    // Capture more events per thread than the run consumes (warmup +
    // measure accesses plus the occasional remap) so replay never wraps.
    let spec = Preset::Redis.spec();
    let traces: Vec<RecordedTrace> = (0..config.threads())
        .map(|t| {
            let mut src = spec.trace(Asid::new(1), ThreadId::new(t), config.seed, config.thp);
            RecordedTrace::capture(&mut src, 1_200)
        })
        .collect();
    let path = scratch("redis_equivalence.nct");
    NctFile::from_recorded(&traces, "redis")
        .expect("assemble")
        .save(&path)
        .expect("save");

    let replayed = Simulation::new(
        config,
        WorkloadAssignment::from_trace_file(&config, &path).expect("open trace"),
    )
    .run_measured(WARMUP, MEASURE);

    assert_eq!(
        pretty_report(&live),
        pretty_report(&replayed),
        "replay of a captured trace must reproduce the live run exactly"
    );
}

/// Builds a deterministic but irregular event stream from a seed, hitting
/// every event kind and delta sign.
fn synth_events(seed: u64, n: usize) -> (Vec<TraceEvent>, BTreeSet<u64>) {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — plenty for test-case diversity.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut frames = BTreeSet::new();
    let events = (0..n)
        .map(|_| match next() % 10 {
            0 => TraceEvent::ContextSwitch,
            1 => TraceEvent::Remap(VirtPageNum::new(next() >> 12, PageSize::Size4K)),
            2 => TraceEvent::Promote(VirtPageNum::new(next() >> 43, PageSize::Size2M)),
            3 => TraceEvent::Demote(VirtPageNum::new(next() >> 43, PageSize::Size2M)),
            _ => {
                let va = next();
                if next() % 3 == 0 {
                    frames.insert(va >> 21);
                }
                TraceEvent::Access(MemAccess {
                    va: VirtAddr::new(va),
                    is_write: next() % 2 == 0,
                    gap: Cycles::new(next() % 64),
                })
            }
        })
        .collect();
    (events, frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary multi-thread streams survive an encode/decode round trip
    /// exactly: events, frame tables, ASID and label all come back.
    #[test]
    fn prop_nct_round_trips(seed in any::<u64>(), n in 1usize..600, threads in 1usize..4,
                            asid in 1u16..100) {
        let streams: Vec<ThreadStream> = (0..threads)
            .map(|t| {
                let (events, superpage_frames) = synth_events(seed ^ (t as u64) << 32, n);
                ThreadStream { superpage_frames, events }
            })
            .collect();
        let original = NctFile::new(Asid::new(asid), format!("prop-{seed:x}"), streams)
            .expect("assemble");
        let decoded = NctFile::parse(&original.to_bytes()).expect("round trip");
        prop_assert_eq!(decoded.asid(), original.asid());
        prop_assert_eq!(decoded.label(), original.label());
        prop_assert_eq!(decoded.threads().len(), original.threads().len());
        for (d, o) in decoded.threads().iter().zip(original.threads()) {
            prop_assert_eq!(&d.events, &o.events);
            prop_assert_eq!(&d.superpage_frames, &o.superpage_frames);
        }
    }
}

#[test]
fn missing_truncated_and_corrupt_files_fail_with_structured_errors() {
    let (events, superpage_frames) = synth_events(7, 300);
    let file = NctFile::new(
        Asid::new(3),
        "errors",
        vec![ThreadStream {
            superpage_frames,
            events,
        }],
    )
    .expect("assemble");
    let bytes = file.to_bytes();

    // Missing file.
    assert!(matches!(
        FileTrace::open("/no/such/trace.nct", 0),
        Err(NctError::Io(_))
    ));

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    let path = scratch("bad_magic.nct");
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(FileTrace::open(&path, 0), Err(NctError::BadMagic)));

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[8] = 0x7f;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        FileTrace::open(&path, 0),
        Err(NctError::UnsupportedVersion(0x7f))
    ));

    // Every truncation point fails cleanly (no panic), with a Truncated /
    // Corrupt / Io error depending on what got cut.
    for cut in [10, 23, 30, 45, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("write");
        let err = FileTrace::open(&path, 0).expect_err("truncation must fail");
        assert!(
            matches!(
                err,
                NctError::Truncated(_) | NctError::Corrupt(_) | NctError::Io(_)
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }

    // A flipped payload byte trips the block checksum.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        FileTrace::open(&path, 0),
        Err(NctError::ChecksumMismatch {
            thread: 0,
            block: 0
        }) | Err(NctError::Corrupt(_))
            | Err(NctError::Truncated(_))
    ));

    // Out-of-range thread index.
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        FileTrace::open(&path, 9),
        Err(NctError::BadThreadIndex {
            requested: 9,
            available: 1
        })
    ));
}

/// The worked example of `TRACE_FORMAT.md` §6, built with the public API.
fn example_file() -> NctFile {
    let events = vec![
        TraceEvent::Access(MemAccess {
            va: VirtAddr::new(0x2000),
            is_write: false,
            gap: Cycles::new(5),
        }),
        TraceEvent::Access(MemAccess {
            va: VirtAddr::new(0x20_3008),
            is_write: true,
            gap: Cycles::new(2),
        }),
        TraceEvent::Promote(VirtPageNum::new(1, PageSize::Size2M)),
    ];
    let superpage_frames: BTreeSet<u64> = [1u64].into_iter().collect();
    NctFile::new(
        Asid::new(7),
        "example",
        vec![ThreadStream {
            superpage_frames,
            events,
        }],
    )
    .expect("assemble example")
}

/// The encoder output for the worked example must match the checked-in
/// fixture byte for byte — this is what makes `TRACE_FORMAT.md` normative.
#[test]
fn golden_fixture_matches_spec() {
    let actual = example_file().to_bytes();
    let path = golden_dir().join("example.nct");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v != "0") {
        std::fs::write(&path, &actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read(&path).expect("read tests/golden/example.nct");
    assert_eq!(
        actual, expected,
        "encoder output drifted from the golden fixture; if the format \
         changed intentionally, bump the version, update TRACE_FORMAT.md \
         and regenerate with UPDATE_GOLDEN=1 cargo test --test trace_replay"
    );
}

/// The hex dump printed in `TRACE_FORMAT.md` §6 is the fixture: the spec
/// cannot silently drift from the bytes.
#[test]
fn spec_hex_dump_matches_fixture() {
    let md =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("TRACE_FORMAT.md"))
            .expect("read TRACE_FORMAT.md");
    let mut from_spec = Vec::new();
    for line in md.lines() {
        let Some((addr, rest)) = line.split_once(": ") else {
            continue;
        };
        if addr.len() != 8 || !addr.chars().all(|c| c.is_ascii_hexdigit()) {
            continue;
        }
        // xxd layout: 39 columns of hex groups, two spaces, ASCII gutter.
        let hex_cols = &rest[..rest.len().min(39)];
        for group in hex_cols.split_whitespace() {
            assert!(group.len() % 2 == 0, "odd hex group {group:?}");
            for pair in (0..group.len()).step_by(2) {
                let byte = u8::from_str_radix(&group[pair..pair + 2], 16)
                    .unwrap_or_else(|e| panic!("bad hex {group:?}: {e}"));
                from_spec.push(byte);
            }
        }
    }
    let fixture = std::fs::read(golden_dir().join("example.nct")).expect("read fixture");
    assert_eq!(
        from_spec, fixture,
        "the worked example in TRACE_FORMAT.md no longer matches \
         tests/golden/example.nct"
    );
}

/// Replaying the 3-event golden fixture (wrapping as needed) is itself a
/// golden-report regression test: it pins the whole replay path's timing.
#[test]
fn golden_fixture_replays_to_a_golden_report() {
    let config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    let workload = WorkloadAssignment::from_trace_file(&config, golden_dir().join("example.nct"))
        .expect("open fixture");
    let report = Simulation::new(config, workload).run_measured(WARMUP, MEASURE);
    assert_eq!(report.label, "example");
    let actual = pretty_report(&report);
    let path = golden_dir().join("replay_example.json");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v != "0") {
        std::fs::write(&path, &actual).expect("write golden replay report");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden replay report {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test trace_replay to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "replay of the golden fixture drifted; if intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --test trace_replay"
    );
}

/// `FileTrace` looping matches the in-memory `RecordedTrace` replay
/// semantics event for event, including across the wrap point.
#[test]
fn file_replay_matches_recorded_replay_across_wrap() {
    let spec = Preset::Gups.spec();
    let mut src = spec.trace(Asid::new(1), ThreadId::new(0), 0xcafe, true);
    let recorded = RecordedTrace::capture(&mut src, 150);
    let path = scratch("wrap.nct");
    NctFile::from_recorded(std::slice::from_ref(&recorded), "gups")
        .expect("assemble")
        .save(&path)
        .expect("save");
    let mut replay = FileTrace::open(&path, 0).expect("open");
    for i in 0..450 {
        assert_eq!(
            replay.next_event(),
            recorded.events()[i % 150],
            "event {i} diverged"
        );
    }
}
