//! Golden-report regression harness.
//!
//! One small, fixed simulation per L2 organization is serialized to JSON
//! and compared byte-for-byte against a checked-in snapshot under
//! `tests/golden/`. Any change to simulated timing, statistics, metric
//! names, or the serialization format shows up as a readable diff here.
//!
//! To bless intentional changes, regenerate the snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and review the resulting `tests/golden/*.json` diff like any other
//! code change.

use nocstar::prelude::*;
use std::path::PathBuf;

const CORES: usize = 4;
const WARMUP: u64 = 200;
const MEASURE: u64 = 500;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_json(org: TlbOrg) -> String {
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = true;
    // A tiny ring keeps the snapshot readable while still pinning the
    // trace serialization format and the drop accounting.
    config.trace_capacity = 32;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let report = Simulation::new(config, workload).run_measured(WARMUP, MEASURE);
    let mut text = report.to_json().to_string_pretty();
    text.push('\n');
    text
}

fn check_golden(name: &str, org: TlbOrg) {
    let actual = golden_json(org);
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test golden_reports to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "report for `{name}` drifted from {}; if intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --test golden_reports",
        path.display()
    );
}

#[test]
fn golden_private() {
    check_golden("private", TlbOrg::paper_private());
}

#[test]
fn golden_monolithic() {
    check_golden("monolithic", TlbOrg::paper_monolithic(CORES));
}

#[test]
fn golden_distributed() {
    check_golden("distributed", TlbOrg::paper_distributed());
}

#[test]
fn golden_nocstar() {
    check_golden("nocstar", TlbOrg::paper_nocstar());
}

#[test]
fn golden_ideal() {
    check_golden("ideal", TlbOrg::paper_ideal());
}

#[test]
fn golden_hier() {
    // Two clusters of two tiles: small enough to read, yet it exercises
    // all three hierarchical legs (intra-source, overlay, intra-dest).
    check_golden("hier", TlbOrg::paper_hier(2));
}

#[test]
fn golden_recovery() {
    // A faulted distributed run under the full recovery policy: pins the
    // recovery.* metric names, the detect→recovered percentiles, and the
    // exact closed-loop timing. The plan keeps one slice offline across
    // the measurement window and kills every link briefly, so re-homing,
    // re-routing/escalation, and the handoff path all leave fingerprints.
    let org = TlbOrg::paper_distributed();
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = true;
    config.trace_capacity = 32;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let plan = FaultPlan::parse("link:*@26000-27500=off; slice:1@24000-40000").expect("valid plan");
    let report = Simulation::new(config, workload)
        .with_faults(plan)
        .with_recovery(RecoveryPolicy::all())
        .run_measured(WARMUP, MEASURE);
    let mut actual = report.to_json().to_string_pretty();
    actual.push('\n');
    let path = golden_dir().join("recovery.json");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test golden_reports to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "recovery report drifted from {}; if intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --test golden_reports",
        path.display()
    );
}
