//! Integration tests pinning the paper's qualitative claims, so a
//! regression that flips a headline conclusion fails the suite (absolute
//! numbers are asserted loosely; EXPERIMENTS.md records the exact values).

use nocstar::noc::circuit::{AcquireMode, CircuitFabric};
use nocstar::noc::mesh::MeshNoc;
use nocstar::noc::traffic::run_uniform_random;
use nocstar::prelude::*;

fn speedup(cores: usize, org: TlbOrg, preset: Preset) -> f64 {
    let go = |org: TlbOrg| {
        let config = SystemConfig::new(cores, org);
        Simulation::new(config, WorkloadAssignment::preset(&config, preset))
            .run_measured(4_000, 6_000)
    };
    go(org).speedup_vs(&go(TlbOrg::paper_private()))
}

#[test]
fn claim_nocstar_beats_private_and_distributed_beats_monolithic() {
    // §V performance: NOCSTAR > private; distributed > monolithic.
    for preset in [Preset::Canneal, Preset::Gups] {
        let nocstar = speedup(16, TlbOrg::paper_nocstar(), preset);
        let distributed = speedup(16, TlbOrg::paper_distributed(), preset);
        let monolithic = speedup(16, TlbOrg::paper_monolithic(16), preset);
        assert!(nocstar > 1.0, "{preset}: nocstar {nocstar}");
        assert!(nocstar > distributed, "{preset}");
        assert!(distributed > monolithic, "{preset}");
        assert!(monolithic < 1.0, "{preset}: monolithic should degrade");
    }
}

#[test]
fn claim_nocstar_within_95_percent_of_ideal() {
    let nocstar = speedup(16, TlbOrg::paper_nocstar(), Preset::Canneal);
    let ideal = speedup(16, TlbOrg::paper_ideal(), Preset::Canneal);
    assert!(
        nocstar / ideal > 0.93,
        "nocstar {nocstar} vs ideal {ideal}: ratio {:.3}",
        nocstar / ideal
    );
}

#[test]
fn claim_fabric_latency_stays_low_at_tlb_like_injection_rates() {
    // §V interconnect: at 0.1 msgs/core/cycle the fabric's average
    // latency stays within ~3 cycles.
    let mesh = MeshShape::square_for(64);
    let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
    let report = run_uniform_random(&mut fabric, mesh, 0.1, 3_000, 1);
    assert!(
        report.mean_latency <= 3.5,
        "fabric latency {} at rate 0.1",
        report.mean_latency
    );
}

#[test]
fn claim_fabric_beats_multi_hop_mesh_under_load() {
    let mesh = MeshShape::square_for(64);
    let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
    let fab = run_uniform_random(&mut fabric, mesh, 0.05, 2_000, 2);
    let mut multihop = MeshNoc::contended(mesh);
    let mh = run_uniform_random(&mut multihop, mesh, 0.05, 2_000, 2);
    assert!(fab.mean_latency * 2.0 < mh.mean_latency);
}

#[test]
fn claim_one_way_acquire_beats_round_trip() {
    // Fig 16 (left): acquiring links separately for each message delivers
    // better performance than round-trip reservation.
    let go = |acquire: AcquireMode| {
        let org = TlbOrg::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
            acquire,
            ideal_fabric: false,
        };
        let config = SystemConfig::new(16, org);
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Gups))
            .run_measured(3_000, 5_000)
    };
    let one_way = go(AcquireMode::OneWay);
    let round_trip = go(AcquireMode::RoundTrip);
    assert!(
        one_way.cycles <= round_trip.cycles,
        "one-way {} vs round-trip {}",
        one_way.cycles,
        round_trip.cycles
    );
}

#[test]
#[ignore = "nightly: 512/1024-core scale-up comparison (run with --release)"]
fn claim_hier_beats_flat_mesh_at_scale() {
    // The scale-up motivation for the hierarchical fabric: past a few
    // hundred cores the flat mesh's ~2*sqrt(N) hop latency dominates every
    // shared-L2 lookup, while the cluster fabric keeps lookups inside a
    // one-cycle bus and pays the overlay only on shootdowns. Average
    // translation latency must favor `hier` at 512 and 1024 cores.
    let go = |cores: usize, org: TlbOrg| {
        let config = SystemConfig::new(cores, org);
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis))
            .run_measured(300, 700)
    };
    for cores in [512usize, 1024] {
        let hier = go(cores, TlbOrg::paper_hier(16));
        let mesh = go(cores, TlbOrg::paper_distributed());
        let (h, m) = (
            hier.translation_latency.mean(),
            mesh.translation_latency.mean(),
        );
        assert!(
            h < m,
            "{cores} cores: hier latency {h:.2} >= flat mesh {m:.2}"
        );
    }
}

#[test]
fn claim_superpages_cut_shared_l2_misses() {
    // Fig 13 rationale: superpages reduce shared-L2 misses.
    let go = |thp: bool| {
        let mut config = SystemConfig::new(16, TlbOrg::paper_nocstar());
        config.thp = thp;
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Canneal))
            .run_measured(4_000, 6_000)
    };
    let with = go(true);
    let without = go(false);
    assert!(
        with.l2.misses() < without.l2.misses(),
        "THP {} vs 4K-only {}",
        with.l2.misses(),
        without.l2.misses()
    );
}

#[test]
fn claim_shared_tlbs_save_translation_energy() {
    // Fig 14 (right): shared organizations save address-translation
    // energy by eliminating page walks; the savings grow with core count
    // (more aggregate capacity eliminates more of the DRAM-bound walks).
    let go = |org: TlbOrg| {
        let config = SystemConfig::new(32, org);
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Canneal))
            .run_measured(8_000, 10_000)
    };
    let private = go(TlbOrg::paper_private());
    let nocstar = go(TlbOrg::paper_nocstar());
    let saved = nocstar.energy.percent_saved_vs(&private.energy);
    assert!(saved > 5.0, "only {saved:.0}% translation energy saved");
    assert!(nocstar.walks < private.walks);
    assert!(nocstar.energy.walk_pj < private.energy.walk_pj);
}
