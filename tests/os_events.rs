//! Integration tests for OS-driven TLB events: shootdowns, superpage
//! promotion/demotion storms, context switches, and the functional
//! correctness of translations across remaps.

use nocstar::mem::{MemoryConfig, MemorySystem};
use nocstar::prelude::*;
use nocstar::workloads::microbench::StormTrace;
use nocstar::workloads::trace::{TraceEvent, TraceSource};

#[test]
fn remap_changes_the_translation_functionally() {
    let mut mem = MemorySystem::new(MemoryConfig::haswell(1));
    let asid = Asid::new(1);
    let va = VirtAddr::new(0x1234_5678);
    mem.ensure_mapped(asid, va, PageSize::Size4K);
    let before = mem.translate(asid, va).unwrap().1;
    let vpn = va.page_number(PageSize::Size4K);
    let after = mem.remap(asid, vpn).unwrap();
    assert_ne!(before, after);
    assert_eq!(mem.translate(asid, va).unwrap().1, after);
}

#[test]
fn shootdown_heavy_workloads_complete_on_every_shared_org() {
    for org in [
        TlbOrg::paper_monolithic(8),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
    ] {
        let config = SystemConfig::new(8, org);
        let mut spec = Preset::Redis.spec();
        spec.remaps_per_million = 5_000.0;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let r = Simulation::new(config, workload).run(1_500);
        assert!(r.shootdowns > 0, "{}: no shootdowns happened", r.org_label);
        assert_eq!(r.accesses, 8 * 1_500);
    }
}

#[test]
fn leader_policies_all_drain_shootdowns() {
    for leader in [
        LeaderPolicy::EveryCore,
        LeaderPolicy::PerGroup(4),
        LeaderPolicy::Single,
    ] {
        let mut config = SystemConfig::new(8, TlbOrg::paper_nocstar());
        config.leader_policy = leader;
        let mut spec = Preset::Gups.spec();
        spec.remaps_per_million = 5_000.0;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let r = Simulation::new(config, workload).run(1_500);
        assert!(r.shootdowns > 0);
    }
}

#[test]
fn shootdown_storms_survive_degraded_links_under_every_leader_policy() {
    // Fault-injected IPI storms (`storm@` forces full broadcasts) on top of
    // degraded links, across all three shared organizations and all three
    // leader policies: the shootdown protocol must still drain every
    // invalidation and complete the full access quota.
    let plan: FaultPlan = "storm@0-10000000; link:*@0-10000000=+2"
        .parse()
        .expect("storm plan");
    for org in [
        TlbOrg::paper_monolithic(8),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
    ] {
        for leader in [
            LeaderPolicy::EveryCore,
            LeaderPolicy::PerGroup(4),
            LeaderPolicy::Single,
        ] {
            let mut config = SystemConfig::new(8, org);
            config.leader_policy = leader;
            let mut spec = Preset::Redis.spec();
            spec.remaps_per_million = 5_000.0;
            let assignment = || WorkloadAssignment::homogeneous(&config, spec);
            let clean = Simulation::new(config, assignment()).run(1_500);
            let stormy = Simulation::new(config, assignment())
                .with_faults(plan.clone())
                .run(1_500);
            assert_eq!(
                stormy.accesses,
                8 * 1_500,
                "{} / {:?}: lost accesses under storm",
                stormy.org_label,
                leader
            );
            assert!(
                stormy.shootdowns >= clean.shootdowns,
                "{} / {:?}: storm relayed fewer shootdowns ({} < {})",
                stormy.org_label,
                leader,
                stormy.shootdowns,
                clean.shootdowns
            );
            assert!(
                stormy.cycles >= clean.cycles,
                "{} / {:?}: degraded storm run was faster ({} < {})",
                stormy.org_label,
                leader,
                stormy.cycles,
                clean.cycles
            );
        }
    }
}

#[test]
fn storm_workloads_flush_and_invalidate() {
    let config = SystemConfig::new(8, TlbOrg::paper_nocstar());
    let workload = WorkloadAssignment::storm(&config, Preset::Canneal, 500, 700);
    let r = Simulation::new(config, workload).run(2_000);
    assert!(r.flushes > 0, "storms must context-switch");
    assert!(
        r.shootdowns > 500,
        "superpage churn should shoot down hundreds of pages, saw {}",
        r.shootdowns
    );
    assert_eq!(r.accesses, 8 * 2_000);
}

#[test]
fn storms_hurt_every_organization() {
    // The storm must slow things down relative to running alone (Fig 19's
    // alone vs w/ub gap), whatever the organization.
    for org in [TlbOrg::paper_private(), TlbOrg::paper_nocstar()] {
        let config = SystemConfig::new(8, org);
        let alone = Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Canneal))
            .run(2_000);
        let stormy = Simulation::new(
            config,
            WorkloadAssignment::storm(&config, Preset::Canneal, 500, 700),
        )
        .run(2_000);
        assert!(
            stormy.cycles > alone.cycles,
            "{}: storm {} <= alone {}",
            alone.org_label,
            stormy.cycles,
            alone.cycles
        );
    }
}

#[test]
fn storm_trace_promotions_map_then_invalidate() {
    // Run the storm trace's OS events through a real memory system: every
    // Promote must produce 512 stale pages and leave a live 2 MiB mapping.
    let spec = Preset::Gups.spec();
    let inner = spec.trace(Asid::new(1), ThreadId::new(0), 3, true);
    let mut storm = StormTrace::new(inner, 10_000, 50);
    let mut mem = MemorySystem::new(MemoryConfig::haswell(1));
    let mut promotes = 0;
    for _ in 0..300 {
        if let TraceEvent::Promote(v2m) = storm.next_event() {
            for i in 0..v2m.page_size().base_pages() {
                let va = VirtAddr::new(v2m.base().value() + i * 4096);
                mem.ensure_mapped(Asid::new(1), va, PageSize::Size4K);
            }
            let stale = mem.promote(Asid::new(1), v2m).expect("promotable");
            assert_eq!(stale.len(), 512);
            assert!(mem.translate(Asid::new(1), v2m.base()).is_some());
            promotes += 1;
        }
    }
    assert!(promotes >= 4, "only {promotes} promotions seen");
}

#[test]
fn slice_hammer_congests_the_victim_slice() {
    let config = SystemConfig::new(8, TlbOrg::paper_nocstar());
    let workload = WorkloadAssignment::slice_hammer(&config, Preset::Canneal, 512);
    let r = Simulation::new(config, workload).run(2_000);
    // The victim slice (last) must see far more traffic than the average
    // of the others.
    let victim = r.per_structure.last().unwrap().accesses();
    let others: u64 = r.per_structure[..7].iter().map(|s| s.accesses()).sum();
    assert!(
        victim > others,
        "victim {} vs all others {}",
        victim,
        others
    );
}
