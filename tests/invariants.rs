//! Property-style invariants over randomized small system configurations:
//! whatever the organization, policies and workload, a simulation must
//! complete its exact work quota, conserve its transaction accounting, and
//! stay deterministic.

use nocstar::prelude::*;
use proptest::prelude::*;

fn arb_org() -> impl Strategy<Value = TlbOrg> {
    prop_oneof![
        Just(TlbOrg::paper_private()),
        Just(TlbOrg::paper_distributed()),
        Just(TlbOrg::paper_nocstar()),
        Just(TlbOrg::paper_ideal()),
        Just(TlbOrg::paper_monolithic(8)),
        Just(TlbOrg::Nocstar {
            slice_entries: 920,
            hpc_max: 4,
            acquire: AcquireMode::RoundTrip,
            ideal_fabric: false,
        }),
    ]
}

fn arb_preset() -> impl Strategy<Value = Preset> {
    prop::sample::select(Preset::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every configuration completes exactly the requested work, with
    /// consistent transaction accounting.
    #[test]
    fn prop_simulations_complete_and_balance(
        org in arb_org(),
        preset in arb_preset(),
        seed in 0u64..1000,
        smt in 1usize..=2,
        walk_remote in any::<bool>(),
    ) {
        let mut config = SystemConfig::new(8, org);
        config.seed = seed;
        config.smt = smt;
        config.walk_policy = if walk_remote {
            WalkPolicy::AtRemote
        } else {
            WalkPolicy::AtRequester
        };
        let workload = WorkloadAssignment::preset(&config, preset);
        let report = Simulation::new(config, workload).run(400);

        prop_assert_eq!(report.accesses, 400 * config.threads() as u64);
        // Every L1 miss became exactly one L2 transaction, tracked once.
        prop_assert_eq!(report.chip_concurrency.total(), report.l1.misses());
        prop_assert_eq!(report.chip_concurrency.total(), report.slice_concurrency.total());
        // Walks only happen on L2 misses.
        prop_assert_eq!(report.walks, report.l2.misses());
        // Per-thread finishes bound the makespan.
        let max_finish = *report.per_thread_finish.iter().max().unwrap();
        prop_assert_eq!(max_finish, report.cycles);
        // Work takes at least gap * accesses cycles per thread.
        prop_assert!(report.cycles > 400);
        // Energy is positive and finite.
        prop_assert!(report.energy.total_pj() > 0.0);
        prop_assert!(report.energy.total_pj().is_finite());
    }

    /// Identical configurations are bit-for-bit reproducible.
    #[test]
    fn prop_determinism(org in arb_org(), seed in 0u64..50) {
        let go = || {
            let mut config = SystemConfig::new(4, org);
            config.seed = seed;
            let workload = WorkloadAssignment::preset(&config, Preset::Olio);
            Simulation::new(config, workload).run(300)
        };
        let a = go();
        let b = go();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.per_thread_finish, b.per_thread_finish);
        prop_assert_eq!(a.walks, b.walks);
        prop_assert_eq!(a.l2.hits(), b.l2.hits());
    }

    /// Changing only the seed changes the trace but not the accounting
    /// invariants.
    #[test]
    fn prop_seed_changes_trace_not_invariants(seed in 1u64..500) {
        let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
        config.seed = seed;
        let workload = WorkloadAssignment::preset(&config, Preset::Gups);
        let report = Simulation::new(config, workload).run(300);
        prop_assert_eq!(report.accesses, 1200);
        prop_assert_eq!(report.walks, report.l2.misses());
    }
}

#[test]
fn warmup_and_plain_runs_agree_on_work_accounting() {
    let config = SystemConfig::new(4, TlbOrg::paper_nocstar());
    let warm = Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis))
        .run_measured(500, 700);
    assert_eq!(warm.accesses, 4 * 700);
    assert_eq!(warm.per_thread_finish.len(), 4);
    assert_eq!(warm.cycles, *warm.per_thread_finish.iter().max().unwrap());
}
