//! Chaos suite for the deterministic fault-injection subsystem.
//!
//! The contract under test:
//!
//! 1. **Nothing is lost.** Under any fault schedule, every hardware thread
//!    still completes its full access quota — faults cost cycles, never
//!    translations.
//! 2. **Faults are deterministic.** The same configuration plus the same
//!    plan serializes to byte-identical reports, run after run.
//! 3. **An empty plan is free.** Installing an empty [`FaultPlan`] is
//!    byte-identical to never calling `with_faults` at all.
//! 4. **Degradation is graceful.** Whole-run fault windows complete with
//!    at least the fault-free cycle count.
//! 5. **Wedged runs fail loudly.** A deliberately unrecoverable fabric
//!    produces a typed [`SimError`] with a populated diagnostic snapshot
//!    and a partial report — never a panic or an infinite loop.

use nocstar::prelude::*;

const CORES: usize = 8;
const ACCESSES: u64 = 600;

fn sim(org: TlbOrg, metrics: bool) -> Simulation {
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = metrics;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    Simulation::new(config, workload)
}

fn faulted_json(org: TlbOrg, spec: &str) -> String {
    sim(org, true)
        .with_faults(spec.parse().expect("spec"))
        .run(ACCESSES)
        .to_json()
        .to_string()
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    for org in [
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_monolithic(CORES),
    ] {
        let plain = sim(org, true).run(ACCESSES).to_json().to_string();
        let empty = sim(org, true)
            .with_faults(FaultPlan::default())
            .run(ACCESSES)
            .to_json()
            .to_string();
        assert_eq!(plain, empty, "empty plan altered a {} run", org.label());
    }
}

#[test]
fn faulted_runs_are_byte_identical_across_repeats() {
    let spec = "seed=7; deny@500-4000; link:*@0-60000=+1; walk@1000-20000=x4; \
                slice:2@0-30000; storm@0-60000";
    let first = faulted_json(TlbOrg::paper_nocstar(), spec);
    let second = faulted_json(TlbOrg::paper_nocstar(), spec);
    assert_eq!(first, second);
}

#[test]
fn faulted_runs_are_domain_invariant() {
    // Fault windows key off simulated cycles, and the parallel driver
    // replays the exact sequential schedule — so a faulted 4-domain run
    // must serialize byte-identically to the faulted sequential run.
    let spec = "seed=7; deny@500-4000; link:*@0-60000=+1; walk@1000-20000=x4; \
                slice:2@0-30000; storm@0-60000";
    let faulted_domains = |domains: usize| -> String {
        let mut config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
        config.metrics = true;
        config.parallel_domains = domains;
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        Simulation::new(config, workload)
            .with_faults(spec.parse().expect("spec"))
            .run(ACCESSES)
            .to_json()
            .to_string()
    };
    assert_eq!(faulted_domains(1), faulted_domains(4));
}

#[test]
fn no_translation_is_lost_under_any_fault_class() {
    // One directed run per fault class, windows covering the entire run.
    // `run` only returns once every thread finished its quota, so a
    // completed run with the right access count *is* the no-loss proof.
    let specs = [
        "deny@0-10000000",
        "link:*@0-10000000=+3",
        "link:*@0-10000000=off; retry=6",
        "walk@0-10000000=x8",
        "slice:0@0-10000000; slice:3@0-10000000",
        "storm@0-10000000",
        // Everything at once.
        "deny@0-10000000; link:*@0-10000000=+2; walk@0-10000000=x4; \
         slice:1@0-10000000; storm@0-10000000; retry=8",
    ];
    let baseline = sim(TlbOrg::paper_nocstar(), false).run(ACCESSES);
    assert_eq!(baseline.accesses, CORES as u64 * ACCESSES);
    for spec in specs {
        let r = sim(TlbOrg::paper_nocstar(), false)
            .with_faults(spec.parse().expect("spec"))
            .run(ACCESSES);
        assert_eq!(
            r.accesses,
            CORES as u64 * ACCESSES,
            "lost translations under {spec}"
        );
        assert!(
            r.cycles >= baseline.cycles,
            "fault plan {spec} sped the run up: {} < {}",
            r.cycles,
            baseline.cycles
        );
    }
}

#[test]
#[ignore = "nightly: 1024-core hierarchical-fabric chaos"]
fn whole_cluster_outage_at_scale_is_deterministic_and_lossless() {
    // Takes an entire 16-tile cluster offline for the first 50k cycles of
    // a 1024-core hierarchical run. Displaced lookups fall back to page
    // walks (faults cost cycles, never translations), and the domain-
    // parallel driver must replay the same schedule byte-for-byte.
    const BIG: usize = 1024;
    const QUOTA: u64 = 150;
    let spec = "cluster:3/16@0-50000; retry=6";
    let run = |domains: usize| {
        let mut config = SystemConfig::new(BIG, TlbOrg::paper_hier(16));
        config.metrics = true;
        config.parallel_domains = domains;
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        Simulation::new(config, workload)
            .with_faults(spec.parse().expect("spec"))
            .run(QUOTA)
    };
    let sequential = run(1);
    assert_eq!(
        sequential.accesses,
        BIG as u64 * QUOTA,
        "lost translations during the cluster outage"
    );
    assert_eq!(
        sequential.to_json().to_string(),
        run(8).to_json().to_string(),
        "8-domain cluster-outage run diverged from sequential"
    );
}

#[test]
fn cascading_slice_outages_with_recovery_are_lossless_and_deterministic() {
    // A correlated schedule: slice 1 dies and its traffic re-homes to the
    // next surviving slice; while that window is still open the backup's
    // own slice dies too (forcing a handoff plus a fresh election), a
    // shootdown storm rages through the first outage, and a brief chip-
    // wide link blackout lands in the middle. The closed loop must absorb
    // all of it: full quota, non-trivial recovery counters, and two runs
    // serialize byte-for-byte.
    let spec = "slice:1@1000-40000; slice:2@10000-35000; storm@1000-30000; \
                link:*@5000-8000=off; retry=6";
    let run = || {
        sim(TlbOrg::paper_distributed(), true)
            .with_faults(spec.parse().expect("spec"))
            .with_recovery(RecoveryPolicy::all())
            .try_run(ACCESSES)
            .expect("cascading outage with recovery must terminate")
    };
    let first = run();
    assert_eq!(
        first.accesses,
        CORES as u64 * ACCESSES,
        "lost translations during the cascading outage"
    );
    assert!(
        first
            .metrics
            .counter("recovery.rehome_activations")
            .is_some_and(|v| v >= 2),
        "the cascade must open at least two re-homing windows"
    );
    assert!(
        first
            .metrics
            .counter("recovery.translations_recovered")
            .is_some_and(|v| v > 0),
        "no translation was served from a backup slice"
    );
    assert_eq!(
        first.to_json().to_string(),
        run().to_json().to_string(),
        "nondeterministic cascading-recovery run"
    );
}

#[test]
fn rolling_cluster_failures_at_scale_recover_without_livelock() {
    // Three 16-tile clusters of a 512-core hierarchical chip fail in an
    // overlapping rolling wave. Displaced traffic re-homes across cluster
    // boundaries (same set residue, next surviving cluster) and homes
    // back as each wave passes; the run must finish the full quota with
    // translations actually served from backups along the way.
    const BIG: usize = 512;
    const QUOTA: u64 = 100;
    let spec = "cluster:1/16@0-3000; cluster:2/16@2000-6000; \
                cluster:3/16@5000-9000; retry=6";
    let mut config = SystemConfig::new(BIG, TlbOrg::paper_hier(16));
    config.metrics = true;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let report = Simulation::new(config, workload)
        .with_faults(spec.parse().expect("spec"))
        .with_recovery(RecoveryPolicy::all())
        .try_run(QUOTA)
        .expect("rolling cluster failures with recovery must terminate");
    assert_eq!(
        report.accesses,
        BIG as u64 * QUOTA,
        "lost translations during the rolling cluster wave"
    );
    assert!(
        report
            .metrics
            .counter("recovery.translations_recovered")
            .is_some_and(|v| v > 0),
        "no translation was recovered across the wave"
    );
    assert!(
        report
            .metrics
            .counter("recovery.rehome_homebacks")
            .is_some_and(|v| v > 0),
        "no re-homing window ever closed"
    );
}

#[test]
#[ignore = "nightly: 1024-core cascading-recovery chaos (ci.sh --nightly)"]
fn nightly_cascading_recovery_storm_at_1024_cores() {
    // The full stack at scale: a rolling two-cluster failure wave with an
    // outage-triggered shootdown storm on a 1024-core hierarchical chip,
    // closed-loop recovery on, replayed over the 8-way domain-parallel
    // driver. Must finish losslessly with a non-empty recovered count and
    // serialize byte-identically to the sequential run.
    const BIG: usize = 1024;
    const QUOTA: u64 = 120;
    let spec = "cluster:3/16@0-4000; cluster:7/16@3000-8000; \
                storm@0-4000; retry=6";
    let run = |domains: usize| {
        let mut config = SystemConfig::new(BIG, TlbOrg::paper_hier(16));
        config.metrics = true;
        config.parallel_domains = domains;
        let workload = WorkloadAssignment::preset(&config, Preset::Redis);
        Simulation::new(config, workload)
            .with_faults(spec.parse().expect("spec"))
            .with_recovery(RecoveryPolicy::all())
            .try_run(QUOTA)
            .expect("cascading chaos at 1024 cores must terminate")
    };
    let sequential = run(1);
    assert_eq!(
        sequential.accesses,
        BIG as u64 * QUOTA,
        "lost translations during the 1024-core cascade"
    );
    assert!(
        sequential
            .metrics
            .counter("recovery.translations_recovered")
            .is_some_and(|v| v > 0),
        "the closed loop never recovered a translation at scale"
    );
    assert_eq!(
        sequential.to_json().to_string(),
        run(8).to_json().to_string(),
        "8-domain cascading-recovery run diverged from sequential"
    );
}

#[test]
fn hier_overlay_outage_terminates_via_escape_paths() {
    // A chip-wide overlay outage under the hierarchical fabric: intra-
    // cluster traffic is untouched, and cross-cluster messages (shootdown
    // invalidations) burn their retry budget then take the maintenance
    // escape path — the run must finish, not trip the livelock watchdog.
    const WIDE: usize = 256;
    const QUOTA: u64 = 120;
    let config = SystemConfig::new(WIDE, TlbOrg::paper_hier(16));
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let report = Simulation::new(config, workload)
        .with_faults("link:*@0-40000=off; retry=4".parse().expect("spec"))
        .try_run(QUOTA)
        .expect("overlay outage with a finite retry budget must terminate");
    assert_eq!(report.accesses, WIDE as u64 * QUOTA);
}

#[test]
fn fault_metrics_surface_only_under_a_nonempty_plan() {
    let clean = sim(TlbOrg::paper_nocstar(), true).run(ACCESSES);
    assert!(clean.metrics.counter("faults.fallbacks").is_none());
    let spec = "deny@0-10000000; link:*@2000-6000=off; walk@0-10000000=x8; retry=4";
    let faulted = sim(TlbOrg::paper_nocstar(), true)
        .with_faults(spec.parse().expect("spec"))
        .run(ACCESSES);
    assert!(faulted
        .metrics
        .counter("faults.denied_setups")
        .is_some_and(|v| v > 0));
    assert!(faulted
        .metrics
        .counter("faults.walk_spikes")
        .is_some_and(|v| v > 0));
    assert!(faulted.metrics.counter("faults.backoff_cycles").is_some());
}

#[test]
fn wedged_fabric_reports_livelock_with_diagnostics() {
    // Permanent chip-wide outage and an unbounded retry budget: the
    // fabric can never deliver, and the escape fallback is disabled. The
    // watchdog must convert the wedge into a typed error.
    let mut config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    config.livelock_window = 50_000;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let abort = Simulation::new(config, workload)
        .with_faults("link:*@0-10000000000=off; retry=inf".parse().expect("spec"))
        .try_run(ACCESSES)
        .expect_err("a wedged fabric must not complete");
    assert_eq!(abort.error.kind(), "livelock");
    let snap = abort.error.snapshot();
    assert!(
        !snap.pending_messages.is_empty(),
        "snapshot must show the stuck messages"
    );
    assert!(
        !snap.active_faults.is_empty(),
        "snapshot must name the active faults"
    );
    assert!(snap.unfinished_threads > 0);
    // The partial report still carries whatever completed pre-wedge.
    assert!(abort.partial.accesses > 0);
}

#[test]
fn cycle_budget_produces_a_structured_timeout_with_partial_report() {
    let mut config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    config.max_cycles = Some(2_000);
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let abort = Simulation::new(config, workload)
        .try_run(50_000)
        .expect_err("a 2k-cycle budget cannot cover 50k accesses/thread");
    assert_eq!(abort.error.kind(), "cycle-budget-exceeded");
    assert!(abort.error.snapshot().cycle <= 2_000);
    // Partial per-thread progress exists and stops near the budget: thread
    // finish times are completion stamps (event cycle + data latency), so
    // the makespan may overshoot by one in-flight access, never by the
    // millions of cycles the full 50k-access run would take.
    assert_eq!(abort.partial.per_thread_finish.len(), CORES);
    assert!(abort.partial.cycles < 10_000);
}

#[test]
fn budget_larger_than_the_run_changes_nothing() {
    let plain = sim(TlbOrg::paper_nocstar(), true).run(ACCESSES);
    let mut config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    config.metrics = true;
    config.max_cycles = Some(u64::MAX);
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let budgeted = Simulation::new(config, workload).run(ACCESSES);
    assert_eq!(plain.to_json().to_string(), budgeted.to_json().to_string());
}

mod property {
    use super::*;
    use proptest::prelude::*;

    /// Assembles a random-but-valid fault spec: `mask` decides which of
    /// the five fault classes is present; windows sit inside the first
    /// ~60k cycles of the run.
    #[allow(clippy::too_many_arguments)]
    fn build_spec(
        seed: u64,
        mask: u8,
        deny: (u64, u64),
        degrade: (u64, u64, u64),
        walk: (u64, u64, u64),
        slice: (usize, u64, u64),
        storm: (u64, u64),
    ) -> String {
        let mut clauses = vec![format!("seed={seed}"), "retry=8".to_string()];
        if mask & 1 != 0 {
            clauses.push(format!("deny@{}-{}", deny.0, deny.0 + deny.1));
        }
        if mask & 2 != 0 {
            clauses.push(format!(
                "link:*@{}-{}=+{}",
                degrade.0,
                degrade.0 + degrade.1,
                degrade.2
            ));
        }
        if mask & 4 != 0 {
            clauses.push(format!("walk@{}-{}=x{}", walk.0, walk.0 + walk.1, walk.2));
        }
        if mask & 8 != 0 {
            clauses.push(format!(
                "slice:{}@{}-{}",
                slice.0,
                slice.1,
                slice.1 + slice.2
            ));
        }
        if mask & 16 != 0 {
            clauses.push(format!("storm@{}-{}", storm.0, storm.0 + storm.1));
        }
        clauses.join("; ")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any generated schedule completes the full quota, and the same
        /// schedule serializes identically twice.
        #[test]
        fn random_fault_schedules_lose_nothing_and_stay_deterministic(
            seed in 0u64..16,
            mask in 0u8..32,
            deny in (0u64..30_000, 1u64..30_000),
            degrade in (0u64..30_000, 1u64..30_000, 1u64..4),
            walk in (0u64..30_000, 1u64..30_000, 2u64..9),
            slice in (0usize..4, 0u64..30_000, 1u64..30_000),
            storm in (0u64..30_000, 1u64..30_000),
        ) {
            let spec = build_spec(seed, mask, deny, degrade, walk, slice, storm);
            let quota = 300u64;
            let run = |spec: &str| {
                let mut config = SystemConfig::new(4, TlbOrg::paper_nocstar());
                config.metrics = true;
                let workload = WorkloadAssignment::preset(&config, Preset::Gups);
                Simulation::new(config, workload)
                    .with_faults(spec.parse().expect("generated spec"))
                    .run(quota)
            };
            let first = run(&spec);
            prop_assert_eq!(first.accesses, 4 * quota, "lost translations under {}", spec);
            let second = run(&spec);
            prop_assert_eq!(
                first.to_json().to_string(),
                second.to_json().to_string(),
                "nondeterministic under {}", spec
            );
        }
    }
}
