//! Cross-crate integration tests: full simulations spanning workloads,
//! TLBs, page tables, caches and all three interconnects.

use nocstar::prelude::*;

fn run(cores: usize, org: TlbOrg, preset: Preset, accesses: u64) -> SimReport {
    let config = SystemConfig::new(cores, org);
    let workload = WorkloadAssignment::preset(&config, preset);
    Simulation::new(config, workload).run(accesses)
}

#[test]
fn all_organizations_complete_identical_work() {
    for org in [
        TlbOrg::paper_private(),
        TlbOrg::paper_monolithic(8),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_ideal(),
    ] {
        let r = run(8, org, Preset::Redis, 800);
        assert_eq!(r.accesses, 8 * 800, "{}", r.org_label);
        assert!(r.cycles > 0);
        assert!(r.l1.accesses() > 0);
    }
}

#[test]
fn simulations_are_reproducible() {
    let a = run(8, TlbOrg::paper_nocstar(), Preset::Gups, 600);
    let b = run(8, TlbOrg::paper_nocstar(), Preset::Gups, 600);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.walks, b.walks);
    assert_eq!(a.l2.hits(), b.l2.hits());
    assert_eq!(a.energy.total_pj(), b.energy.total_pj());
}

#[test]
fn warmup_reduces_measured_cold_misses() {
    let config = SystemConfig::new(4, TlbOrg::paper_private());
    let cold =
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Olio)).run(3_000);
    let warm = Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Olio))
        .run_measured(3_000, 3_000);
    assert!(
        warm.l2.miss_rate() < cold.l2.miss_rate(),
        "warm {} >= cold {}",
        warm.l2.miss_rate(),
        cold.l2.miss_rate()
    );
    assert_eq!(warm.accesses, cold.accesses);
}

#[test]
fn shared_capacity_eliminates_private_misses_at_scale() {
    let private = {
        let config = SystemConfig::new(16, TlbOrg::paper_private());
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis))
            .run_measured(4_000, 6_000)
    };
    let shared = {
        let config = SystemConfig::new(16, TlbOrg::paper_ideal());
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis))
            .run_measured(4_000, 6_000)
    };
    let eliminated = shared.misses_eliminated_vs(&private);
    assert!(eliminated > 30.0, "only {eliminated:.0}% eliminated");
}

#[test]
fn organization_ordering_matches_the_paper() {
    // monolithic < private <= nocstar <= ideal on runtime speedup.
    let accesses = 5_000;
    let warm = 3_000;
    let go = |org: TlbOrg| {
        let config = SystemConfig::new(16, org);
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Canneal))
            .run_measured(warm, accesses)
    };
    let private = go(TlbOrg::paper_private());
    let mono = go(TlbOrg::paper_monolithic(16));
    let nocstar = go(TlbOrg::paper_nocstar());
    let ideal = go(TlbOrg::paper_ideal());
    assert!(
        mono.cycles > private.cycles,
        "monolithic should lose to private"
    );
    assert!(
        nocstar.cycles < private.cycles,
        "nocstar should beat private"
    );
    assert!(
        ideal.cycles <= nocstar.cycles * 101 / 100,
        "ideal bounds nocstar"
    );
}

#[test]
fn network_traffic_exists_only_when_it_should() {
    let nocstar = run(8, TlbOrg::paper_nocstar(), Preset::Canneal, 500);
    let stats = nocstar.network.expect("nocstar has a fabric");
    assert!(stats.delivered > 0);
    assert!(run(8, TlbOrg::paper_private(), Preset::Canneal, 500)
        .network
        .is_none());
}

#[test]
fn smt_increases_tlb_pressure() {
    let single = run(8, TlbOrg::paper_private(), Preset::Redis, 1_000);
    let mut config = SystemConfig::new(8, TlbOrg::paper_private());
    config.smt = 2;
    let smt =
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Redis)).run(1_000);
    assert_eq!(smt.accesses, 2 * single.accesses);
    // Twice the threads contend for the same per-core TLBs: absolute L2
    // TLB traffic must grow.
    assert!(
        smt.l2.accesses() > single.l2.accesses(),
        "SMT should raise L2 TLB pressure: {} vs {}",
        smt.l2.accesses(),
        single.l2.accesses()
    );
}

#[test]
fn walk_llc_fraction_lands_in_papers_band() {
    // Paper: 70-87% of baseline walks prompt LLC/memory lookups.
    let r = {
        let config = SystemConfig::new(16, TlbOrg::paper_private());
        Simulation::new(config, WorkloadAssignment::preset(&config, Preset::Canneal))
            .run_measured(4_000, 6_000)
    };
    let f = r.walk_llc_fraction();
    assert!((0.5..=1.0).contains(&f), "walk LLC fraction {f}");
}
