//! Determinism regression suite for the observability layer.
//!
//! The simulator's claim is strong: repeated runs of the same
//! configuration produce *byte-identical* serialized reports, regardless
//! of how many worker threads the bench harness fans out over, and
//! enabling metrics or tracing never changes simulated time. These tests
//! pin all three properties for every L2 organization.

use nocstar::prelude::*;

const CORES: usize = 8;
const WARMUP: u64 = 300;
const MEASURE: u64 = 700;

fn all_orgs() -> [TlbOrg; 5] {
    [
        TlbOrg::paper_private(),
        TlbOrg::paper_monolithic(CORES),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_ideal(),
    ]
}

fn run_report(org: TlbOrg, metrics: bool, trace_capacity: usize) -> SimReport {
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = metrics;
    config.trace_capacity = trace_capacity;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    Simulation::new(config, workload).run_measured(WARMUP, MEASURE)
}

fn report_json(org: TlbOrg, metrics: bool, trace_capacity: usize) -> String {
    run_report(org, metrics, trace_capacity)
        .to_json()
        .to_string()
}

#[test]
fn serialized_reports_are_byte_identical_across_runs() {
    for org in all_orgs() {
        let first = report_json(org, true, 256);
        let second = report_json(org, true, 256);
        assert_eq!(first, second, "nondeterministic report for {}", org.label());
    }
}

#[test]
fn worker_count_does_not_change_serialized_reports() {
    // The bench harness fans independent simulations over a worker pool
    // whose width NOCSTAR_WORKERS pins; results must not depend on it.
    // (No other test in this file reads that variable.)
    let run_all = || -> Vec<String> {
        nocstar_bench::parallel_map(all_orgs().to_vec(), |&org| report_json(org, true, 0))
    };
    std::env::set_var("NOCSTAR_WORKERS", "1");
    let serial = run_all();
    std::env::set_var("NOCSTAR_WORKERS", "4");
    let pooled = run_all();
    std::env::remove_var("NOCSTAR_WORKERS");
    assert_eq!(serial, pooled);
}

/// One organization per interconnect model the simulation can drive:
/// zero-latency (ideal), packet mesh, SMART bypass mesh, the paper's
/// circuit-switched fabric, and the hierarchical cluster fabric.
/// Domain-parallel runs must be invariant on every one of them, since
/// each fabric has its own (composed) lookahead.
fn fabric_orgs() -> [TlbOrg; 5] {
    [
        TlbOrg::paper_ideal(),
        TlbOrg::paper_distributed(),
        TlbOrg::Monolithic {
            entries_per_core: 1024,
            banks: CORES,
            net: MonolithicNet::Smart(8),
            latency_override: None,
        },
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_hier(4),
    ]
}

fn report_json_domains(org: TlbOrg, domains: usize) -> String {
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = true;
    config.trace_capacity = 256;
    config.parallel_domains = domains;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    Simulation::new(config, workload)
        .run_measured(WARMUP, MEASURE)
        .to_json()
        .to_string()
}

#[test]
fn two_domain_runs_are_byte_identical_to_sequential() {
    for org in fabric_orgs() {
        assert_eq!(
            report_json_domains(org, 1),
            report_json_domains(org, 2),
            "2-domain run diverged for {}",
            org.label()
        );
    }
}

#[test]
#[ignore = "nightly: full domain sweep over every fabric"]
fn domain_sweep_is_byte_identical_to_sequential() {
    for org in fabric_orgs() {
        let sequential = report_json_domains(org, 1);
        for domains in [2, 4, 8] {
            assert_eq!(
                sequential,
                report_json_domains(org, domains),
                "{domains}-domain run diverged for {}",
                org.label()
            );
        }
    }
}

/// A chaos plan exercising every recovery mechanism at once: a link
/// outage (re-routing / escalation), a slice-offline window (re-homing,
/// and gateway failover on the hierarchical fabric), and a walk spike.
const RECOVERY_PLAN: &str = "link:*@2000-5000=off; slice:3@1000-20000; walk@2000-4000=x4";

fn recovery_report_json(org: TlbOrg, domains: usize) -> String {
    let mut config = SystemConfig::new(CORES, org);
    config.metrics = true;
    config.parallel_domains = domains;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    Simulation::new(config, workload)
        .with_faults(FaultPlan::parse(RECOVERY_PLAN).expect("valid plan"))
        .with_recovery(RecoveryPolicy::all())
        .run_measured(WARMUP, MEASURE)
        .to_json()
        .to_string()
}

#[test]
fn recovery_enabled_runs_are_byte_identical_across_repeats() {
    for org in fabric_orgs() {
        assert_eq!(
            recovery_report_json(org, 1),
            recovery_report_json(org, 1),
            "nondeterministic recovery report for {}",
            org.label()
        );
    }
}

#[test]
fn recovery_two_domain_runs_are_byte_identical_to_sequential() {
    for org in fabric_orgs() {
        assert_eq!(
            recovery_report_json(org, 1),
            recovery_report_json(org, 2),
            "2-domain recovery run diverged for {}",
            org.label()
        );
    }
}

#[test]
#[ignore = "nightly: recovery domain sweep over every fabric"]
fn recovery_domain_sweep_is_byte_identical_to_sequential() {
    for org in fabric_orgs() {
        let sequential = recovery_report_json(org, 1);
        for domains in [2, 4, 8] {
            assert_eq!(
                sequential,
                recovery_report_json(org, domains),
                "{domains}-domain recovery run diverged for {}",
                org.label()
            );
        }
    }
}

#[test]
fn metrics_and_tracing_do_not_change_simulated_time() {
    for org in all_orgs() {
        let plain = run_report(org, false, 0);
        let observed = run_report(org, true, 512);
        let label = org.label();
        assert_eq!(plain.cycles, observed.cycles, "cycles changed for {label}");
        assert_eq!(
            plain.per_thread_finish, observed.per_thread_finish,
            "finish times changed for {label}"
        );
        assert_eq!(
            plain.l2.misses(),
            observed.l2.misses(),
            "L2 misses changed for {label}"
        );
        assert_eq!(plain.walks, observed.walks, "walks changed for {label}");
        assert!(
            plain.metrics.is_empty(),
            "metrics leaked when off ({label})"
        );
        assert!(
            !observed.metrics.is_empty(),
            "metrics missing when on ({label})"
        );
    }
}
