//! Acceptance suite for sampled fast-forward replay (`SAMPLING.md`).
//!
//! Pins the four promises the methodology document makes:
//!
//! * **Validation** (`SAMPLING.md §7`): on a span where exact replay is
//!   feasible, every 95 % confidence interval covers the exact-replay
//!   value, and ≥ 10× fewer accesses enter the cycle-accurate core.
//! * **Worked example** (`SAMPLING.md §5`): the fenced
//!   `sampling-worked-example` block in the document is parsed and
//!   cross-checked in both directions — the estimator reproduces the
//!   printed numbers, and the printed numbers are internally consistent.
//! * **Determinism** (`SAMPLING.md §6`): byte-identical reports across
//!   repeated runs and across `--parallel-domains` {1, 2, 4, 8}; the
//!   seed moves only the placement offset.
//! * **Report contract** (`SAMPLING.md §4`): exact-mode reports carry no
//!   `sampling` key, so exact goldens stay byte-identical.

use nocstar::prelude::*;
use std::collections::BTreeMap;

const CORES: usize = 4;
const SPAN: u64 = 4_000;
const EXACT_WARMUP: u64 = 400;
const SPEC: &str = "800:40:20@7";

/// The validation fixture: the redis preset with OS remaps disabled —
/// shootdowns are rare discrete events a periodic sample has no power
/// against (`SAMPLING.md §7`), so the suite isolates the steady-state
/// rates sampling is for.
fn build(domains: usize) -> Simulation {
    let mut config = SystemConfig::new(CORES, TlbOrg::paper_nocstar());
    config.parallel_domains = domains;
    let mut spec = Preset::Redis.spec();
    spec.remaps_per_million = 0.0;
    let workload = WorkloadAssignment::homogeneous(&config, spec);
    Simulation::new(config, workload)
}

fn sampled_report(spec: &str, domains: usize) -> SimReport {
    let spec: SampleSpec = spec.parse().expect("valid sample spec");
    build(domains).run_sampled(spec, SPAN)
}

#[test]
fn every_interval_covers_the_exact_value_at_ten_x_reduction() {
    let exact = build(1).run_measured(EXACT_WARMUP, SPAN - EXACT_WARMUP);
    let sampled = sampled_report(SPEC, 1);
    let s = sampled.sampling.as_ref().expect("sampled report section");

    let measured = ((SPAN - EXACT_WARMUP) * CORES as u64) as f64;
    let exact_values = [
        (
            "cycles_per_access",
            exact.cycles as f64 / (SPAN - EXACT_WARMUP) as f64,
        ),
        ("l1_miss_rate", exact.l1.miss_rate()),
        ("l2_miss_rate", exact.l2.miss_rate()),
        ("walks_per_access", exact.walks as f64 / measured),
        (
            "walks_llc_or_mem_per_access",
            exact.walks_llc_or_mem as f64 / measured,
        ),
        ("shootdowns_per_access", exact.shootdowns as f64 / measured),
        ("flushes_per_access", exact.flushes as f64 / measured),
        ("translation_latency_mean", exact.translation_latency.mean()),
        ("energy_pj_per_access", exact.energy.total_pj() / measured),
    ];
    for (name, exact_v) in exact_values {
        let est = s.estimate(name).expect("estimate for every metric");
        assert!(
            est.interval.covers(exact_v),
            "{name}: exact {exact_v} outside 95% CI [{}, {}]",
            est.interval.lo(),
            est.interval.hi()
        );
    }
    let exact_detailed = SPAN * CORES as u64;
    assert!(
        s.accesses_detailed * 10 <= exact_detailed,
        "only {:.1}x fewer detailed accesses ({} of {})",
        exact_detailed as f64 / s.accesses_detailed as f64,
        s.accesses_detailed,
        exact_detailed
    );
}

#[test]
fn sampled_reports_are_deterministic_and_domain_invariant() {
    let reference = sampled_report(SPEC, 1).to_json().to_string();
    assert_eq!(
        reference,
        sampled_report(SPEC, 1).to_json().to_string(),
        "repeated sampled runs diverged"
    );
    for domains in [2, 4, 8] {
        assert_eq!(
            reference,
            sampled_report(SPEC, domains).to_json().to_string(),
            "sampled report diverged at {domains} domains"
        );
    }
}

#[test]
fn the_seed_moves_only_the_placement_offset() {
    // Equal seeds never differ; different seeds may move the offset (and
    // with it the estimates) but never the spec geometry.
    let a = sampled_report("800:40:20@7", 1);
    let b = sampled_report("800:40:20@7", 1);
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    let other = sampled_report("800:40:20@8", 1);
    let (sa, so) = (
        a.sampling.as_ref().expect("section"),
        other.sampling.as_ref().expect("section"),
    );
    assert_eq!(
        (sa.period, sa.window, sa.warmup),
        (so.period, so.window, so.warmup)
    );
    assert_ne!(sa.seed, so.seed);
}

#[test]
fn exact_reports_carry_no_sampling_key() {
    let exact = build(1).run_measured(EXACT_WARMUP, SPAN - EXACT_WARMUP);
    assert!(exact.sampling.is_none());
    let json = exact.to_json();
    assert!(json.get("sampling").is_none());
}

#[test]
fn a_single_window_span_degenerates_per_the_spec() {
    // One window: every estimate is degenerate (`SAMPLING.md §3`) — the
    // interval collapses to the point estimate.
    let spec: SampleSpec = "4000:40:20@7".parse().expect("valid sample spec");
    let report = build(1).run_sampled(spec, SPAN);
    let s = report.sampling.as_ref().expect("section");
    assert_eq!(s.windows, 1);
    for name in ["cycles_per_access", "l1_miss_rate"] {
        let est = s.estimate(name).expect("estimate");
        assert_eq!(est.interval.n(), 1);
        assert!(est.interval.is_degenerate());
        assert_eq!(est.interval.lo(), est.interval.hi());
    }
}

// ----- the SAMPLING.md §5 worked example, parsed from the document -----

/// Extracts the key/value pairs of the fenced `sampling-worked-example`
/// block from `SAMPLING.md`.
fn worked_example() -> BTreeMap<String, f64> {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/SAMPLING.md"))
        .expect("SAMPLING.md is part of the repo");
    let fence = "```sampling-worked-example";
    let start = doc
        .find(fence)
        .expect("SAMPLING.md contains the sampling-worked-example fence");
    let body = &doc[start + fence.len()..];
    let end = body.find("```").expect("worked-example fence is closed");
    body[..end]
        .lines()
        .filter_map(|line| {
            let (key, value) = line.split_once('=')?;
            Some((
                key.trim().to_string(),
                value.trim().parse().expect("numeric worked-example value"),
            ))
        })
        .collect()
}

/// The six window samples the worked example is computed from.
const WORKED_SAMPLES: [f64; 6] = [10.0, 12.0, 11.0, 13.0, 12.0, 14.0];
const TOL: f64 = 5e-7;

#[test]
fn the_estimator_reproduces_the_worked_example() {
    let doc = worked_example();
    let est = Interval::of(&WORKED_SAMPLES);
    assert_eq!(est.n(), doc["n"] as usize);
    assert!((est.mean() - doc["mean"]).abs() < TOL);
    assert!((est.stderr() - doc["stderr"]).abs() < TOL);
    assert!((est.half_width() - doc["half"]).abs() < TOL);
    assert!((est.lo() - doc["ci_lo"]).abs() < TOL);
    assert!((est.hi() - doc["ci_hi"]).abs() < TOL);
}

#[test]
fn the_worked_example_is_internally_consistent() {
    let doc = worked_example();
    let n = doc["n"];
    // Consistency is re-derived from the *printed* (6-decimal-rounded)
    // values, so rounding propagates: t × stderr can be off by up to
    // t × 5e-7 from the printed half-width.
    let tol = 2e-6;
    assert!((doc["stderr"] - doc["s"] / n.sqrt()).abs() < tol);
    assert!((doc["half"] - doc["t"] * doc["stderr"]).abs() < tol);
    assert!((doc["ci_lo"] - (doc["mean"] - doc["half"])).abs() < tol);
    assert!((doc["ci_hi"] - (doc["mean"] + doc["half"])).abs() < tol);
    // The printed sample statistics really describe the printed samples.
    let mean = WORKED_SAMPLES.iter().sum::<f64>() / n;
    assert!((mean - doc["mean"]).abs() < TOL);
    let var = WORKED_SAMPLES
        .iter()
        .map(|x| (x - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    assert!((var.sqrt() - doc["s"]).abs() < TOL);
}
