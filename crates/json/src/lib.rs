//! A minimal, dependency-free JSON layer for the simulator.
//!
//! Reports, metrics snapshots and recorded traces all serialize through
//! this crate. Two properties matter more than generality here:
//!
//! 1. **Determinism.** Object members keep their insertion order (they are
//!    a `Vec`, not a hash map), and numbers format via Rust's shortest
//!    round-trip float printing, so the same in-memory value always
//!    produces byte-identical text. The golden-report regression harness
//!    and the determinism tests rely on this.
//! 2. **Integer fidelity.** Cycle counts and event counters are `u64`s
//!    that must not pass through `f64` (2^53 truncation); [`Json`] keeps
//!    dedicated integer variants.
//!
//! The parser accepts standard JSON (RFC 8259) with arbitrary whitespace;
//! it exists so recorded traces and golden reports can be read back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, cycles, ids).
    U64(u64),
    /// A negative integer (positive values parse as [`Json::U64`]).
    I64(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64`, widening from either integer variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U64(v) => i64::try_from(*v).ok(),
            Json::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, widening from the integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation. Deterministic.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed byte.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Compact serialization (no whitespace). Deterministic: equal values
/// always produce identical bytes.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(v) => {
            let mut buf = [0u8; 20];
            out.push_str(format_u64(*v, &mut buf));
        }
        Json::I64(v) => out.push_str(&v.to_string()),
        Json::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip printing: deterministic across
                // platforms, which the golden harness depends on.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, member, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Allocation-free u64 formatting (hot path for metric dumps).
fn format_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The buffer only ever holds ASCII digits.
    // nocstar-lint: allow(sim-unwrap): the buffer holds only ASCII digits written above
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writes_all_scalar_forms() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::I64(-42).to_string(), "-42");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::str("a\"b\\c\n").to_string(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let v = Json::obj(vec![("zebra", Json::U64(1)), ("apple", Json::U64(2))]);
        assert_eq!(v.to_string(), "{\"zebra\":1,\"apple\":2}");
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("b", Json::Obj(vec![])),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}\n"
        );
    }

    #[test]
    fn parses_standard_documents() {
        let doc = r#" { "k" : [ 1 , -2 , 3.5 , true , null , "s\u0041" ] , "e" : {} } "#;
        let v = Json::parse(doc).unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(arr[5].as_str(), Some("sA"));
        assert_eq!(v.get("e").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn large_integers_survive_round_trips() {
        // 2^53 + 1 is exactly the value an f64-based model would corrupt.
        let v = Json::U64((1 << 53) + 1);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some((1 << 53) + 1));
    }

    fn arb_json_scalar() -> impl Strategy<Value = Json> {
        prop_oneof![
            Just(Json::Null),
            Just(Json::Bool(true)),
            Just(Json::Bool(false)),
        ]
    }

    proptest! {
        #[test]
        fn prop_u64_round_trips(v in 0u64..=u64::MAX) {
            let text = Json::U64(v).to_string();
            prop_assert_eq!(Json::parse(&text).unwrap(), Json::U64(v));
        }

        #[test]
        fn prop_strings_round_trip(bytes in prop::collection::vec(0u8..128, 0..20)) {
            let s: String = bytes.iter().map(|&b| b as char).collect();
            let text = Json::str(s.clone()).to_string();
            prop_assert_eq!(Json::parse(&text).unwrap(), Json::Str(s));
        }

        #[test]
        fn prop_documents_round_trip_compact_and_pretty(
            scalars in prop::collection::vec(arb_json_scalar(), 1..6),
            n in 0u64..1000,
        ) {
            let doc = Json::obj(vec![
                ("items", Json::Arr(scalars)),
                ("n", Json::U64(n)),
                ("nested", Json::obj(vec![("x", Json::I64(-1))])),
            ]);
            prop_assert_eq!(&Json::parse(&doc.to_string()).unwrap(), &doc);
            prop_assert_eq!(&Json::parse(&doc.to_string_pretty()).unwrap(), &doc);
        }
    }
}
