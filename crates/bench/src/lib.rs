//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` for the per-experiment index,
//! and `src/bin/` for one binary per figure).
//!
//! The harness provides run-length presets (`--quick` / `NOCSTAR_QUICK=1`
//! for CI-sized runs), parallel fan-out over independent simulations, the
//! standard organization line-ups, and result persistence under
//! `bench_results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use nocstar::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

/// Run-length and sweep-size settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Warmup memory accesses per hardware thread (excluded from stats).
    pub warmup: u64,
    /// Measured memory accesses per hardware thread per run.
    pub accesses: u64,
    /// Whether this is the abbreviated (--quick) mode.
    pub quick: bool,
}

impl Effort {
    /// Resolves effort from the process arguments and environment:
    /// `--quick` or `NOCSTAR_QUICK=1` selects the abbreviated mode.
    pub fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("NOCSTAR_QUICK").is_ok_and(|v| v != "0");
        Self {
            warmup: if quick { 2_000 } else { 8_000 },
            accesses: if quick { 4_000 } else { 16_000 },
            quick,
        }
    }

    /// Runs one preset under one organization at this effort (with warmup),
    /// applying config tweaks first.
    pub fn run_with(
        &self,
        cores: usize,
        org: TlbOrg,
        preset: Preset,
        tweak: impl FnOnce(&mut SystemConfig),
    ) -> SimReport {
        let mut config = SystemConfig::new(cores, org);
        tweak(&mut config);
        let workload = WorkloadAssignment::preset(&config, preset);
        Simulation::new(config, workload).run_measured(self.warmup, self.accesses)
    }

    /// [`run_with`](Self::run_with) without tweaks.
    pub fn run(&self, cores: usize, org: TlbOrg, preset: Preset) -> SimReport {
        self.run_with(cores, org, preset, |_| {})
    }
}

/// Maps `f` over `items` on a pool of worker threads (simulations are
/// independent and deterministic, so parallel order does not matter);
/// results come back in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("poisoned") = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("worker filled"))
        .collect()
}

/// The output directory for experiment results (`bench_results/` at the
/// workspace root), created on first use.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("NOCSTAR_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"));
    std::fs::create_dir_all(&dir).expect("create bench_results");
    dir
}

/// Prints a table under a heading and saves it as CSV in
/// [`out_dir`]`/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("== {title} ==\n");
    println!("{table}");
    let path = out_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("(saved {})\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effort_defaults_to_full() {
        // No --quick in the test binary args.
        let e = Effort::from_env();
        assert!(e.accesses >= 4_000);
    }
}
