//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` for the per-experiment index,
//! and `src/bin/` for one binary per figure).
//!
//! The harness provides run-length presets (`--quick` / `NOCSTAR_QUICK=1`
//! for CI-sized runs), parallel fan-out over independent simulations, the
//! standard organization line-ups, and result persistence under
//! `bench_results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use nocstar::prelude::*;
use nocstar_json::Json;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Ring-buffer capacity used for `--trace` runs: enough for the tail of a
/// quick run without bloating the emitted JSON.
const TRACE_CAPACITY: usize = 4096;

/// Observability settings shared by every experiment binary, resolved once
/// from the process arguments and environment:
///
/// * `--metrics-json <path>` (or `NOCSTAR_METRICS_JSON=<path>`) — enable
///   the simulator's metrics registry and write the collected per-run
///   reports to `<path>` as JSON, in addition to the per-experiment
///   `<name>.metrics.json` files next to the CSVs.
/// * `NOCSTAR_METRICS=1` — enable collection with per-experiment files
///   only (what `run_all` users typically want).
/// * `--trace` (or `NOCSTAR_TRACE=1`) — additionally record a bounded
///   cycle-level event trace per run into the same JSON.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    /// Explicit output path from `--metrics-json`, if any.
    pub metrics_json: Option<PathBuf>,
    /// Whether metrics collection is on at all.
    pub metrics: bool,
    /// Whether cycle-level tracing is on.
    pub trace: bool,
}

impl Observability {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut metrics_json = args
            .iter()
            .position(|a| a == "--metrics-json")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        if metrics_json.is_none() {
            metrics_json = std::env::var("NOCSTAR_METRICS_JSON")
                .ok()
                .map(PathBuf::from);
        }
        let trace = args.iter().any(|a| a == "--trace")
            || std::env::var("NOCSTAR_TRACE").is_ok_and(|v| v != "0");
        let metrics = metrics_json.is_some()
            || trace
            || std::env::var("NOCSTAR_METRICS").is_ok_and(|v| v != "0");
        Self {
            metrics_json,
            metrics,
            trace,
        }
    }
}

/// The process-wide observability settings (first use resolves them).
pub fn observability() -> &'static Observability {
    static OBS: OnceLock<Observability> = OnceLock::new();
    OBS.get_or_init(Observability::from_env)
}

/// Fault-injection and run-budget settings shared by every experiment
/// binary, resolved once from the process arguments and environment:
///
/// * `--faults <spec>` (or `NOCSTAR_FAULTS=<spec>`) — install a
///   deterministic [`FaultPlan`] (see its docs for the spec grammar, e.g.
///   `"link:*@1000-5000=off; deny@0-2000; retry=8"`) into every run.
/// * `--max-cycles <n>` (or `NOCSTAR_MAX_CYCLES=<n>`) — abort any single
///   run that would advance past simulated cycle `n`, keeping whatever it
///   measured (the partial report is used, with a warning on stderr).
///
/// A malformed spec or budget terminates the process with exit code 2 —
/// a sweep must not silently run fault-free when faults were requested.
#[derive(Debug, Clone, Default)]
pub struct FaultSettings {
    /// The plan injected into every simulation (empty = fault-free).
    pub plan: FaultPlan,
    /// Hard per-run simulated-cycle budget, if any.
    pub max_cycles: Option<u64>,
}

impl FaultSettings {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let spec = args
            .iter()
            .position(|a| a == "--faults")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("NOCSTAR_FAULTS").ok());
        let plan = match spec.as_deref().map(str::parse::<FaultPlan>) {
            None => FaultPlan::default(),
            Some(Ok(plan)) => plan,
            Some(Err(e)) => {
                eprintln!("error: bad fault spec: {e}");
                std::process::exit(2);
            }
        };
        let budget = args
            .iter()
            .position(|a| a == "--max-cycles")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("NOCSTAR_MAX_CYCLES").ok());
        let max_cycles = match budget.as_deref().map(str::parse::<u64>) {
            None => None,
            Some(Ok(n)) => Some(n),
            Some(Err(e)) => {
                eprintln!("error: bad --max-cycles value: {e}");
                std::process::exit(2);
            }
        };
        Self { plan, max_cycles }
    }
}

/// The process-wide fault settings (first use resolves them).
pub fn fault_settings() -> &'static FaultSettings {
    static FAULTS: OnceLock<FaultSettings> = OnceLock::new();
    FAULTS.get_or_init(FaultSettings::from_env)
}

/// Reactive-recovery settings shared by every experiment binary, resolved
/// once from the process arguments and environment:
///
/// * `--recovery <spec>` (or `NOCSTAR_RECOVERY=<spec>`) — install a
///   [`RecoveryPolicy`] (spec grammar: `"reroute; rehome; failover;
///   escalate=N"`, or `"all"` for every mechanism) into every run, closing
///   the loop on whatever `--faults` injects.
///
/// A malformed spec terminates the process with exit code 2 — a sweep must
/// not silently run open-loop when recovery was requested.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverySettings {
    /// The policy installed into every simulation (default = open loop).
    pub policy: RecoveryPolicy,
}

impl RecoverySettings {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let spec = args
            .iter()
            .position(|a| a == "--recovery")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("NOCSTAR_RECOVERY").ok());
        let policy = match spec.as_deref().map(str::parse::<RecoveryPolicy>) {
            None => RecoveryPolicy::default(),
            Some(Ok(policy)) => policy,
            Some(Err(e)) => {
                eprintln!("error: bad recovery spec: {e}");
                std::process::exit(2);
            }
        };
        Self { policy }
    }
}

/// The process-wide recovery settings (first use resolves them).
pub fn recovery_settings() -> &'static RecoverySettings {
    static RECOVERY: OnceLock<RecoverySettings> = OnceLock::new();
    RECOVERY.get_or_init(RecoverySettings::from_env)
}

/// Trace-replay settings shared by every experiment binary, resolved once
/// from the process arguments and environment:
///
/// * `--trace-file <path>` (or `NOCSTAR_TRACE_FILE=<path>`) — drive every
///   run from a captured `.nct` trace file (see `TRACE_FORMAT.md` and the
///   `nocstar-trace` CLI) instead of the live synthetic generators. The
///   preset argument still selects labels/tables, but the address streams
///   come from the file; an unreadable or corrupt file terminates the
///   process with exit code 2 at the first run.
#[derive(Debug, Clone, Default)]
pub struct ReplaySettings {
    /// The trace file every run replays, if any.
    pub trace_file: Option<PathBuf>,
}

impl ReplaySettings {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let trace_file = args
            .iter()
            .position(|a| a == "--trace-file")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .or_else(|| std::env::var("NOCSTAR_TRACE_FILE").ok().map(PathBuf::from));
        Self { trace_file }
    }
}

/// The process-wide replay settings (first use resolves them).
pub fn replay_settings() -> &'static ReplaySettings {
    static REPLAY: OnceLock<ReplaySettings> = OnceLock::new();
    REPLAY.get_or_init(ReplaySettings::from_env)
}

/// Domain-parallel simulation settings shared by every experiment binary,
/// resolved once from the process arguments and environment:
///
/// * `--parallel-domains <n>` (or `NOCSTAR_DOMAINS=<n>`) — run every
///   simulation with `n` domains: `n` event-queue shards plus `n` trace
///   feed workers precomputing ahead of the commit loop (see
///   `DESIGN.md §12`). `1` is the sequential default; any value produces
///   byte-identical reports, so this is purely a wall-clock knob.
///
/// A malformed or zero value terminates the process with exit code 2.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSettings {
    /// Simulation domains per run (1 = sequential).
    pub domains: usize,
}

impl Default for ParallelSettings {
    fn default() -> Self {
        Self { domains: 1 }
    }
}

impl ParallelSettings {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let raw = args
            .iter()
            .position(|a| a == "--parallel-domains")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("NOCSTAR_DOMAINS").ok());
        let domains = match raw.as_deref().map(str::parse::<usize>) {
            None => 1,
            Some(Ok(0)) => {
                eprintln!("error: --parallel-domains must be at least 1");
                std::process::exit(2);
            }
            Some(Ok(n)) => n,
            Some(Err(e)) => {
                eprintln!("error: bad --parallel-domains value: {e}");
                std::process::exit(2);
            }
        };
        Self { domains }
    }
}

/// The process-wide domain-parallel settings (first use resolves them).
pub fn parallel_settings() -> &'static ParallelSettings {
    static PARALLEL: OnceLock<ParallelSettings> = OnceLock::new();
    PARALLEL.get_or_init(ParallelSettings::from_env)
}

/// Sampled-replay settings shared by every experiment binary, resolved
/// once from the process arguments and environment:
///
/// * `--sample <spec>` (or `NOCSTAR_SAMPLE=<spec>`) — replace every run's
///   exact replay with sampled fast-forward replay per `SAMPLING.md`. The
///   spec is `<period>:<window>:<warmup>[@<seed>]` in accesses per thread,
///   e.g. `1000:60:30@7`; the whole effort span (warmup + measured
///   accesses per thread) becomes the sampled trace span, and each
///   report gains a `sampling` section with per-metric confidence
///   intervals.
///
/// A malformed spec terminates the process with exit code 2, as does
/// combining `--sample` with `--faults` or `--recovery` (fault windows
/// are cycle-based; fast-forward does not advance cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleSettings {
    /// The sampling spec applied to every run (`None` = exact replay).
    pub spec: Option<SampleSpec>,
}

impl SampleSettings {
    fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let raw = args
            .iter()
            .position(|a| a == "--sample")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("NOCSTAR_SAMPLE").ok());
        let spec = match raw.as_deref().map(str::parse::<SampleSpec>) {
            None => None,
            Some(Ok(spec)) => Some(spec),
            Some(Err(e)) => {
                eprintln!("error: bad sample spec: {e}");
                std::process::exit(2);
            }
        };
        Self { spec }
    }
}

/// The process-wide sampled-replay settings (first use resolves them).
pub fn sample_settings() -> &'static SampleSettings {
    static SAMPLE: OnceLock<SampleSettings> = OnceLock::new();
    SAMPLE.get_or_init(SampleSettings::from_env)
}

/// Reports collected since the last [`emit`], serialized eagerly so the
/// collector owns no simulator state.
static COLLECTED: Mutex<Vec<Json>> = Mutex::new(Vec::new());

/// Records one finished run's full JSON report for the next [`emit`].
/// No-op unless metrics collection is enabled.
pub fn collect_report(report: &SimReport) {
    if observability().metrics {
        COLLECTED.lock().expect("poisoned").push(report.to_json());
    }
}

/// Drains the collected reports, sorted by serialized form so the output
/// is independent of worker-thread completion order.
fn drain_collected() -> Vec<(String, Json)> {
    let mut drained: Vec<(String, Json)> = COLLECTED
        .lock()
        .expect("poisoned")
        .drain(..)
        .map(|j| (j.to_string(), j))
        .collect();
    drained.sort_by(|a, b| a.0.cmp(&b.0));
    drained
}

/// Run-length and sweep-size settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Warmup memory accesses per hardware thread (excluded from stats).
    pub warmup: u64,
    /// Measured memory accesses per hardware thread per run.
    pub accesses: u64,
    /// Whether this is the abbreviated (--quick) mode.
    pub quick: bool,
}

impl Effort {
    /// Resolves effort from the process arguments and environment:
    /// `--quick` or `NOCSTAR_QUICK=1` selects the abbreviated mode.
    pub fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("NOCSTAR_QUICK").is_ok_and(|v| v != "0");
        Self {
            warmup: if quick { 2_000 } else { 8_000 },
            accesses: if quick { 4_000 } else { 16_000 },
            quick,
        }
    }

    /// Runs one preset under one organization at this effort (with warmup),
    /// applying config tweaks first.
    pub fn run_with(
        &self,
        cores: usize,
        org: TlbOrg,
        preset: Preset,
        tweak: impl FnOnce(&mut SystemConfig),
    ) -> SimReport {
        let mut config = SystemConfig::new(cores, org);
        tweak(&mut config);
        let obs = observability();
        if obs.metrics {
            config.metrics = true;
        }
        if obs.trace {
            config.trace_capacity = TRACE_CAPACITY;
        }
        let faults = fault_settings();
        if let Some(budget) = faults.max_cycles {
            config.max_cycles = Some(budget);
        }
        config.parallel_domains = parallel_settings().domains;
        let workload = match &replay_settings().trace_file {
            Some(path) => match WorkloadAssignment::from_trace_file(&config, path) {
                Ok(workload) => workload,
                Err(e) => {
                    eprintln!("error: cannot replay {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            None => WorkloadAssignment::preset(&config, preset),
        };
        let mut sim = Simulation::new(config, workload);
        if !faults.plan.is_empty() {
            sim = sim.with_faults(faults.plan.clone());
        }
        let recovery = recovery_settings();
        if recovery.policy.is_enabled() {
            sim = sim.with_recovery(recovery.policy);
        }
        if let Some(spec) = sample_settings().spec {
            if !faults.plan.is_empty() || recovery.policy.is_enabled() {
                eprintln!(
                    "error: --sample cannot be combined with --faults or --recovery \
                     (fault windows are cycle-based; fast-forward does not advance cycles)"
                );
                std::process::exit(2);
            }
            let span = self.warmup + self.accesses;
            if spec.windows(span) == 0 {
                eprintln!(
                    "error: sample spec {spec} places no measurement window \
                     in a span of {span} accesses per thread"
                );
                std::process::exit(2);
            }
            let report = match sim.try_run_sampled(spec, span) {
                Ok(report) => report,
                Err(abort) => {
                    eprintln!(
                        "warning: sampled {} run of {} aborted ({}); using the partial report",
                        org.label(),
                        preset.name(),
                        abort.error
                    );
                    abort.partial
                }
            };
            collect_report(&report);
            return report;
        }
        let report = match sim.try_run_measured(self.warmup, self.accesses) {
            Ok(report) => report,
            Err(abort) => {
                eprintln!(
                    "warning: {} run of {} aborted ({}); using the partial report",
                    org.label(),
                    preset.name(),
                    abort.error
                );
                abort.partial
            }
        };
        collect_report(&report);
        report
    }

    /// [`run_with`](Self::run_with) without tweaks.
    pub fn run(&self, cores: usize, org: TlbOrg, preset: Preset) -> SimReport {
        self.run_with(cores, org, preset, |_| {})
    }
}

/// The worker-pool width for [`parallel_map`]: `NOCSTAR_WORKERS` when set
/// (the determinism suite pins it to prove results are schedule-independent),
/// otherwise the available parallelism, always clamped to the item count.
pub fn worker_threads(n_items: usize) -> usize {
    std::env::var("NOCSTAR_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(n_items.max(1))
}

/// Maps `f` over `items` on a pool of worker threads (simulations are
/// independent and deterministic, so parallel order does not matter);
/// results come back in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = worker_threads(items.len());
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("worker filled"))
        .collect()
}

/// The output directory for experiment results (`bench_results/` at the
/// workspace root), created on first use.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("NOCSTAR_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"));
    std::fs::create_dir_all(&dir).expect("create bench_results");
    dir
}

/// Prints a table under a heading and saves it as CSV in
/// [`out_dir`]`/<name>.csv`. When metrics collection is on, the per-run
/// reports gathered since the previous `emit` are additionally written as
/// `<name>.metrics.json` next to the CSV (and to the `--metrics-json`
/// path, when one was given).
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("== {title} ==\n");
    println!("{table}");
    let path = out_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("(saved {})\n", path.display());
    let obs = observability();
    if obs.metrics {
        let drained = drain_collected();
        if !drained.is_empty() {
            let doc = Json::Arr(drained.into_iter().map(|(_, j)| j).collect());
            let text = doc.to_string_pretty();
            let mpath = out_dir().join(format!("{name}.metrics.json"));
            std::fs::write(&mpath, &text).expect("write metrics json");
            println!("(saved {})\n", mpath.display());
            if let Some(explicit) = &obs.metrics_json {
                std::fs::write(explicit, &text).expect("write metrics json");
                println!("(saved {})\n", explicit.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effort_defaults_to_full() {
        // No --quick in the test binary args.
        let e = Effort::from_env();
        assert!(e.accesses >= 4_000);
    }
}
