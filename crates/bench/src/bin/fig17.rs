//! Regenerates the paper's fig17 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig17::run(nocstar_bench::Effort::from_env());
}
