//! Regenerates the paper's fig19 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig19::run(nocstar_bench::Effort::from_env());
}
