//! Regenerates every figure and table of the paper in sequence
//! (`--quick` for an abbreviated pass); results land in `bench_results/`.
use nocstar_bench::experiments as ex;
use nocstar_bench::Effort;

type Step = (&'static str, fn(Effort));

fn main() {
    let effort = Effort::from_env();
    let t0 = std::time::Instant::now();
    let steps: [Step; 26] = [
        ("table1", ex::table1::run),
        ("table2", ex::table2::run),
        ("fig03", ex::fig03::run),
        ("fig09", ex::fig09::run),
        ("fig11a", ex::fig11a::run),
        ("fig11b", ex::fig11b::run),
        ("fig11c", ex::fig11c::run),
        ("fig02", ex::fig02::run),
        ("fig04", ex::fig04::run),
        ("fig05", ex::fig05::run),
        ("fig06", ex::fig06::run),
        ("fig12", ex::fig12::run),
        ("fig13", ex::fig13::run),
        ("fig14", ex::fig14::run),
        ("fig15", ex::fig15::run),
        ("fig16", ex::fig16::run),
        ("fig17", ex::fig17::run),
        ("fig19", ex::fig19::run),
        ("slice_ubench", ex::slice_ubench::run),
        ("table3", ex::table3::run),
        ("ablation", ex::ablation::run),
        ("scaleup", ex::scaleup::run),
        ("fig18", ex::fig18::run),
        ("faultsweep", ex::faultsweep::run),
        ("recovery", ex::recovery::run),
        ("sampled", ex::sampled::run),
    ];
    for (name, step) in steps {
        let t = std::time::Instant::now();
        step(effort);
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f32());
    }
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f32());
}
