//! Runs one simulation (optionally from a captured `.nct` trace via
//! `--trace-file`) and saves the full report JSON; see `experiments::replay`.
fn main() {
    nocstar_bench::experiments::replay::run(nocstar_bench::Effort::from_env());
}
