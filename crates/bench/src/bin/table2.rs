//! Regenerates the paper's table2 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::table2::run(nocstar_bench::Effort::from_env());
}
