//! Runs the closed-loop recovery-latency study; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::recovery::run(nocstar_bench::Effort::from_env());
}
