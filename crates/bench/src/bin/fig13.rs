//! Regenerates the paper's fig13 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig13::run(nocstar_bench::Effort::from_env());
}
