//! Regenerates the paper's fig04 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig04::run(nocstar_bench::Effort::from_env());
}
