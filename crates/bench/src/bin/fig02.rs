//! Regenerates the paper's fig02 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig02::run(nocstar_bench::Effort::from_env());
}
