//! Regenerates the paper's fig06 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig06::run(nocstar_bench::Effort::from_env());
}
