//! Regenerates the paper's fig15 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig15::run(nocstar_bench::Effort::from_env());
}
