//! Regenerates the 64-1024 core scale-up study; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::scaleup::run(nocstar_bench::Effort::from_env());
}
