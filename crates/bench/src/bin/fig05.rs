//! Regenerates the paper's fig05 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig05::run(nocstar_bench::Effort::from_env());
}
