//! Wall-clock timing for the domain-parallel simulation driver.
//!
//! Runs one fixed-seed configuration end to end and prints a single JSON
//! line with the best-of-`--reps` wall-clock time and the simulation
//! throughput (committed memory accesses — the simulator's unit of work —
//! per wall-clock second). `scripts/perf.sh` sweeps this binary over the
//! paper's fabrics and core counts at domains 1 vs N and assembles
//! `bench_results/BENCH_parallel.json`.
//!
//! Flags:
//!
//! * `--cores <n>` — core count (default 256).
//! * `--org <name>` — `ideal`, `distributed` (packet mesh), `smart`
//!   (monolithic over a SMART mesh), `nocstar` (circuit fabric) or `hier`
//!   (clustered bus + mesh overlay); default `distributed`.
//! * `--cluster-size <n>` — tiles per cluster for `--org hier`
//!   (default 16; must evenly divide `--cores`).
//! * `--parallel-domains <n>[,<n>...]` — simulation domain counts
//!   (default `1`). With several values the repetitions interleave
//!   across them round-robin, so slow host phases (VM steal, frequency
//!   drift) hit every configuration equally and the reported minima are
//!   comparable.
//! * `--warmup <n>` / `--measure <n>` — per-thread access counts
//!   (defaults 500 / 2000).
//! * `--reps <n>` — timed repetitions per domain count; the minimum is
//!   reported (default 3).

use nocstar::prelude::*;
use std::time::Instant;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    match flag(args, name).map(|v| v.parse::<u64>()) {
        None => default,
        Some(Ok(n)) => n,
        Some(Err(e)) => {
            eprintln!("error: bad {name} value: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_org(name: &str, cores: usize, cluster_size: usize) -> TlbOrg {
    match name {
        "ideal" => TlbOrg::paper_ideal(),
        "distributed" => TlbOrg::paper_distributed(),
        "smart" => TlbOrg::Monolithic {
            entries_per_core: 1024,
            banks: cores,
            net: MonolithicNet::Smart(8),
            latency_override: None,
        },
        "nocstar" => TlbOrg::paper_nocstar(),
        "hier" => TlbOrg::paper_hier(cluster_size),
        other => {
            eprintln!(
                "error: unknown --org {other:?} \
                 (expected ideal|distributed|smart|nocstar|hier)"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cores = flag_u64(&args, "--cores", 256) as usize;
    let cluster_size = flag_u64(&args, "--cluster-size", 16) as usize;
    let org_name = flag(&args, "--org").unwrap_or_else(|| "distributed".into());
    let org = parse_org(&org_name, cores, cluster_size);
    let domain_list: Vec<usize> = flag(&args, "--parallel-domains")
        .unwrap_or_else(|| "1".into())
        .split(',')
        .map(|v| match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: bad --parallel-domains value {v:?}");
                std::process::exit(2);
            }
        })
        .collect();
    let warmup = flag_u64(&args, "--warmup", 500);
    let measure = flag_u64(&args, "--measure", 2000);
    let reps = flag_u64(&args, "--reps", 3).max(1);

    let mut best_ms = vec![f64::INFINITY; domain_list.len()];
    let mut cycles = 0u64;
    let mut accesses = 0u64;
    for _ in 0..reps {
        for (i, &domains) in domain_list.iter().enumerate() {
            let mut config = SystemConfig::new(cores, org);
            config.parallel_domains = domains;
            let workload = WorkloadAssignment::preset(&config, Preset::Redis);
            let sim = Simulation::new(config, workload);
            let start = Instant::now();
            let report = sim.run_measured(warmup, measure);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            best_ms[i] = best_ms[i].min(ms);
            cycles = report.cycles;
            accesses = report.accesses;
        }
    }
    for (i, &domains) in domain_list.iter().enumerate() {
        let events_per_sec = accesses as f64 / (best_ms[i] / 1e3);
        println!(
            "{{\"org\":\"{org_name}\",\"cores\":{cores},\"domains\":{domains},\
             \"warmup\":{warmup},\"measure\":{measure},\"reps\":{reps},\
             \"wall_ms\":{:.1},\"events_per_sec\":{events_per_sec:.0},\
             \"cycles\":{cycles},\"accesses\":{accesses}}}",
            best_ms[i]
        );
    }
}
