//! Regenerates the design-choice ablations; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::ablation::run(nocstar_bench::Effort::from_env());
}
