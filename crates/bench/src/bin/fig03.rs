//! Regenerates the paper's fig03 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig03::run(nocstar_bench::Effort::from_env());
}
