//! Regenerates the paper's fig12 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig12::run(nocstar_bench::Effort::from_env());
}
