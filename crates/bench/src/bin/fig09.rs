//! Regenerates the paper's fig09 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig09::run(nocstar_bench::Effort::from_env());
}
