//! Regenerates the paper's fig11a experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig11a::run(nocstar_bench::Effort::from_env());
}
