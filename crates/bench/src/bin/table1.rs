//! Regenerates the paper's table1 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::table1::run(nocstar_bench::Effort::from_env());
}
