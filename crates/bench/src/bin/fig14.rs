//! Regenerates the paper's fig14 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig14::run(nocstar_bench::Effort::from_env());
}
