//! Regenerates the paper's slice_ubench experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::slice_ubench::run(nocstar_bench::Effort::from_env());
}
