//! Regenerates the paper's fig16 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig16::run(nocstar_bench::Effort::from_env());
}
