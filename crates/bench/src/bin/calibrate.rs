//! Calibration sweep (not a paper figure): for every preset, report the
//! quantities the paper anchors its analysis on — L1 TLB miss rate,
//! private L2 TLB miss rate (target band 5–18 %), shared-TLB miss
//! elimination at 16/32/64 cores (target 70–90 % at higher core counts),
//! mean translation latency, and headline speedups — so workload
//! parameters can be tuned against them. Pass `--no-thp` for the 4 KiB-
//! only mode, `--quick` for short runs.

use nocstar::prelude::*;
use nocstar_bench::{parallel_map, Effort};

fn main() {
    let effort = Effort::from_env();
    let thp = !std::env::args().any(|a| a == "--no-thp");
    println!(
        "calibration at {} accesses/thread (warmup {}), THP {}\n",
        effort.accesses,
        effort.warmup,
        if thp { "on" } else { "off" }
    );

    let jobs: Vec<Preset> = Preset::ALL.to_vec();
    let rows = parallel_map(jobs, |&preset| {
        let run = |cores: usize, org: TlbOrg| {
            effort.run_with(cores, org, preset, |config| config.thp = thp)
        };
        let p16 = run(16, TlbOrg::paper_private());
        let p32 = run(32, TlbOrg::paper_private());
        let p64 = run(64, TlbOrg::paper_private());
        let i16 = run(16, TlbOrg::paper_ideal());
        let i32r = run(32, TlbOrg::paper_ideal());
        let i64r = run(64, TlbOrg::paper_ideal());
        let n16 = run(16, TlbOrg::paper_nocstar());
        let d16 = run(16, TlbOrg::paper_distributed());
        let m16 = run(16, TlbOrg::paper_monolithic(16));
        vec![
            preset.name().to_string(),
            format!("{:.1}", p16.l1.miss_rate() * 100.0),
            format!("{:.1}", p16.l2.miss_rate() * 100.0),
            format!("{:.0}", i16.misses_eliminated_vs(&p16)),
            format!("{:.0}", i32r.misses_eliminated_vs(&p32)),
            format!("{:.0}", i64r.misses_eliminated_vs(&p64)),
            format!("{:.1}", p16.translation_latency.mean()),
            format!("{:.3}", m16.speedup_vs(&p16)),
            format!("{:.3}", d16.speedup_vs(&p16)),
            format!("{:.3}", n16.speedup_vs(&p16)),
            format!("{:.3}", i16.speedup_vs(&p16)),
        ]
    });

    let mut table = Table::new([
        "workload",
        "L1miss%",
        "privL2miss%",
        "elim16%",
        "elim32%",
        "elim64%",
        "xlat(priv)",
        "mono",
        "dist",
        "nocstar",
        "ideal",
    ]);
    for row in rows {
        table.row(row);
    }
    println!("{table}");
}
