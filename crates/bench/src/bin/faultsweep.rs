//! Runs the fault-injection degradation sweep; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::faultsweep::run(nocstar_bench::Effort::from_env());
}
