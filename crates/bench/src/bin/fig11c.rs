//! Regenerates the paper's fig11c experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig11c::run(nocstar_bench::Effort::from_env());
}
