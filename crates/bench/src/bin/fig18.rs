//! Regenerates the paper's fig18 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig18::run(nocstar_bench::Effort::from_env());
}
