//! Regenerates the paper's table3 experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::table3::run(nocstar_bench::Effort::from_env());
}
