//! Validates sampled fast-forward replay against exact replay of the same
//! span (confidence-interval coverage, detailed-event reduction); see
//! `experiments::sampled` and `SAMPLING.md`.
fn main() {
    nocstar_bench::experiments::sampled::run(nocstar_bench::Effort::from_env());
}
