//! Regenerates the paper's fig11b experiment; pass `--quick` for a short run.
fn main() {
    nocstar_bench::experiments::fig11b::run(nocstar_bench::Effort::from_env());
}
