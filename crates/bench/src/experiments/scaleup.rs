//! Scale-up study for the hierarchical cluster fabric (DESIGN.md §13):
//! average translation latency of the flat-mesh distributed L2, the
//! SMART-connected monolithic L2, and the hierarchical cluster fabric as
//! the chip grows from 64 to 1024 cores.
//!
//! The flat mesh pays ~`2 * sqrt(N)` cycles per lookup at N cores; the
//! hierarchical fabric keeps every lookup inside a one-cycle cluster bus
//! and rides the overlay only for shootdown invalidations, so its curve
//! should stay flat. The `hier/mesh` column makes the crossover explicit
//! (`claim_hier_beats_flat_mesh_at_scale` pins it at 512+ cores).

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

/// Tiles per cluster for the `hier` column (the paper-style default).
const CLUSTER: usize = 16;

fn orgs(cores: usize) -> [(&'static str, TlbOrg); 3] {
    [
        ("mesh (flat)", TlbOrg::paper_distributed()),
        (
            "smart",
            TlbOrg::Monolithic {
                entries_per_core: 1024,
                banks: cores,
                net: MonolithicNet::Smart(8),
                latency_override: None,
            },
        ),
        ("hier", TlbOrg::paper_hier(CLUSTER)),
    ]
}

/// Regenerates the scale-up table.
pub fn run(effort: Effort) {
    let core_counts: &[usize] = if effort.quick {
        &[64, 256, 1024]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    // Per-thread access counts stay small: total work already scales with
    // the core count, and latency means converge within a few hundred
    // accesses per thread.
    let scaled = Effort {
        warmup: if effort.quick { 150 } else { 300 },
        accesses: if effort.quick { 350 } else { 700 },
        quick: effort.quick,
    };
    let jobs: Vec<(usize, usize)> = core_counts
        .iter()
        .flat_map(|&cores| (0..orgs(cores).len()).map(move |i| (cores, i)))
        .collect();
    let latencies = parallel_map(jobs.clone(), |&(cores, i)| {
        let (_, org) = orgs(cores)[i];
        scaled
            .run(cores, org, Preset::Redis)
            .translation_latency
            .mean()
    });
    let mut table = Table::new(["cores", "mesh (flat)", "smart", "hier", "hier/mesh"]);
    for (row, &cores) in core_counts.iter().enumerate() {
        let at = |i: usize| latencies[row * 3 + i];
        table.row([
            cores.to_string(),
            format!("{:.2}", at(0)),
            format!("{:.2}", at(1)),
            format!("{:.2}", at(2)),
            format!("{:.3}", at(2) / at(0)),
        ]);
    }
    emit(
        "scaleup",
        "Scale-up: avg translation latency (cycles) per fabric, 64-1024 cores (redis)",
        &table,
    );
}
