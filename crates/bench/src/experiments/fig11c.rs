//! Fig 11(c): uniform-random synthetic traffic on a 64-core system —
//! average network latency versus injection rate for the NOCSTAR fabric
//! and a multi-hop mesh, plus the fraction of NOCSTAR messages that
//! acquire their path with no contention.

use crate::{emit, parallel_map, Effort};
use nocstar::noc::circuit::{AcquireMode, CircuitFabric};
use nocstar::noc::mesh::MeshNoc;
use nocstar::noc::traffic::run_uniform_random;
use nocstar::prelude::*;

const RATES: [f64; 9] = [0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4];

/// Regenerates Fig 11(c).
pub fn run(effort: Effort) {
    let mesh = MeshShape::square_for(64);
    let cycles = if effort.quick { 1_000 } else { 5_000 };
    let rows = parallel_map(RATES.to_vec(), |&rate| {
        let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let nocstar = run_uniform_random(&mut fabric, mesh, rate, cycles, 42);
        // The multi-hop mesh saturates under uniform-random load beyond
        // ~0.2 msgs/core/cycle (its post-injection drain becomes very
        // long); report it only in its stable region.
        let mesh_report = (rate <= 0.2).then(|| {
            let mut multihop = MeshNoc::contended(mesh);
            run_uniform_random(&mut multihop, mesh, rate, cycles, 42)
        });
        (rate, nocstar, mesh_report)
    });

    let mut table = Table::new([
        "injection rate",
        "NOCSTAR latency",
        "mesh latency",
        "% no contention (NOCSTAR)",
    ]);
    for (rate, nocstar, mesh_report) in rows {
        table.row([
            format!("{rate}"),
            format!("{:.2}", nocstar.mean_latency),
            mesh_report
                .map(|m| format!("{:.2}", m.mean_latency))
                .unwrap_or_else(|| "saturated".into()),
            format!("{:.0}", nocstar.no_contention_fraction * 100.0),
        ]);
    }
    emit(
        "fig11c",
        "Fig 11(c): synthetic uniform-random traffic on 64 cores",
        &table,
    );
    println!("(paper: NOCSTAR stays within ~3 cycles at 0.1 msgs/core/cycle)\n");
}
