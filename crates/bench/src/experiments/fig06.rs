//! Fig 6: shared-L2-TLB access concurrency averaged over workloads —
//! (left) versus L1 TLB sizing (0.5x / baseline / 1.5x) and core count
//! (64–512); (right) per-slice concurrency when the shared TLB is
//! distributed into one slice per core (32–512 slices).
//!
//! Core counts of 256+ are large simulations; the access quota is reduced
//! there (concurrency distributions converge quickly).

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;
use nocstar::stats::histogram::ConcurrencyBins;

/// The workload subset averaged in each bar (a representative mix of
/// memory intensities, keeping 512-core runs tractable).
const WORKLOADS: [Preset; 4] = [
    Preset::Canneal,
    Preset::Graph500,
    Preset::Gups,
    Preset::Redis,
];

fn quota(effort: Effort, cores: usize) -> u64 {
    if cores >= 256 {
        effort.accesses / 4
    } else if cores >= 128 {
        effort.accesses / 2
    } else {
        effort.accesses
    }
}

fn averaged_bins<F>(effort: Effort, cores: usize, chip: bool, tweak: F) -> ConcurrencyBins
where
    F: Fn(&mut SystemConfig) + Sync,
{
    let bins_list = parallel_map(WORKLOADS.to_vec(), |&preset| {
        let org = if chip {
            TlbOrg::paper_monolithic(cores)
        } else {
            TlbOrg::paper_distributed()
        };
        let mut config = SystemConfig::new(cores, org);
        tweak(&mut config);
        // Measure under the paper's access intensity (see fig05).
        let mut spec = preset.spec();
        spec.mem_op_gap *= super::fig05::GAP_SCALE;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let report =
            Simulation::new(config, workload).run_measured(effort.warmup / 2, quota(effort, cores));
        if chip {
            report.chip_concurrency
        } else {
            report.slice_concurrency
        }
    });
    let mut merged = ConcurrencyBins::new();
    for b in &bins_list {
        merged.merge(b);
    }
    merged
}

/// Regenerates Fig 6 (both panels).
pub fn run(effort: Effort) {
    let mut headers = vec!["configuration".to_string()];
    headers.extend(ConcurrencyBins::LABELS.iter().map(|l| l.to_string()));

    // Left panel: chip-wide concurrency vs L1 size and core count.
    let mut left = Table::new(headers.clone());
    let baseline = averaged_bins(effort, 32, true, |_| {});
    left.row_values("baseline (32c)", &baseline.fractions());
    let half = averaged_bins(effort, 32, true, |c| c.l1_scale = 0.5);
    left.row_values("0.5x L1", &half.fractions());
    let bigger = averaged_bins(effort, 32, true, |c| c.l1_scale = 1.5);
    left.row_values("1.5x L1", &bigger.fractions());
    let counts: &[usize] = if effort.quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    for &cores in counts {
        let bins = averaged_bins(effort, cores, true, |_| {});
        left.row_values(format!("{cores} cores"), &bins.fractions());
    }
    emit(
        "fig06_left",
        "Fig 6 (left): shared L2 TLB concurrency vs L1 size and core count",
        &left,
    );

    // Right panel: per-slice concurrency with slices == cores.
    let mut right = Table::new(headers);
    let slice_counts: &[usize] = if effort.quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256, 512]
    };
    for &cores in slice_counts {
        let bins = averaged_bins(effort, cores, false, |_| {});
        right.row_values(format!("{cores} slices"), &bins.fractions());
    }
    emit(
        "fig06_right",
        "Fig 6 (right): per-slice access concurrency, one slice per core",
        &right,
    );
}
