//! Table III: sensitivity of the monolithic / distributed / NOCSTAR
//! speedups (min/avg/max over all workloads, 32 cores) to TLB prefetching
//! depth, SMT degree, and page-table-walk latency (variable vs fixed
//! 10/20/40/80 cycles).

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

#[derive(Clone, Copy)]
struct Scenario {
    label: &'static str,
    prefetch: u8,
    smt: usize,
    walk: WalkLatency,
}

const SCENARIOS: [Scenario; 10] = [
    Scenario {
        label: "no pref, SMT1, variable",
        prefetch: 0,
        smt: 1,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "pref +/-1",
        prefetch: 1,
        smt: 1,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "pref +/-1,2",
        prefetch: 2,
        smt: 1,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "pref +/-1-3",
        prefetch: 3,
        smt: 1,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "SMT2",
        prefetch: 0,
        smt: 2,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "SMT4",
        prefetch: 0,
        smt: 4,
        walk: WalkLatency::Variable,
    },
    Scenario {
        label: "fixed-10 PTW",
        prefetch: 0,
        smt: 1,
        walk: WalkLatency::Fixed(Cycles::new(10)),
    },
    Scenario {
        label: "fixed-20 PTW",
        prefetch: 0,
        smt: 1,
        walk: WalkLatency::Fixed(Cycles::new(20)),
    },
    Scenario {
        label: "fixed-40 PTW",
        prefetch: 0,
        smt: 1,
        walk: WalkLatency::Fixed(Cycles::new(40)),
    },
    Scenario {
        label: "fixed-80 PTW",
        prefetch: 0,
        smt: 1,
        walk: WalkLatency::Fixed(Cycles::new(80)),
    },
];

/// Regenerates Table III.
pub fn run(effort: Effort) {
    let cores = 32;
    let mut table = Table::new(["scenario", "organization", "min", "avg", "max"]);
    for scenario in SCENARIOS {
        if effort.quick && scenario.smt > 2 {
            continue;
        }
        let orgs = [
            ("Monolithic", TlbOrg::paper_monolithic(cores)),
            ("Distributed", TlbOrg::paper_distributed()),
            ("NOCSTAR", TlbOrg::paper_nocstar()),
        ];
        let jobs: Vec<Preset> = Preset::ALL.to_vec();
        // SMT multiplies the thread count; shrink per-thread quotas to
        // keep scenario cost flat.
        let warmup = effort.warmup / scenario.smt as u64;
        let quota = (effort.accesses / scenario.smt as u64).max(1_000);
        let tweak = |c: &mut SystemConfig| {
            c.smt = scenario.smt;
            c.prefetch = PrefetchDepth::new(scenario.prefetch).expect("depth <= 3");
            c.walk_latency = scenario.walk;
        };
        let per_workload = parallel_map(jobs, |&preset| {
            let mut bc = SystemConfig::new(cores, TlbOrg::paper_private());
            tweak(&mut bc);
            let bw = WorkloadAssignment::preset(&bc, preset);
            let baseline = Simulation::new(bc, bw).run_measured(warmup, quota);
            orgs.map(|(_, org)| {
                let mut c = SystemConfig::new(cores, org);
                tweak(&mut c);
                let w = WorkloadAssignment::preset(&c, preset);
                Simulation::new(c, w)
                    .run_measured(warmup, quota)
                    .speedup_vs(&baseline)
            })
        });
        for (i, (name, _)) in orgs.iter().enumerate() {
            let s = Summary::of(per_workload.iter().map(|w| w[i]));
            table.row([
                scenario.label.to_string(),
                name.to_string(),
                format!("{:.2}", s.min()),
                format!("{:.2}", s.mean()),
                format!("{:.2}", s.max()),
            ]);
        }
    }
    emit(
        "table3",
        "Table III: sensitivity to prefetching, SMT, and walk latency (32 cores)",
        &table,
    );
}
