//! Fig 14: scalability — (left) min/avg/max speedups of monolithic /
//! distributed / NOCSTAR over private L2 TLBs at 16/32/64 cores, with
//! transparent superpages; (right) percent of address-translation energy
//! saved versus the private baseline.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

/// Regenerates Fig 14 (both panels).
pub fn run(effort: Effort) {
    let mut speed = Table::new(["cores", "organization", "min", "avg", "max"]);
    let mut energy = Table::new(["cores", "organization", "% energy saved (avg)"]);
    for cores in [16usize, 32, 64] {
        let orgs = [
            ("Monolithic", TlbOrg::paper_monolithic(cores)),
            ("Distributed", TlbOrg::paper_distributed()),
            ("NOCSTAR", TlbOrg::paper_nocstar()),
        ];
        let jobs: Vec<Preset> = Preset::ALL.to_vec();
        let per_workload = parallel_map(jobs, |&preset| {
            let baseline = effort.run(cores, TlbOrg::paper_private(), preset);
            orgs.map(|(_, org)| {
                let r = effort.run(cores, org, preset);
                (
                    r.speedup_vs(&baseline),
                    r.energy.percent_saved_vs(&baseline.energy),
                )
            })
        });
        for (i, (name, _)) in orgs.iter().enumerate() {
            let speeds = Summary::of(per_workload.iter().map(|w| w[i].0));
            let saved = Summary::of(per_workload.iter().map(|w| w[i].1.max(0.0)));
            speed.row([
                cores.to_string(),
                name.to_string(),
                format!("{:.3}", speeds.min()),
                format!("{:.3}", speeds.mean()),
                format!("{:.3}", speeds.max()),
            ]);
            energy.row([
                cores.to_string(),
                name.to_string(),
                format!("{:.0}", saved.mean()),
            ]);
        }
    }
    emit(
        "fig14_left",
        "Fig 14 (left): speedup vs private by core count (min/avg/max over workloads)",
        &speed,
    );
    emit(
        "fig14_right",
        "Fig 14 (right): % of address-translation energy saved vs private",
        &energy,
    );
}
