//! Fig 13: the Fig 12 comparison with Linux-style transparent 2 MiB
//! superpages enabled (50–80 % of each workload's footprint superpage-
//! backed). The paper finds NOCSTAR's margins *grow* with superpages:
//! they cut shared-L2 misses, so access latency dominates.

use crate::{emit, Effort};
use nocstar::prelude::*;

/// Regenerates Fig 13.
pub fn run(effort: Effort) {
    let cores = 16;
    let orgs = [
        ("Monolithic", TlbOrg::paper_monolithic(cores)),
        ("Distributed", TlbOrg::paper_distributed()),
        ("NOCSTAR", TlbOrg::paper_nocstar()),
        ("Ideal", TlbOrg::paper_ideal()),
    ];
    let table = super::speedup_table(effort, cores, &orgs, true);
    emit(
        "fig13",
        "Fig 13: speedups vs private L2 TLBs (16 cores, transparent 2MB superpages)",
        &table,
    );
}
