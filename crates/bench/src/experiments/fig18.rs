//! Fig 18: all C(11,4) = 330 multiprogrammed 4-application mixes on 32
//! cores (8 threads per application, each in its own address space):
//! (top) overall throughput speedup over private L2 TLBs, sorted;
//! (bottom) the speedup of the worst-performing application in each mix.
//!
//! This is the largest sweep — 4 organizations x 330 mixes. The full CSV
//! contains every mix; the printed table summarizes the sorted curves at
//! percentiles plus degradation counts.

use crate::{emit, out_dir, parallel_map, Effort};
use nocstar::prelude::*;

struct MixResult {
    mix: String,
    throughput_speedup: [f64; 3],
    min_app_speedup: [f64; 3],
}

/// Regenerates Fig 18.
pub fn run(effort: Effort) {
    let cores = 32;
    let orgs = [
        TlbOrg::paper_monolithic(cores),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
    ];
    let mixes = all_mixes();
    let mixes = if effort.quick {
        mixes.into_iter().step_by(10).collect::<Vec<_>>()
    } else {
        mixes
    };
    // Mixes are heavy; use a reduced per-thread quota to keep the sweep
    // tractable (speedup ratios converge quickly).
    let warmup = effort.warmup / 4;
    let quota = effort.accesses / 4;

    let results: Vec<MixResult> = parallel_map(mixes, |&mix| {
        let run_one = |org: TlbOrg| {
            let config = SystemConfig::new(cores, org);
            let workload = WorkloadAssignment::mix(&config, mix);
            Simulation::new(config, workload).run_measured(warmup, quota)
        };
        let base = run_one(TlbOrg::paper_private());
        let base_apps = base.app_finish_times(Mix::THREADS_PER_APP);
        let mut throughput_speedup = [0.0; 3];
        let mut min_app_speedup = [0.0; 3];
        for (i, &org) in orgs.iter().enumerate() {
            let r = run_one(org);
            throughput_speedup[i] = r.throughput() / base.throughput();
            let apps = r.app_finish_times(Mix::THREADS_PER_APP);
            min_app_speedup[i] = base_apps
                .iter()
                .zip(&apps)
                .map(|(&b, &a)| b as f64 / a.max(1) as f64)
                .fold(f64::INFINITY, f64::min);
        }
        MixResult {
            mix: mix.to_string(),
            throughput_speedup,
            min_app_speedup,
        }
    });

    // Full CSV with one row per mix.
    let mut full = Table::new([
        "mix",
        "mono tput",
        "dist tput",
        "nocstar tput",
        "mono minapp",
        "dist minapp",
        "nocstar minapp",
    ]);
    for r in &results {
        full.row([
            r.mix.clone(),
            format!("{:.3}", r.throughput_speedup[0]),
            format!("{:.3}", r.throughput_speedup[1]),
            format!("{:.3}", r.throughput_speedup[2]),
            format!("{:.3}", r.min_app_speedup[0]),
            format!("{:.3}", r.min_app_speedup[1]),
            format!("{:.3}", r.min_app_speedup[2]),
        ]);
    }
    std::fs::write(out_dir().join("fig18_full.csv"), full.to_csv()).expect("write csv");

    // Printed summary: sorted-curve percentiles + degradation counts.
    let names = ["Monolithic", "Distributed", "NOCSTAR"];
    let mut summary = Table::new([
        "organization",
        "tput p10",
        "tput p50",
        "tput p90",
        "% mixes tput degraded",
        "minapp p10",
        "minapp p50",
        "% mixes minapp degraded",
        "worst minapp",
    ]);
    let pct = |sorted: &[f64], p: f64| sorted[(p * (sorted.len() - 1) as f64) as usize];
    for (i, name) in names.iter().enumerate() {
        let mut tput: Vec<f64> = results.iter().map(|r| r.throughput_speedup[i]).collect();
        let mut minapp: Vec<f64> = results.iter().map(|r| r.min_app_speedup[i]).collect();
        tput.sort_by(f64::total_cmp);
        minapp.sort_by(f64::total_cmp);
        let degraded_tput = tput.iter().filter(|&&s| s < 1.0).count();
        let degraded_min = minapp.iter().filter(|&&s| s < 0.99).count();
        summary.row([
            name.to_string(),
            format!("{:.3}", pct(&tput, 0.1)),
            format!("{:.3}", pct(&tput, 0.5)),
            format!("{:.3}", pct(&tput, 0.9)),
            format!("{:.0}", degraded_tput as f64 / tput.len() as f64 * 100.0),
            format!("{:.3}", pct(&minapp, 0.1)),
            format!("{:.3}", pct(&minapp, 0.5)),
            format!("{:.0}", degraded_min as f64 / minapp.len() as f64 * 100.0),
            format!("{:.3}", minapp[0]),
        ]);
    }
    emit(
        "fig18",
        &format!(
            "Fig 18: {} multiprogrammed 4-app mixes on 32 cores (full curves in fig18_full.csv)",
            results.len()
        ),
        &summary,
    );
}
