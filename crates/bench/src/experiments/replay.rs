//! Single-run driver for trace replay: runs one workload under one
//! organization and persists the full `SimReport` as JSON, so a replayed
//! `.nct` file (via `--trace-file`, see `TRACE_FORMAT.md`) can be diffed
//! byte-for-byte against the live-generator run it captured. The nightly
//! CI gate does exactly that; see `scripts/ci.sh`.
//!
//! Flags (besides the harness-wide `--quick`, `--trace-file`, `--faults`):
//!
//! * `--cores <n>` — core count (default 16).
//! * `--org <name>` — `private`, `monolithic`, `distributed`, `nocstar`
//!   or `ideal` (default `nocstar`).
//! * `--preset <name>` — workload by paper label (default `redis`); with
//!   `--trace-file` the address streams come from the file and this only
//!   names the fallback/labels.
//! * `--warmup <n>` / `--measure <n>` — override the effort's per-thread
//!   access counts.

use crate::{emit, out_dir, Effort};
use nocstar::prelude::*;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_count(args: &[String], flag: &str) -> Option<u64> {
    arg_value(args, flag).map(|v| match v.parse::<u64>() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: bad {flag} value {v:?}: {e}");
            std::process::exit(2);
        }
    })
}

fn parse_org(name: &str, cores: usize) -> TlbOrg {
    match name {
        "private" => TlbOrg::paper_private(),
        "monolithic" => TlbOrg::paper_monolithic(cores),
        "distributed" => TlbOrg::paper_distributed(),
        "nocstar" => TlbOrg::paper_nocstar(),
        "ideal" => TlbOrg::paper_ideal(),
        other => {
            eprintln!(
                "error: unknown --org {other:?} \
                 (expected private|monolithic|distributed|nocstar|ideal)"
            );
            std::process::exit(2);
        }
    }
}

/// Runs the single configured simulation and persists its report.
pub fn run(effort: Effort) {
    let args: Vec<String> = std::env::args().collect();
    let cores = parse_count(&args, "--cores").unwrap_or(16) as usize;
    let org = parse_org(
        &arg_value(&args, "--org").unwrap_or_else(|| "nocstar".into()),
        cores,
    );
    let preset_name = arg_value(&args, "--preset").unwrap_or_else(|| "redis".into());
    let preset = match Preset::from_name(&preset_name) {
        Some(p) => p,
        None => {
            eprintln!("error: unknown --preset {preset_name:?}");
            std::process::exit(2);
        }
    };
    let effort = Effort {
        warmup: parse_count(&args, "--warmup").unwrap_or(effort.warmup),
        accesses: parse_count(&args, "--measure").unwrap_or(effort.accesses),
        ..effort
    };

    let report = effort.run(cores, org, preset);

    let mut table = Table::new(["metric", "value"]);
    table.row(["workload".to_string(), report.label.clone()]);
    table.row(["organization".to_string(), report.org_label.clone()]);
    table.row(["cores".to_string(), report.cores.to_string()]);
    table.row(["cycles".to_string(), report.cycles.to_string()]);
    table.row(["accesses".to_string(), report.accesses.to_string()]);
    table.row([
        "l1 hit rate".to_string(),
        format!("{:.4}", report.l1.hit_rate()),
    ]);
    table.row([
        "l2 hit rate".to_string(),
        format!("{:.4}", report.l2.hit_rate()),
    ]);
    table.row(["page walks".to_string(), report.walks.to_string()]);
    emit("replay", "Trace replay: single-run report", &table);

    let path = out_dir().join("replay.report.json");
    let mut text = report.to_json().to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write replay report");
    println!("(saved {})\n", path.display());
}
