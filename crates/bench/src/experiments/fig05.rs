//! Fig 5: for every shared L2 TLB access on a 32-core system, how many
//! accesses were in flight concurrently (1, 2–4, …, 29–32).
//!
//! Profiled on the banked monolithic shared TLB, as in the paper's
//! original shared-TLB setup.
//!
//! Concurrency depends on how often cores reach the L2 TLB per cycle. Our
//! presets are calibrated to translation-*cost* bands (DESIGN.md §6) and
//! are several times more memory-op-dense than the paper's full
//! applications, so this figure measures under the paper's intensity by
//! widening the non-memory gaps (`GAP_SCALE`); the distribution shape is
//! what the paper's argument rests on.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;
use nocstar::stats::histogram::ConcurrencyBins;

/// Non-memory-work multiplier restoring the paper's access intensity.
pub(crate) const GAP_SCALE: u64 = 32;

/// Regenerates Fig 5.
pub fn run(effort: Effort) {
    let cores = 32;
    let jobs: Vec<Preset> = Preset::ALL.to_vec();
    let rows = parallel_map(jobs, |&preset| {
        let config = SystemConfig::new(cores, TlbOrg::paper_monolithic(cores));
        let mut spec = preset.spec();
        spec.mem_op_gap *= GAP_SCALE;
        let workload = WorkloadAssignment::homogeneous(&config, spec);
        let report = Simulation::new(config, workload).run_measured(effort.warmup, effort.accesses);
        (preset, report.chip_concurrency.clone())
    });

    let mut headers = vec!["workload".to_string()];
    headers.extend(ConcurrencyBins::LABELS.iter().map(|l| l.to_string()));
    let mut table = Table::new(headers);
    let mut average = ConcurrencyBins::new();
    for (preset, bins) in rows {
        let fracs: Vec<f64> = bins.fractions();
        table.row_values(preset.name(), &fracs);
        average.merge(&bins);
    }
    table.row_values("average", &average.fractions());
    emit(
        "fig05",
        "Fig 5: concurrency of shared L2 TLB accesses (fraction per bin, 32 cores)",
        &table,
    );
    println!(
        "isolated accesses on average: {:.0}% (paper: >40%)\n",
        average.isolated_fraction() * 100.0
    );
}
