//! Fig 3: SRAM TLB access latency versus capacity (0.5x–64x of a
//! 1536-entry private L2 TLB), from the calibrated Fig 3 model.

use crate::{emit, Effort};
use nocstar::prelude::*;
use nocstar::tlb::sram;

/// Regenerates Fig 3.
pub fn run(_effort: Effort) {
    let mut table = Table::new(["size vs private TLB", "entries", "cycles"]);
    for (ratio, entries, cycles) in sram::fig3_series() {
        table.row([
            format!("{ratio}x"),
            entries.to_string(),
            cycles.value().to_string(),
        ]);
    }
    emit(
        "fig03",
        "Fig 3: SRAM TLB access latency vs number of entries (28nm model)",
        &table,
    );
}
