//! §V's second pathological microbenchmark: N−1 threads continuously
//! hammer the L2 TLB slice of the Nth core while the victim core runs a
//! real workload. The paper finds NOCSTAR still beats private L2 TLBs by
//! 3–5 % and every other shared organization by ≥7 % even here.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

/// Pages the hammer threads cycle through (all homed on the victim slice).
const HAMMER_PAGES: u64 = 4_096;

fn run_one(effort: Effort, cores: usize, org: TlbOrg) -> SimReport {
    let config = SystemConfig::new(cores, org);
    let workload = WorkloadAssignment::slice_hammer(&config, Preset::Canneal, HAMMER_PAGES);
    Simulation::new(config, workload).run_measured(effort.warmup / 2, effort.accesses / 2)
}

/// Regenerates the slice-congestion study.
pub fn run(effort: Effort) {
    let mut table = Table::new([
        "cores",
        "organization",
        "victim speedup vs private",
        "overall speedup vs private",
    ]);
    for cores in [16usize, 32] {
        let orgs = vec![
            ("Monolithic", TlbOrg::paper_monolithic(cores)),
            ("Distributed", TlbOrg::paper_distributed()),
            ("NOCSTAR", TlbOrg::paper_nocstar()),
        ];
        let base = run_one(effort, cores, TlbOrg::paper_private());
        let base_victim = *base.per_thread_finish.last().expect("victim thread") as f64;
        let rows = parallel_map(orgs, |&(name, org)| {
            let r = run_one(effort, cores, org);
            let victim = *r.per_thread_finish.last().expect("victim thread") as f64;
            (name, base_victim / victim.max(1.0), r.speedup_vs(&base))
        });
        for (name, victim, overall) in rows {
            table.row([
                cores.to_string(),
                name.to_string(),
                format!("{victim:.3}"),
                format!("{overall:.3}"),
            ]);
        }
    }
    emit(
        "slice_ubench",
        "TLB-slice congestion microbenchmark (N-1 threads hammering one slice)",
        &table,
    );
}
