//! Validation of sampled fast-forward replay (`SAMPLING.md §7`): replays
//! the same trace span exactly and sampled, prints each estimated metric's
//! 95 % confidence interval next to the exact value (with a `covered`
//! verdict), and reports how many accesses entered the cycle-accurate core
//! under each mode — the ≥10× reduction that makes production-length
//! traces tractable.
//!
//! The exact run measures the span's tail after a conventional warmup; the
//! sampled run covers the same span with periodic windows, so the two
//! estimate the same steady-state rates (window-edge bias caveats:
//! `SAMPLING.md §7`).
//!
//! The fixture is the redis spec with OS page remaps disabled: shootdowns
//! are rare discrete events (a handful per million accesses) that a
//! periodic sample has essentially no power against — the documented
//! rare-event caveat of `SAMPLING.md §7` — so the validation isolates the
//! steady-state rates sampling is actually for.

use crate::{emit, Effort};
use nocstar::prelude::*;

/// Exact-vs-sampled validation on a remap-free redis spec under NOCSTAR.
pub fn run(effort: Effort) {
    let cores = 4;
    let (span, exact_warmup, spec) = if effort.quick {
        (4_000u64, 400u64, "800:40:20@7")
    } else {
        (10_000u64, 500u64, "1000:60:30@7")
    };
    let spec: SampleSpec = spec.parse().expect("valid sample spec");
    let mut workload_spec = Preset::Redis.spec();
    workload_spec.remaps_per_million = 0.0;
    let build = || {
        let config = SystemConfig::new(cores, TlbOrg::paper_nocstar());
        let workload = WorkloadAssignment::homogeneous(&config, workload_spec);
        Simulation::new(config, workload)
    };
    let exact = build().run_measured(exact_warmup, span - exact_warmup);
    let sampled = build().run_sampled(spec, span);
    let s = sampled.sampling.as_ref().expect("sampled report");

    let measured = ((span - exact_warmup) * cores as u64) as f64;
    let exact_values = [
        (
            "cycles_per_access",
            exact.cycles as f64 / (span - exact_warmup) as f64,
        ),
        ("l1_miss_rate", exact.l1.miss_rate()),
        ("l2_miss_rate", exact.l2.miss_rate()),
        ("walks_per_access", exact.walks as f64 / measured),
        (
            "walks_llc_or_mem_per_access",
            exact.walks_llc_or_mem as f64 / measured,
        ),
        ("shootdowns_per_access", exact.shootdowns as f64 / measured),
        ("flushes_per_access", exact.flushes as f64 / measured),
        ("translation_latency_mean", exact.translation_latency.mean()),
        ("energy_pj_per_access", exact.energy.total_pj() / measured),
    ];
    let mut table = Table::new([
        "metric", "exact", "sampled", "ci95_lo", "ci95_hi", "covered",
    ]);
    for (name, exact_v) in exact_values {
        let est = s.estimate(name).expect("estimate for every table metric");
        let covered = if est.interval.covers(exact_v) {
            "yes"
        } else {
            "no"
        };
        table.row([
            name.to_string(),
            format!("{exact_v:.6}"),
            format!("{:.6}", est.interval.mean()),
            format!("{:.6}", est.interval.lo()),
            format!("{:.6}", est.interval.hi()),
            covered.to_string(),
        ]);
    }
    let exact_detailed = span * cores as u64;
    let reduction = exact_detailed as f64 / s.accesses_detailed as f64;
    for (name, value) in [
        ("windows", s.windows.to_string()),
        ("detailed_accesses_exact", exact_detailed.to_string()),
        ("detailed_accesses_sampled", s.accesses_detailed.to_string()),
        ("detailed_reduction", format!("{reduction:.1}x")),
    ] {
        table.row([
            name.to_string(),
            value,
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    emit(
        "sampled",
        "Sampled replay validation: exact vs sampled (SAMPLING.md)",
        &table,
    );
}
