//! One module per paper figure/table; each exposes `run(effort)` which
//! prints the regenerated rows and saves a CSV under `bench_results/`.
//!
//! See DESIGN.md §3 for the experiment index mapping figures to modules.

use crate::{parallel_map, Effort};
use nocstar::prelude::*;

/// Per-workload speedups of `orgs` versus the private baseline, plus an
/// average row — the shape of Figs 12, 13 and 15.
pub(crate) fn speedup_table(
    effort: Effort,
    cores: usize,
    orgs: &[(&str, TlbOrg)],
    thp: bool,
) -> Table {
    let jobs: Vec<Preset> = Preset::ALL.to_vec();
    let rows = parallel_map(jobs, |&preset| {
        let baseline = effort.run_with(cores, TlbOrg::paper_private(), preset, |c| c.thp = thp);
        let speeds: Vec<f64> = orgs
            .iter()
            .map(|&(_, org)| {
                effort
                    .run_with(cores, org, preset, |c| c.thp = thp)
                    .speedup_vs(&baseline)
            })
            .collect();
        (preset, speeds)
    });
    let mut headers = vec!["workload".to_string()];
    headers.extend(orgs.iter().map(|(name, _)| name.to_string()));
    let mut table = Table::new(headers);
    let mut columns = vec![Vec::new(); orgs.len()];
    for (preset, speeds) in rows {
        table.row_values(preset.name(), &speeds);
        for (c, s) in columns.iter_mut().zip(&speeds) {
            c.push(*s);
        }
    }
    let avgs: Vec<f64> = columns
        .iter()
        .map(|c| Summary::of(c.clone()).mean())
        .collect();
    table.row_values("average", &avgs);
    table
}

pub mod ablation;
pub mod faultsweep;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig09;
pub mod fig11a;
pub mod fig11b;
pub mod fig11c;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod recovery;
pub mod replay;
pub mod sampled;
pub mod scaleup;
pub mod slice_ubench;
pub mod table1;
pub mod table2;
pub mod table3;
