//! Fig 17: page-table walks performed at the requesting core (miss reply,
//! walk, then remote insert) versus at the remote slice's core (walk and
//! translation reply, polluting the remote core's caches), on NOCSTAR at
//! 16/32/64 cores.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

const WORKLOADS: [Preset; 4] = [
    Preset::Canneal,
    Preset::Graph500,
    Preset::Gups,
    Preset::Xsbench,
];

/// Regenerates Fig 17.
pub fn run(effort: Effort) {
    let mut table = Table::new(["cores", "workload", "Request", "Remote"]);
    for cores in [16usize, 32, 64] {
        let rows = parallel_map(WORKLOADS.to_vec(), |&preset| {
            let base = effort.run(cores, TlbOrg::paper_private(), preset);
            let at = |policy: WalkPolicy| {
                effort
                    .run_with(cores, TlbOrg::paper_nocstar(), preset, |c| {
                        c.walk_policy = policy
                    })
                    .speedup_vs(&base)
            };
            (
                preset,
                at(WalkPolicy::AtRequester),
                at(WalkPolicy::AtRemote),
            )
        });
        let mut req = Vec::new();
        let mut rem = Vec::new();
        for (preset, r, m) in rows {
            table.row([
                cores.to_string(),
                preset.name().to_string(),
                format!("{r:.3}"),
                format!("{m:.3}"),
            ]);
            req.push(r);
            rem.push(m);
        }
        table.row([
            cores.to_string(),
            "average".to_string(),
            format!("{:.3}", Summary::of(req).mean()),
            format!("{:.3}", Summary::of(rem).mean()),
        ]);
    }
    emit(
        "fig17",
        "Fig 17: page walk at requesting vs remote core (speedup vs private)",
        &table,
    );
}
