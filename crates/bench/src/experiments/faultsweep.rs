//! Graceful-degradation sweep: the NOCSTAR organization under a ladder of
//! injected fault plans, against its own fault-free run. Not a paper
//! figure — a robustness study of the reproduction itself: every degraded
//! run must complete the same work (no translation is ever lost), paying
//! only cycles.

use crate::{collect_report, emit, parallel_map, Effort};
use nocstar::prelude::*;

/// The fault ladder: one spec per row, windows sized in cycles so even
/// `--quick` runs (tens of thousands of cycles) spend real time inside
/// each fault window.
const PLANS: [(&str, &str); 5] = [
    ("fault-free", ""),
    ("setup-denial burst", "deny@2000-12000"),
    ("degraded links", "link:*@0-50000=+2"),
    ("link outage", "link:*@4000-9000=off"),
    ("walk spike x8", "walk@2000-30000=x8"),
];

fn run_one(effort: Effort, cores: usize, spec: &str) -> SimReport {
    let config = SystemConfig::new(cores, TlbOrg::paper_nocstar());
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let mut sim = Simulation::new(config, workload);
    if !spec.is_empty() {
        let plan: FaultPlan = spec.parse().expect("fault ladder spec");
        sim = sim.with_faults(plan);
    }
    // Fault windows act on absolute cycles, so warmup would eat them:
    // measure from cycle zero instead.
    let report = sim.run(effort.accesses / 2);
    collect_report(&report);
    report
}

/// Regenerates the fault-degradation sweep.
pub fn run(effort: Effort) {
    let mut table = Table::new(["fault plan", "spec", "cycles", "slowdown", "walks"]);
    for cores in [16usize] {
        let baseline = run_one(effort, cores, "");
        let rows = parallel_map(PLANS.to_vec(), |&(name, spec)| {
            let r = run_one(effort, cores, spec);
            (name, spec, r.cycles, r.walks)
        });
        for (name, spec, cycles, walks) in rows {
            table.row([
                name.to_string(),
                if spec.is_empty() { "-" } else { spec }.to_string(),
                cycles.to_string(),
                format!("{:.3}", cycles as f64 / baseline.cycles.max(1) as f64),
                walks.to_string(),
            ]);
        }
    }
    emit(
        "faultsweep",
        "Graceful degradation under injected faults (NOCSTAR, 16 cores, redis)",
        &table,
    );
}
