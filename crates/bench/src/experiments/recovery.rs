//! Closed-loop recovery study: the reactive [`RecoveryPolicy`] against
//! the static open-loop baseline, under the standard outage plans, across
//! fabrics and core counts. Not a paper figure — a robustness study of
//! the reproduction itself: the closed loop must buy back latency (mesh
//! escalation escapes a link blackout, hierarchical re-homing serves a
//! dead cluster's sets from a backup), and the detect→recovered
//! percentiles quantify how quickly it reacts.

use crate::{collect_report, emit, parallel_map, Effort};
use nocstar::prelude::*;

/// One scenario per fabric × scale: a label, the organization, the core
/// count, and the outage plan whose windows sit in absolute cycles (so
/// runs measure from cycle zero, like the faultsweep).
fn scenarios() -> Vec<(&'static str, TlbOrg, usize, &'static str)> {
    vec![
        (
            "mesh link blackout",
            TlbOrg::paper_distributed(),
            16,
            "link:*@4000-9000=off",
        ),
        (
            "mesh link blackout",
            TlbOrg::paper_distributed(),
            64,
            "link:*@4000-9000=off",
        ),
        (
            "mesh single-link outage",
            TlbOrg::paper_distributed(),
            16,
            "link:5@4000-60000=off",
        ),
        (
            "circuit link blackout",
            TlbOrg::paper_nocstar(),
            16,
            "link:*@4000-9000=off",
        ),
        (
            "hier cluster outage",
            TlbOrg::paper_hier(4),
            16,
            "cluster:1/4@1000-400000",
        ),
        (
            "hier cluster outage",
            TlbOrg::paper_hier(8),
            64,
            "cluster:1/8@1000-400000",
        ),
    ]
}

fn run_one(effort: Effort, cores: usize, org: TlbOrg, spec: &str, closed: bool) -> SimReport {
    let mut config = SystemConfig::new(cores, org);
    // The recovery counters live in the metrics registry, so this study
    // collects metrics regardless of the global observability switches.
    config.metrics = true;
    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
    let mut sim = Simulation::new(config, workload).with_faults(spec.parse().expect("outage plan"));
    if closed {
        sim = sim.with_recovery(RecoveryPolicy::all());
    }
    // Fault windows act on absolute cycles, so warmup would eat them:
    // measure from cycle zero instead (same convention as the faultsweep).
    let report = sim.run(effort.accesses / 2);
    collect_report(&report);
    report
}

fn counter(r: &SimReport, name: &str) -> u64 {
    r.metrics.counter(name).unwrap_or(0)
}

/// Regenerates the closed-loop recovery-latency study.
pub fn run(effort: Effort) {
    let mut table = Table::new([
        "scenario",
        "cores",
        "plan",
        "open mean",
        "closed mean",
        "latency saved",
        "recovered",
        "reroutes",
        "escalations",
        "detect p50",
        "detect p99",
    ]);
    let rows = parallel_map(scenarios(), |&(name, org, cores, spec)| {
        let open = run_one(effort, cores, org, spec, false);
        let closed = run_one(effort, cores, org, spec, true);
        (name, cores, spec, open, closed)
    });
    for (name, cores, spec, open, closed) in rows {
        let open_mean = open.translation_latency.mean();
        let closed_mean = closed.translation_latency.mean();
        // Mesh rows react through re-routing (detect→reroute percentiles);
        // hierarchical rows through re-homing (detect→recovered). Report
        // whichever loop actually closed.
        let pick = |suffix: &str| {
            let rehome = counter(&closed, &format!("recovery.detect_to_recovered_{suffix}"));
            if rehome > 0 {
                rehome
            } else {
                counter(&closed, &format!("recovery.detect_to_reroute_{suffix}"))
            }
        };
        table.row([
            name.to_string(),
            cores.to_string(),
            spec.to_string(),
            format!("{open_mean:.2}"),
            format!("{closed_mean:.2}"),
            format!(
                "{:.1}%",
                100.0 * (1.0 - closed_mean / open_mean.max(f64::MIN_POSITIVE))
            ),
            counter(&closed, "recovery.translations_recovered").to_string(),
            counter(&closed, "recovery.reroutes").to_string(),
            counter(&closed, "recovery.escalations").to_string(),
            pick("p50").to_string(),
            pick("p99").to_string(),
        ]);
    }
    emit(
        "recovery",
        "Closed-loop recovery vs static open loop under standard outages (redis)",
        &table,
    );
}
