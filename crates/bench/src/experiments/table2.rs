//! Table II: the simulated L2 TLB configurations, printed from the actual
//! `TlbOrg` presets so the table can never drift from the code.

use crate::{emit, Effort};
use nocstar::prelude::*;

/// Regenerates Table II.
pub fn run(_effort: Effort) {
    let cores = 32;
    let mut table = Table::new([
        "configuration",
        "L2 TLB entries (8-way)",
        "physical org",
        "interconnect",
    ]);
    for org in [
        TlbOrg::paper_private(),
        TlbOrg::paper_monolithic(cores),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
        TlbOrg::paper_hier(16),
    ] {
        let (entries, phys, net) = match org {
            TlbOrg::Private { entries, .. } => {
                (format!("{entries}"), "1 TLB per core".into(), "-".into())
            }
            TlbOrg::Monolithic {
                entries_per_core,
                banks,
                ..
            } => (
                format!("{entries_per_core} x NumCores"),
                format!("monolithic, {banks} banks"),
                "Mesh (multi-hop) / SMART".into(),
            ),
            TlbOrg::Distributed { slice_entries } => (
                format!("{slice_entries} x NumCores"),
                "1 slice per core".into(),
                "Mesh (multi-hop)".into(),
            ),
            TlbOrg::Nocstar {
                slice_entries,
                hpc_max,
                ..
            } => (
                format!("{slice_entries} x NumCores"),
                "1 slice per core".to_string(),
                format!("NOCSTAR (HPCmax={hpc_max})"),
            ),
            TlbOrg::IdealShared { slice_entries } => (
                format!("{slice_entries} x NumCores"),
                "1 slice per core".into(),
                "zero-latency (ideal)".into(),
            ),
            TlbOrg::Hier {
                slice_entries,
                cluster_size,
                ..
            } => (
                format!("{slice_entries} x NumCores"),
                format!("1 slice per core, clusters of {cluster_size}"),
                "bus/xbar intra-cluster + mesh/SMART overlay".into(),
            ),
        };
        table.row([org.label().to_string(), entries, phys, net]);
    }
    emit(
        "table2",
        "Table II: simulated TLB configurations (32-core instantiation)",
        &table,
    );
}
