//! Fig 9: power and area of one place-and-routed NOCSTAR tile
//! (switch, link arbiters, TLB SRAM) in 28nm at a 0.5ns clock.

use crate::{emit, Effort};
use nocstar::energy::area::TileCosts;
use nocstar::prelude::*;

/// Regenerates Fig 9's table.
pub fn run(_effort: Effort) {
    let costs = TileCosts::paper();
    let mut table = Table::new(["component", "per-core power (mW)", "area (mm^2)"]);
    for row in costs.rows() {
        table.row([
            row.name.to_string(),
            format!("{:.2}", row.power_mw),
            format!("{:.4}", row.area_mm2),
        ]);
    }
    emit(
        "fig09",
        "Fig 9: NOCSTAR tile power/area (28nm, 0.5ns clock)",
        &table,
    );
    println!(
        "switch area / SRAM area = {:.2}% (paper: <1%); switch+arbiters = {:.2}%\n",
        costs.switch.area_mm2 / costs.sram_tlb.area_mm2 * 100.0,
        costs.interconnect_area_fraction() * 100.0
    );
}
