//! Fig 12: speedups of monolithic / distributed / NOCSTAR / ideal shared
//! L2 TLBs over private L2 TLBs on 16 cores, with **4 KiB pages only**
//! (transparent superpages disabled).

use crate::{emit, Effort};
use nocstar::prelude::*;

/// Regenerates Fig 12.
pub fn run(effort: Effort) {
    let cores = 16;
    let orgs = [
        ("Monolithic", TlbOrg::paper_monolithic(cores)),
        ("Distributed", TlbOrg::paper_distributed()),
        ("NOCSTAR", TlbOrg::paper_nocstar()),
        ("Ideal", TlbOrg::paper_ideal()),
    ];
    let table = super::speedup_table(effort, cores, &orgs, false);
    emit(
        "fig12",
        "Fig 12: speedups vs private L2 TLBs (16 cores, 4KB pages only)",
        &table,
    );
}
