//! Fig 2: percentage of private L2 TLB misses eliminated by replacing the
//! private L2 TLBs with a shared L2 TLB, on 16/32/64-core systems.
//!
//! The metric is purely about hit rates, so the shared organization used
//! here is the zero-interconnect-latency `IdealShared` (latency does not
//! change which lookups hit).

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

/// Regenerates Fig 2.
pub fn run(effort: Effort) {
    let jobs: Vec<Preset> = Preset::ALL.to_vec();
    let rows = parallel_map(jobs, |&preset| {
        let elim = |cores: usize| {
            let private = effort.run(cores, TlbOrg::paper_private(), preset);
            let shared = effort.run(cores, TlbOrg::paper_ideal(), preset);
            shared.misses_eliminated_vs(&private)
        };
        (preset, elim(16), elim(32), elim(64))
    });

    let mut table = Table::new(["workload", "16-core", "32-core", "64-core"]);
    let (mut s16, mut s32, mut s64) = (Vec::new(), Vec::new(), Vec::new());
    for (preset, e16, e32, e64) in rows {
        table.row([
            preset.name().to_string(),
            format!("{e16:.0}"),
            format!("{e32:.0}"),
            format!("{e64:.0}"),
        ]);
        s16.push(e16);
        s32.push(e32);
        s64.push(e64);
    }
    table.row([
        "Avg".to_string(),
        format!("{:.0}", Summary::of(s16).mean()),
        format!("{:.0}", Summary::of(s32).mean()),
        format!("{:.0}", Summary::of(s64).mean()),
    ]);
    emit(
        "fig02",
        "Fig 2: % of private L2 TLB misses eliminated by a shared L2 TLB",
        &table,
    );
}
