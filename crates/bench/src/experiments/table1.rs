//! Table I: TLB-interconnect design choices, with measured evidence from
//! this repository's models alongside the paper's qualitative marks.

use crate::{emit, Effort};
use nocstar::energy::model::{message_energy, NocDesign};
use nocstar::noc::latency::{message_latency, SharedTlbDesign};
use nocstar::prelude::*;

/// Regenerates Table I (annotated with measured 8-hop latency/energy).
pub fn run(_effort: Effort) {
    let hops = 8;
    let mesh_lat = message_latency(
        SharedTlbDesign::Distributed {
            slice_entries: 1024,
        },
        hops,
    )
    .network;
    let nocstar_lat = message_latency(
        SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
        },
        hops,
    )
    .network;
    let mesh_e = message_energy(
        NocDesign::Distributed {
            slice_entries: 1024,
        },
        hops,
    );
    let nocstar_e = message_energy(NocDesign::Nocstar { slice_entries: 920 }, hops);

    // Analytical FBFly points (Kim et al., ISCA 2007): high-radix routers
    // make any destination reachable in ~2 hops, but over long (2-cycle)
    // links through wide crossbars; the narrow variant halves datapath
    // width and pays ~4 cycles of serialization. Energy: the wide
    // crossbar costs ~8 pJ/hop and long links ~3 pJ/hop.
    let fbfly_wide_lat = 2 * (2 + 2);
    let fbfly_narrow_lat = fbfly_wide_lat + 4;
    let fbfly_wide_e = 2.0 * (8.0 + 3.0);
    let fbfly_narrow_e = 2.0 * (4.0 + 3.0);

    let mut table = Table::new([
        "NOC",
        "latency",
        "bandwidth",
        "area",
        "power",
        "measured (8 hops)",
    ]);
    table.row([
        "Bus".to_string(),
        "+".into(),
        "-".into(),
        "+".into(),
        "-".into(),
        "2 cy uncontended; 1 msg/cycle chip-wide (see ablation_bus)".into(),
    ]);
    table.row([
        "Mesh".to_string(),
        "-".into(),
        "+".into(),
        "-".into(),
        "-".into(),
        format!(
            "{} cy, {:.1} pJ net",
            mesh_lat.value(),
            mesh_e.link + mesh_e.switch + mesh_e.control
        ),
    ]);
    table.row([
        "FBFly-wide".to_string(),
        "+".into(),
        "++".into(),
        "--".into(),
        "--".into(),
        format!("{fbfly_wide_lat} cy, {fbfly_wide_e:.0} pJ net (analytical)"),
    ]);
    table.row([
        "FBFly-narrow".to_string(),
        "-".into(),
        "+".into(),
        "-".into(),
        "-".into(),
        format!("{fbfly_narrow_lat} cy, {fbfly_narrow_e:.0} pJ net (analytical)"),
    ]);
    table.row(["SMART", "+", "+", "-", "-", "2 cy (1 setup + 1 bypass)"]);
    table.row([
        "NOCSTAR".to_string(),
        "+".into(),
        "+".into(),
        "+".into(),
        "+".into(),
        format!(
            "{} cy, {:.1} pJ net",
            nocstar_lat.value(),
            nocstar_e.link + nocstar_e.switch + nocstar_e.control
        ),
    ]);
    emit(
        "table1",
        "Table I: TLB interconnect design choices (paper marks + measured evidence)",
        &table,
    );
}
