//! Fig 4: speedups of a monolithic multi-banked shared L2 TLB over
//! private L2 TLBs on 32 cores, as its total access latency is swept from
//! 25 cycles (realistic SRAM + interconnect) down to 9 cycles (the
//! unrealizable case where the 32x-larger array matches private latency
//! and the interconnect is free).
//!
//! Latency is applied as a bank-lookup override over a zero-latency
//! interconnect, so port/bank contention is still simulated.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

const LATENCIES: [u64; 4] = [25, 16, 11, 9];

/// Regenerates Fig 4.
pub fn run(effort: Effort) {
    let cores = 32;
    let jobs: Vec<Preset> = Preset::ALL.to_vec();
    let rows = parallel_map(jobs, |&preset| {
        let baseline = effort.run(cores, TlbOrg::paper_private(), preset);
        let speeds: Vec<f64> = LATENCIES
            .iter()
            .map(|&latency| {
                let org = TlbOrg::Monolithic {
                    entries_per_core: 1024,
                    banks: 4,
                    net: MonolithicNet::Ideal,
                    latency_override: Some(Cycles::new(latency)),
                };
                effort.run(cores, org, preset).speedup_vs(&baseline)
            })
            .collect();
        (preset, speeds)
    });

    let mut table = Table::new([
        "workload",
        "Shared(25-cc)",
        "Shared(16-cc)",
        "Shared(11-cc)",
        "Shared(9-cc)",
    ]);
    let mut columns = vec![Vec::new(); LATENCIES.len()];
    for (preset, speeds) in rows {
        table.row_values(preset.name(), &speeds);
        for (c, s) in columns.iter_mut().zip(&speeds) {
            c.push(*s);
        }
    }
    let avgs: Vec<f64> = columns
        .iter()
        .map(|c| Summary::of(c.clone()).mean())
        .collect();
    table.row_values("average", &avgs);
    emit(
        "fig04",
        "Fig 4: monolithic shared TLB speedup vs private, by total access latency (32 cores)",
        &table,
    );
}
