//! Ablations of NOCSTAR's design choices beyond the paper's own studies
//! (DESIGN.md §4): the `HPCmax` pipelining degree, the arbiter
//! priority-rotation period, the Table I bus baseline under TLB-like
//! load, and the TLB replacement policy.

use crate::{emit, parallel_map, Effort};
use nocstar::noc::bus::BusNoc;
use nocstar::noc::circuit::{AcquireMode, CircuitFabric};
use nocstar::noc::traffic::run_uniform_random;
use nocstar::noc::Interconnect;
use nocstar::prelude::*;
use nocstar::tlb::entry::TlbEntry;
use nocstar::tlb::replacement::ReplacementPolicy;
use nocstar::tlb::set_assoc::SetAssocTlb;
use nocstar::workloads::trace::{TraceEvent, TraceSource};

const WORKLOADS: [Preset; 4] = [
    Preset::Canneal,
    Preset::Graph500,
    Preset::Gups,
    Preset::Xsbench,
];

/// HPCmax sweep: full-system NOCSTAR speedup at 64 cores as the fabric's
/// hops-per-cycle limit shrinks (more pipeline latches on long paths).
fn hpc_sweep(effort: Effort) {
    let cores = 64;
    let mut table = Table::new(["HPCmax", "avg speedup vs private", "min", "max"]);
    for hpc in [1usize, 2, 4, 8, 16] {
        let speeds = parallel_map(WORKLOADS.to_vec(), |&preset| {
            let base = effort.run(cores, TlbOrg::paper_private(), preset);
            let org = TlbOrg::Nocstar {
                slice_entries: 920,
                hpc_max: hpc,
                acquire: AcquireMode::OneWay,
                ideal_fabric: false,
            };
            effort.run(cores, org, preset).speedup_vs(&base)
        });
        let s = Summary::of(speeds);
        table.row([
            hpc.to_string(),
            format!("{:.3}", s.mean()),
            format!("{:.3}", s.min()),
            format!("{:.3}", s.max()),
        ]);
    }
    emit(
        "ablation_hpc",
        "Ablation: NOCSTAR speedup vs HPCmax (64 cores)",
        &table,
    );
}

/// Rotation-period sweep: starvation shows up as tail latency under
/// sustained synthetic load when the static priority never (or too
/// rarely) rotates.
fn rotation_sweep(effort: Effort) {
    let mesh = MeshShape::square_for(64);
    let cycles = if effort.quick { 1_500 } else { 5_000 };
    let mut table = Table::new([
        "rotation period",
        "mean latency",
        "max latency",
        "% no contention",
    ]);
    for period in [10u64, 100, 1_000, 10_000, 1_000_000] {
        let mut fabric = CircuitFabric::with_rotation_period(mesh, 16, AcquireMode::OneWay, period);
        let report = run_uniform_random(&mut fabric, mesh, 0.12, cycles, 9);
        let max = fabric.stats().latency.max();
        table.row([
            period.to_string(),
            format!("{:.2}", report.mean_latency),
            max.value().to_string(),
            format!("{:.0}", report.no_contention_fraction * 100.0),
        ]);
    }
    emit(
        "ablation_rotation",
        "Ablation: arbiter priority-rotation period near saturation (0.12 load, 64 cores)",
        &table,
    );
}

/// Bus baseline: Table I's qualitative "bandwidth −" made quantitative.
fn bus_vs_fabric(effort: Effort) {
    let mesh = MeshShape::square_for(64);
    let cycles = if effort.quick { 1_000 } else { 4_000 };
    let mut table = Table::new(["injection rate", "bus latency", "NOCSTAR latency"]);
    for rate in [0.001, 0.005, 0.01, 0.02] {
        let mut bus = BusNoc::new(mesh);
        let b = run_uniform_random(&mut bus, mesh, rate, cycles, 3);
        let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let f = run_uniform_random(&mut fabric, mesh, rate, cycles, 3);
        table.row([
            format!("{rate}"),
            format!("{:.2}", b.mean_latency),
            format!("{:.2}", f.mean_latency),
        ]);
    }
    emit(
        "ablation_bus",
        "Ablation: shared bus vs NOCSTAR fabric (64 cores; the bus saturates at ~1/64 rate)",
        &table,
    );
}

/// Replacement-policy sweep on the slice content array, driven by a real
/// workload's post-L1 miss stream.
fn replacement_sweep(_effort: Effort) {
    let spec = Preset::Canneal.spec();
    let mut table = Table::new(["policy", "miss rate %"]);
    for (name, policy) in [
        ("LRU (paper)", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
    ] {
        let mut tlb = SetAssocTlb::new(1024, 8, policy);
        let mut trace = spec.trace(Asid::new(1), ThreadId::new(0), 11, true);
        let mut accesses = 0u64;
        while accesses < 200_000 {
            if let TraceEvent::Access(a) = trace.next_event() {
                accesses += 1;
                let vpn = a.va.page_number(trace.backing(a.va));
                if tlb.lookup(Asid::new(1), vpn).is_none() {
                    tlb.insert(TlbEntry::new(
                        Asid::new(1),
                        vpn,
                        nocstar::types::addr::PhysPageNum::new(vpn.number(), vpn.page_size()),
                    ));
                }
            }
        }
        table.row([
            name.to_string(),
            format!("{:.2}", tlb.stats().miss_rate() * 100.0),
        ]);
    }
    emit(
        "ablation_replacement",
        "Ablation: slice replacement policy on canneal's access stream",
        &table,
    );
}

/// Runs all ablations.
pub fn run(effort: Effort) {
    hpc_sweep(effort);
    rotation_sweep(effort);
    bus_vs_fabric(effort);
    replacement_sweep(effort);
}
