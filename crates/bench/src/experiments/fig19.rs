//! Fig 19: the TLB-storm microbenchmark — workloads run alone versus
//! concurrently with a co-runner that forces aggressive context switches
//! (flushing all TLB state) and continuously promotes/demotes superpages
//! (each promotion invalidating 512 L2 TLB entries) — for monolithic,
//! distributed and NOCSTAR at 16/32/64 cores.

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

/// Context-switch interval in trace events (aggressive, as in the paper's
/// 0.5 ms stress setting scaled to simulated run lengths).
const CTX_INTERVAL: u64 = 4_000;
/// Superpage promote/demote churn interval in trace events.
const CHURN_INTERVAL: u64 = 3_000;

const WORKLOADS: [Preset; 4] = [
    Preset::Canneal,
    Preset::Graph500,
    Preset::Gups,
    Preset::Xsbench,
];

fn run_one(effort: Effort, cores: usize, org: TlbOrg, preset: Preset, storm: bool) -> SimReport {
    let config = SystemConfig::new(cores, org);
    let workload = if storm {
        WorkloadAssignment::storm(&config, preset, CTX_INTERVAL, CHURN_INTERVAL)
    } else {
        WorkloadAssignment::preset(&config, preset)
    };
    Simulation::new(config, workload).run_measured(effort.warmup / 2, effort.accesses / 2)
}

/// Regenerates Fig 19.
pub fn run(effort: Effort) {
    let orgs = |cores: usize| {
        [
            ("Mono", TlbOrg::paper_monolithic(cores)),
            ("Dist", TlbOrg::paper_distributed()),
            ("NSTAR", TlbOrg::paper_nocstar()),
        ]
    };
    let mut table = Table::new(["cores", "organization", "alone", "w/ub"]);
    for cores in [16usize, 32, 64] {
        let jobs: Vec<(usize, TlbOrg)> = orgs(cores)
            .iter()
            .enumerate()
            .map(|(i, &(_, org))| (i, org))
            .collect();
        let rows = parallel_map(jobs, |&(_, org)| {
            let mut alone = Vec::new();
            let mut with_ub = Vec::new();
            for preset in WORKLOADS {
                let base_alone = run_one(effort, cores, TlbOrg::paper_private(), preset, false);
                let base_storm = run_one(effort, cores, TlbOrg::paper_private(), preset, true);
                alone.push(run_one(effort, cores, org, preset, false).speedup_vs(&base_alone));
                with_ub.push(run_one(effort, cores, org, preset, true).speedup_vs(&base_storm));
            }
            (Summary::of(alone).mean(), Summary::of(with_ub).mean())
        });
        for ((name, _), (alone, with_ub)) in orgs(cores).iter().zip(rows) {
            table.row([
                cores.to_string(),
                name.to_string(),
                format!("{alone:.3}"),
                format!("{with_ub:.3}"),
            ]);
        }
    }
    emit(
        "fig19",
        "Fig 19: TLB-storm microbenchmark — average speedup vs private (alone / with storm)",
        &table,
    );
}
