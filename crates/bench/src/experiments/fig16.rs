//! Fig 16: (left) NOCSTAR link-reservation modes — one round-trip acquire
//! versus two one-way acquires — at 16/32/64 cores; (right) TLB
//! invalidation (shootdown) leader granularity: every core relaying its
//! own invalidations versus one leader per 4 / per 8 cores versus a
//! single chip-wide leader.
//!
//! Shootdown-heavy behaviour is what differentiates the leader policies,
//! so the right panel raises each workload's remap rate (the paper's
//! workloads run on an OS doing real page migration).

use crate::{emit, parallel_map, Effort};
use nocstar::prelude::*;

const WORKLOADS: [Preset; 4] = [
    Preset::Canneal,
    Preset::Graph500,
    Preset::Gups,
    Preset::Xsbench,
];

fn run_nocstar(
    effort: Effort,
    cores: usize,
    preset: Preset,
    acquire: AcquireMode,
    leader: LeaderPolicy,
    remap_boost: f64,
) -> SimReport {
    let org = TlbOrg::Nocstar {
        slice_entries: 920,
        hpc_max: 16,
        acquire,
        ideal_fabric: false,
    };
    let mut config = SystemConfig::new(cores, org);
    config.leader_policy = leader;
    let mut spec = preset.spec();
    spec.remaps_per_million *= remap_boost;
    let workload = WorkloadAssignment::homogeneous(&config, spec);
    Simulation::new(config, workload).run_measured(effort.warmup, effort.accesses)
}

fn baseline(effort: Effort, cores: usize, preset: Preset, remap_boost: f64) -> SimReport {
    let mut config = SystemConfig::new(cores, TlbOrg::paper_private());
    let mut spec = preset.spec();
    spec.remaps_per_million *= remap_boost;
    let workload = WorkloadAssignment::homogeneous(&config, spec);
    config.seed = 0xcafe;
    Simulation::new(config, workload).run_measured(effort.warmup, effort.accesses)
}

/// Regenerates Fig 16 (both panels).
pub fn run(effort: Effort) {
    // Left: acquire-mode speedups vs private.
    let mut left = Table::new(["cores", "workload", "1x two-way", "2x one-way"]);
    for cores in [16usize, 32, 64] {
        let rows = parallel_map(WORKLOADS.to_vec(), |&preset| {
            let base = baseline(effort, cores, preset, 1.0);
            let round = run_nocstar(
                effort,
                cores,
                preset,
                AcquireMode::RoundTrip,
                LeaderPolicy::EveryCore,
                1.0,
            );
            let one_way = run_nocstar(
                effort,
                cores,
                preset,
                AcquireMode::OneWay,
                LeaderPolicy::EveryCore,
                1.0,
            );
            (preset, round.speedup_vs(&base), one_way.speedup_vs(&base))
        });
        let mut two_way = Vec::new();
        let mut one_way_all = Vec::new();
        for (preset, rt, ow) in rows {
            left.row([
                cores.to_string(),
                preset.name().to_string(),
                format!("{rt:.3}"),
                format!("{ow:.3}"),
            ]);
            two_way.push(rt);
            one_way_all.push(ow);
        }
        left.row([
            cores.to_string(),
            "average".to_string(),
            format!("{:.3}", Summary::of(two_way).mean()),
            format!("{:.3}", Summary::of(one_way_all).mean()),
        ]);
    }
    emit(
        "fig16_left",
        "Fig 16 (left): round-trip vs one-way link acquisition (speedup vs private)",
        &left,
    );

    // Right: invalidation leader granularity under heavy shootdowns.
    const REMAP_BOOST: f64 = 200.0;
    let mut right = Table::new([
        "cores",
        "workload",
        "every-core",
        "per-4-core",
        "per-8-core",
        "single-leader",
    ]);
    for cores in [16usize, 32, 64] {
        let policies = [
            LeaderPolicy::EveryCore,
            LeaderPolicy::PerGroup(4),
            LeaderPolicy::PerGroup(8),
            LeaderPolicy::Single,
        ];
        let rows = parallel_map(WORKLOADS.to_vec(), |&preset| {
            let base = baseline(effort, cores, preset, REMAP_BOOST);
            let speeds: Vec<f64> = policies
                .iter()
                .map(|&leader| {
                    run_nocstar(
                        effort,
                        cores,
                        preset,
                        AcquireMode::OneWay,
                        leader,
                        REMAP_BOOST,
                    )
                    .speedup_vs(&base)
                })
                .collect();
            (preset, speeds)
        });
        for (preset, speeds) in rows {
            let mut cells = vec![cores.to_string(), preset.name().to_string()];
            cells.extend(speeds.iter().map(|s| format!("{s:.3}")));
            right.row(cells);
        }
    }
    emit(
        "fig16_right",
        "Fig 16 (right): shootdown leader granularity (speedup vs private, heavy remaps)",
        &right,
    );
}
