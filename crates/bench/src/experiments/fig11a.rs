//! Fig 11(a): contention-free latency of one shared-L2-TLB access message
//! versus hop count, for the monolithic, distributed and NOCSTAR
//! (HPCmax = 4/8/16) designs.

use crate::{emit, Effort};
use nocstar::noc::latency::{fig11a_designs, message_latency, FIG11A_HOPS};
use nocstar::prelude::*;

/// Regenerates Fig 11(a).
pub fn run(_effort: Effort) {
    let designs = fig11a_designs();
    let mut headers = vec!["hops".to_string()];
    headers.extend(designs.iter().map(|d| d.to_string()));
    let mut table = Table::new(headers);
    for hops in FIG11A_HOPS {
        let mut cells = vec![hops.to_string()];
        for d in &designs {
            let l = message_latency(*d, hops);
            cells.push(format!(
                "{} ({}+{})",
                l.total().value(),
                l.access.value(),
                l.network.value()
            ));
        }
        table.row(cells);
    }
    emit(
        "fig11a",
        "Fig 11(a): message latency vs hops — total (access+network) cycles",
        &table,
    );
}
