//! Fig 15: teasing apart distribution versus interconnect on 32 cores —
//! monolithic over a multi-hop mesh, monolithic over SMART, distributed,
//! NOCSTAR, NOCSTAR with an ideal (contention-free) fabric, and the
//! zero-interconnect-latency ideal.

use crate::{emit, Effort};
use nocstar::prelude::*;

/// Regenerates Fig 15.
pub fn run(effort: Effort) {
    let cores = 32;
    let orgs = [
        ("Mono(mesh)", TlbOrg::paper_monolithic(cores)),
        (
            "Mono(SMART)",
            TlbOrg::Monolithic {
                entries_per_core: 1024,
                banks: 4,
                net: MonolithicNet::Smart(8),
                latency_override: None,
            },
        ),
        ("Distributed", TlbOrg::paper_distributed()),
        ("NOCSTAR", TlbOrg::paper_nocstar()),
        (
            "NOCSTAR(ideal)",
            TlbOrg::Nocstar {
                slice_entries: 920,
                hpc_max: 16,
                acquire: AcquireMode::OneWay,
                ideal_fabric: true,
            },
        ),
        ("Ideal", TlbOrg::paper_ideal()),
    ];
    let table = super::speedup_table(effort, cores, &orgs, true);
    // How close NOCSTAR comes to the zero-latency ideal, from the average row.
    let avg = table.rows().last().expect("average row");
    let nocstar: f64 = avg[4].parse().expect("nocstar avg");
    let ideal: f64 = avg[6].parse().expect("ideal avg");
    emit(
        "fig15",
        "Fig 15: speedups vs private (32 cores) — distribution vs interconnect",
        &table,
    );
    println!(
        "NOCSTAR reaches {:.1}% of the zero-interconnect-latency ideal (paper: ~95%)\n",
        nocstar / ideal * 100.0
    );
}
