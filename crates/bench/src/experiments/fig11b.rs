//! Fig 11(b): energy of one shared-L2-TLB access message versus hop count,
//! broken into link / switch / control / SRAM components, for the
//! (M)onolithic, (D)istributed and (N)OCSTAR designs.

use crate::{emit, Effort};
use nocstar::energy::model::{message_energy, NocDesign, FIG11B_HOPS};
use nocstar::prelude::*;

/// Regenerates Fig 11(b).
pub fn run(_effort: Effort) {
    let designs = [
        (
            "M",
            NocDesign::Monolithic {
                total_entries: 32 * 1536,
            },
        ),
        (
            "D",
            NocDesign::Distributed {
                slice_entries: 1024,
            },
        ),
        ("N", NocDesign::Nocstar { slice_entries: 920 }),
    ];
    let mut table = Table::new([
        "hops",
        "design",
        "link pJ",
        "switch pJ",
        "control pJ",
        "SRAM pJ",
        "total pJ",
    ]);
    for hops in FIG11B_HOPS {
        for (label, design) in designs {
            let e = message_energy(design, hops);
            table.row([
                hops.to_string(),
                label.to_string(),
                format!("{:.1}", e.link),
                format!("{:.1}", e.switch),
                format!("{:.1}", e.control),
                format!("{:.1}", e.sram),
                format!("{:.1}", e.total()),
            ]);
        }
    }
    emit(
        "fig11b",
        "Fig 11(b): per-message energy vs hops (M/D/N)",
        &table,
    );
}
