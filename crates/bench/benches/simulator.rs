//! Criterion end-to-end benchmarks: full-system simulation throughput
//! (the cost of one simulated access) for the main organizations, and
//! workload-generation throughput.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use nocstar::prelude::*;
use nocstar::workloads::trace::TraceSource;
use nocstar::workloads::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_8c_x_1000acc");
    group.sample_size(10);
    for org in [
        TlbOrg::paper_private(),
        TlbOrg::paper_distributed(),
        TlbOrg::paper_nocstar(),
    ] {
        group.bench_function(org.label(), move |b| {
            b.iter_batched(
                || {
                    let config = SystemConfig::new(8, org);
                    let workload = WorkloadAssignment::preset(&config, Preset::Redis);
                    Simulation::new(config, workload)
                },
                |sim| black_box(sim.run(1_000)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("synthetic_trace_event", |b| {
        let spec = Preset::Canneal.spec();
        let mut trace = spec.trace(Asid::new(1), ThreadId::new(0), 7, true);
        b.iter(|| black_box(trace.next_event()))
    });
    c.bench_function("zipf_sample_64k", |b| {
        let zipf = Zipf::new(65_536, 0.9);
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

criterion_group!(benches, bench_sim, bench_workload_gen);
criterion_main!(benches);
