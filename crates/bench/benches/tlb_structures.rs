//! Criterion microbenchmarks for the TLB content structures: the hot
//! paths of every simulated lookup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nocstar::tlb::entry::TlbEntry;
use nocstar::tlb::l1::L1Tlb;
use nocstar::tlb::replacement::ReplacementPolicy;
use nocstar::tlb::set_assoc::SetAssocTlb;
use nocstar::types::{Asid, PageSize, PhysPageNum, VirtAddr, VirtPageNum};

fn e4k(vpn: u64) -> TlbEntry {
    TlbEntry::new(
        Asid::new(1),
        VirtPageNum::new(vpn, PageSize::Size4K),
        PhysPageNum::new(vpn ^ 0x5555, PageSize::Size4K),
    )
}

fn bench_set_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc");
    group.bench_function("lookup_hit_1024e8w", |b| {
        let mut tlb = SetAssocTlb::new(1024, 8, ReplacementPolicy::Lru);
        for vpn in 0..1024 {
            tlb.insert(e4k(vpn));
        }
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 1024;
            black_box(tlb.lookup(Asid::new(1), VirtPageNum::new(vpn, PageSize::Size4K)))
        });
    });
    group.bench_function("lookup_miss_1024e8w", |b| {
        let mut tlb = SetAssocTlb::new(1024, 8, ReplacementPolicy::Lru);
        let mut vpn = 1_000_000u64;
        b.iter(|| {
            vpn += 1;
            black_box(tlb.lookup(Asid::new(1), VirtPageNum::new(vpn, PageSize::Size4K)))
        });
    });
    group.bench_function("insert_with_eviction", |b| {
        let mut tlb = SetAssocTlb::new(1024, 8, ReplacementPolicy::Lru);
        let mut vpn = 0u64;
        b.iter(|| {
            vpn += 1;
            black_box(tlb.insert(e4k(vpn)))
        });
    });
    group.finish();
}

fn bench_l1(c: &mut Criterion) {
    c.bench_function("l1_lookup_three_size_probe", |b| {
        let mut l1 = L1Tlb::haswell();
        for vpn in 0..64 {
            l1.insert(e4k(vpn));
        }
        let mut va = 0u64;
        b.iter(|| {
            va = (va + 4096) % (64 * 4096);
            black_box(l1.lookup(Asid::new(1), VirtAddr::new(va)))
        });
    });
}

criterion_group!(benches, bench_set_assoc, bench_l1);
criterion_main!(benches);
