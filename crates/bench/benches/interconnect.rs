//! Criterion microbenchmarks for the network models: arbitration and
//! traversal cost per message under uniform-random load, plus an ablation
//! of the NOCSTAR priority-rotation period (the paper's starvation-
//! avoidance knob, §III-B2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nocstar::noc::arbiter::PriorityRotation;
use nocstar::noc::circuit::{AcquireMode, CircuitFabric};
use nocstar::noc::mesh::MeshNoc;
use nocstar::noc::smart::SmartNoc;
use nocstar::noc::traffic::run_uniform_random;
use nocstar::noc::Interconnect;
use nocstar::prelude::*;

fn bench_models(c: &mut Criterion) {
    let mesh = MeshShape::square_for(64);
    let mut group = c.benchmark_group("noc_uniform_random_0.1x500cy");
    group.bench_function("circuit_fabric", |b| {
        b.iter(|| {
            let mut noc = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            black_box(run_uniform_random(&mut noc, mesh, 0.1, 500, 42))
        })
    });
    group.bench_function("smart", |b| {
        b.iter(|| {
            let mut noc = SmartNoc::new(mesh, 8);
            black_box(run_uniform_random(&mut noc, mesh, 0.1, 500, 42))
        })
    });
    group.bench_function("mesh_contended", |b| {
        b.iter(|| {
            let mut noc = MeshNoc::contended(mesh);
            black_box(run_uniform_random(&mut noc, mesh, 0.1, 500, 42))
        })
    });
    group.finish();
}

fn bench_single_message(c: &mut Criterion) {
    let mesh = MeshShape::square_for(64);
    c.bench_function("circuit_single_message_corner_to_corner", |b| {
        let mut id = 0u64;
        b.iter(|| {
            let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            id += 1;
            fabric.submit(
                Cycle::ZERO,
                nocstar::noc::message::Message::new(
                    id,
                    CoreId::new(0),
                    CoreId::new(63),
                    nocstar::noc::message::MsgKind::TlbRequest,
                ),
            );
            fabric.advance(Cycle::ZERO);
            black_box(fabric.advance(Cycle::new(1)))
        })
    });
}

fn bench_rotation_ablation(c: &mut Criterion) {
    // The rank computation sits on the arbitration fast path; verify the
    // rotation period has no cost impact (it's a division either way).
    let mut group = c.benchmark_group("priority_rotation");
    for period in [100u64, 1000, 10_000] {
        group.bench_function(format!("rank_period_{period}"), |b| {
            let prio = PriorityRotation::new(64, period);
            let mut t = 0u64;
            b.iter(|| {
                t += 17;
                black_box(prio.rank(CoreId::new((t % 64) as usize), Cycle::new(t)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_models,
    bench_single_message,
    bench_rotation_ablation
);
criterion_main!(benches);
