//! Criterion microbenchmarks for the memory substrate: cache accesses,
//! page-table walks (cold and PWC-warm), and demand mapping.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nocstar::mem::{MemoryConfig, MemorySystem};
use nocstar::prelude::*;

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("hierarchy_access_stream", |b| {
        let mut cfg = MemoryConfig::haswell(4);
        cfg.phys_capacity = 4 << 30;
        let mut mem = MemorySystem::new(cfg);
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 4096 + 64) % (1 << 28);
            black_box(mem.access(
                CoreId::new((addr % 4) as usize),
                nocstar::types::PhysAddr::new(addr),
                addr.is_multiple_of(3),
            ))
        })
    });
}

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_walk");
    group.bench_function("warm_pwc_walk", |b| {
        let mut cfg = MemoryConfig::haswell(1);
        cfg.phys_capacity = 4 << 30;
        let mut mem = MemorySystem::new(cfg);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.walk(CoreId::new(0), asid, va);
        b.iter(|| black_box(mem.walk(CoreId::new(0), asid, va)))
    });
    group.bench_function("spread_walks_16k_pages", |b| {
        let mut cfg = MemoryConfig::haswell(1);
        cfg.phys_capacity = 8 << 30;
        let mut mem = MemorySystem::new(cfg);
        let asid = Asid::new(1);
        for p in 0..16_384u64 {
            mem.ensure_mapped(asid, VirtAddr::new(p << 12), PageSize::Size4K);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p.wrapping_mul(6364136223846793005).wrapping_add(1)) % 16_384;
            black_box(mem.walk(CoreId::new(0), asid, VirtAddr::new(p << 12)))
        })
    });
    group.finish();
}

fn bench_demand_map(c: &mut Criterion) {
    // Rotates over a bounded page pool: the first lap demand-maps, later
    // laps exercise the map-or-return-existing path (Criterion's iteration
    // counts would otherwise exhaust simulated physical memory).
    c.bench_function("ensure_mapped_1m_page_pool", |b| {
        let mut cfg = MemoryConfig::haswell(1);
        cfg.phys_capacity = 32 << 30;
        let mut mem = MemorySystem::new(cfg);
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 1_000_000;
            black_box(mem.ensure_mapped(Asid::new(1), VirtAddr::new(p << 12), PageSize::Size4K))
        })
    });
}

criterion_group!(benches, bench_cache_access, bench_walks, bench_demand_map);
criterion_main!(benches);
