//! The hardware page-table walker.
//!
//! On an L2 TLB miss, the walker chases the radix table: up to four
//! dependent PTE reads, each travelling through the cache hierarchy of the
//! core performing the walk. That gives the paper's *variable* walk latency
//! — typically 20–40 cycles when PTEs hit the cache hierarchy, 100+ when
//! they go to DRAM. Table III also studies *fixed* walk latencies of
//! 10/20/40/80 cycles, which [`WalkLatency::Fixed`] models by skipping the
//! cache traversal.

use crate::hierarchy::{MemorySystem, ServicedBy};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Asid, CoreId, PhysPageNum, VirtAddr, VirtPageNum};

/// How page-walk latency is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkLatency {
    /// Each PTE read travels through the walking core's cache hierarchy
    /// (the paper's realistic default).
    #[default]
    Variable,
    /// Every walk costs exactly this many cycles (Table III's fixed-N).
    Fixed(Cycles),
}

/// The outcome of a completed page-table walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// The virtual page that was resolved (its size reflects the leaf
    /// level the walk terminated at).
    pub vpn: VirtPageNum,
    /// The backing physical frame.
    pub ppn: PhysPageNum,
    /// Total walk latency.
    pub latency: Cycles,
    /// Which level serviced each PTE read (empty for fixed-latency walks).
    pub pte_reads: Vec<ServicedBy>,
}

impl WalkResult {
    /// True when any PTE read had to leave the private caches — the
    /// paper's "page table walks that prompt LLC and main memory lookups"
    /// (70–87 % of walks in their baseline).
    pub fn touched_llc_or_memory(&self) -> bool {
        self.pte_reads
            .iter()
            .any(|s| matches!(s, ServicedBy::Llc | ServicedBy::Dram))
    }
}

/// Picks the core to run a walk on under hierarchical (cluster-homed)
/// organizations. The preferred core — the requester or the home-slice
/// tile, per the Fig 17 policy — keeps its warm paging-structure cache,
/// so it wins unless another intra-cluster candidate's walker frees up
/// strictly earlier: the home tile is considered as the one alternative
/// (its PWC is warm for pages homed there), trading a colder PWC for not
/// queueing behind the preferred core's busy walker.
///
/// Both candidates are in the requester's cluster by construction (the
/// home is cluster-local), so walk placement never adds overlay traffic.
pub fn cluster_walker(
    preferred: CoreId,
    home: CoreId,
    cluster_size: usize,
    walker_free: &[Cycle],
) -> CoreId {
    if cluster_size <= 1 || preferred == home {
        return preferred;
    }
    debug_assert_eq!(
        preferred.index() / cluster_size,
        home.index() / cluster_size,
        "cluster walk placement requires cluster-local homes"
    );
    if walker_free[home.index()] < walker_free[preferred.index()] {
        home
    } else {
        preferred
    }
}

impl MemorySystem {
    /// Performs a page-table walk for `va` in address space `asid`, with
    /// the PTE reads issued by `core` (the requesting core or the remote
    /// slice's core, depending on the Fig 17 policy).
    ///
    /// # Panics
    ///
    /// Panics if `va` is not mapped — the simulator maps every workload
    /// page on first touch, so an unmapped walk is a harness bug.
    pub fn walk(&mut self, core: CoreId, asid: Asid, va: VirtAddr) -> WalkResult {
        self.walk_with(core, asid, va, WalkLatency::Variable)
    }

    /// [`walk`](Self::walk) with an explicit latency policy.
    ///
    /// # Panics
    ///
    /// As [`walk`](Self::walk).
    pub fn walk_with(
        &mut self,
        core: CoreId,
        asid: Asid,
        va: VirtAddr,
        policy: WalkLatency,
    ) -> WalkResult {
        self.walk_spiked(core, asid, va, policy, 1)
    }

    /// [`walk_with`](Self::walk_with) under an injected DRAM/walker
    /// latency spike: the modelled walk latency is multiplied by
    /// `latency_multiplier` (refresh storms, thermal throttling of the
    /// memory controller). A multiplier of `1` (or `0`) is the normal
    /// walk. The spiked latency is what the walk-latency statistics
    /// record — a spiked run is meant to *look* slow in its report.
    ///
    /// # Panics
    ///
    /// As [`walk`](Self::walk).
    pub fn walk_spiked(
        &mut self,
        core: CoreId,
        asid: Asid,
        va: VirtAddr,
        policy: WalkLatency,
        latency_multiplier: u64,
    ) -> WalkResult {
        let outcome = {
            let tables = self.tables_read();
            tables
                .get(&asid)
                .unwrap_or_else(|| panic!("walk in unknown address space {asid}"))
                .walk(va)
        };
        let (vpn, ppn) = outcome
            .mapping
            .unwrap_or_else(|| panic!("walk of unmapped address {va} in {asid}"));
        let mut result = match policy {
            WalkLatency::Fixed(latency) => WalkResult {
                vpn,
                ppn,
                latency,
                pte_reads: Vec::new(),
            },
            WalkLatency::Variable => {
                let mut latency = Cycles::ZERO;
                let mut pte_reads = Vec::with_capacity(outcome.pte_addrs.len());
                let leaf = outcome.pte_addrs.len() - 1;
                for (level, pa) in outcome.pte_addrs.iter().enumerate() {
                    // Upper-level PTEs are served by the per-core paging-
                    // structure cache when present; the leaf PTE always
                    // reads the memory hierarchy.
                    if level < leaf && self.pwc_mut(core).access(*pa) {
                        latency += Cycles::ONE;
                        pte_reads.push(ServicedBy::Pwc);
                        continue;
                    }
                    let r = self.access(core, *pa, false);
                    latency += r.latency;
                    pte_reads.push(r.serviced_by);
                }
                WalkResult {
                    vpn,
                    ppn,
                    latency,
                    pte_reads,
                }
            }
        };
        if latency_multiplier > 1 {
            result.latency = Cycles::new(result.latency.value().saturating_mul(latency_multiplier));
        }
        self.walk_latency.record(result.latency.value());
        let pwc_hits = result
            .pte_reads
            .iter()
            .filter(|s| **s == ServicedBy::Pwc)
            .count() as u64;
        self.pwc_hits_per_walk.record(pwc_hits);
        result
    }

    /// Functional warming of the walk-side state (`SAMPLING.md §2`):
    /// touches the PWC for the upper-level PTEs and the cache hierarchy
    /// for every PTE read that would leave it, filling exactly as a
    /// [`WalkLatency::Variable`] [`walk`](Self::walk) would, but recording
    /// no latency or hit/miss statistics. Unmapped addresses are ignored
    /// — fast-forward resolves the mapping before warming.
    pub fn warm_walk(&mut self, core: CoreId, asid: Asid, va: VirtAddr) {
        let outcome = {
            let tables = self.tables_read();
            match tables.get(&asid) {
                Some(table) => table.walk(va),
                None => return,
            }
        };
        if outcome.mapping.is_none() || outcome.pte_addrs.is_empty() {
            return;
        }
        let leaf = outcome.pte_addrs.len() - 1;
        for (level, pa) in outcome.pte_addrs.iter().enumerate() {
            if level < leaf && self.pwc_mut(core).touch(*pa) {
                continue;
            }
            self.warm_access(core, *pa, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::MemoryConfig;
    use nocstar_types::PageSize;

    fn system() -> MemorySystem {
        let mut cfg = MemoryConfig::haswell(2);
        cfg.phys_capacity = 1 << 30;
        MemorySystem::new(cfg)
    }

    #[test]
    fn cold_walk_pays_dram_for_every_level() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        let walk = mem.walk(CoreId::new(0), asid, va);
        assert_eq!(walk.pte_reads.len(), 4);
        assert!(walk.pte_reads.iter().all(|s| *s == ServicedBy::Dram));
        assert_eq!(walk.latency, Cycles::new(4 * 250));
        assert!(walk.touched_llc_or_memory());
    }

    #[test]
    fn warm_walks_are_cheap() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.walk(CoreId::new(0), asid, va);
        let warm = mem.walk(CoreId::new(0), asid, va);
        // Upper levels hit the PWC (1 cycle each); the leaf PTE hits L1.
        assert_eq!(
            warm.pte_reads,
            vec![
                ServicedBy::Pwc,
                ServicedBy::Pwc,
                ServicedBy::Pwc,
                ServicedBy::L1
            ]
        );
        assert_eq!(warm.latency, Cycles::new(3 + 4));
        assert!(!warm.touched_llc_or_memory());
    }

    #[test]
    fn pwc_is_per_core() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.walk(CoreId::new(0), asid, va);
        // Core 1's PWC is cold, so its upper reads go to the caches.
        let other = mem.walk(CoreId::new(1), asid, va);
        assert!(other.pte_reads.iter().all(|s| *s != ServicedBy::Pwc));
    }

    #[test]
    fn pwc_flush_restores_cold_upper_levels() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.walk(CoreId::new(0), asid, va);
        mem.flush_pwc(CoreId::new(0));
        let after = mem.walk(CoreId::new(0), asid, va);
        assert!(after.pte_reads.iter().all(|s| *s != ServicedBy::Pwc));
    }

    #[test]
    fn superpage_walks_have_fewer_reads() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x4000_0000);
        mem.ensure_mapped(asid, va, PageSize::Size2M);
        let walk = mem.walk(CoreId::new(0), asid, va.offset(0x1234));
        assert_eq!(walk.pte_reads.len(), 3);
        assert_eq!(walk.vpn.page_size(), PageSize::Size2M);
    }

    #[test]
    fn fixed_latency_skips_the_caches() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x9000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        let walk = mem.walk_with(
            CoreId::new(0),
            asid,
            va,
            WalkLatency::Fixed(Cycles::new(20)),
        );
        assert_eq!(walk.latency, Cycles::new(20));
        assert!(walk.pte_reads.is_empty());
        assert!(!walk.touched_llc_or_memory());
        // The caches saw no PTE traffic.
        assert_eq!(mem.cache_stats().0.accesses(), 0);
    }

    #[test]
    fn walks_pollute_the_walking_cores_caches() {
        // The Fig 17 "walk at remote node" policy pollutes the remote
        // core's caches; verify walks are attributed to the given core.
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x7000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.walk(CoreId::new(1), asid, va);
        let warm_remote = mem.walk(CoreId::new(1), asid, va);
        assert_eq!(warm_remote.pte_reads.last(), Some(&ServicedBy::L1));
        // Core 0 still misses privately (hits shared LLC).
        let cross = mem.walk(CoreId::new(0), asid, va);
        assert!(cross.pte_reads.iter().all(|s| *s == ServicedBy::Llc));
    }

    #[test]
    fn spiked_walks_multiply_latency_and_statistics() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x9000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        let spiked = mem.walk_spiked(
            CoreId::new(0),
            asid,
            va,
            WalkLatency::Fixed(Cycles::new(20)),
            8,
        );
        assert_eq!(spiked.latency, Cycles::new(160));
        // The recorded walk-latency distribution reflects the spike.
        assert_eq!(mem.walk_latency_histogram().max(), Some(160));
    }

    #[test]
    fn warm_walk_leaves_the_state_a_real_walk_would() {
        let mut mem = system();
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x1234_5000);
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        mem.warm_walk(CoreId::new(0), asid, va);
        // No statistics were recorded by the warming pass...
        assert_eq!(mem.walk_latency_histogram().count(), 0);
        assert_eq!(mem.cache_stats().0.accesses(), 0);
        // ...yet a subsequent timed walk sees exactly the warm state a
        // prior real walk would have left: PWC upper levels, L1 leaf.
        let warm = mem.walk(CoreId::new(0), asid, va);
        assert_eq!(
            warm.pte_reads,
            vec![
                ServicedBy::Pwc,
                ServicedBy::Pwc,
                ServicedBy::Pwc,
                ServicedBy::L1
            ]
        );
    }

    #[test]
    fn warm_walk_ignores_unmapped_addresses() {
        let mut mem = system();
        let asid = Asid::new(1);
        mem.ensure_mapped(asid, VirtAddr::new(0x1000), PageSize::Size4K);
        mem.warm_walk(CoreId::new(0), asid, VirtAddr::new(0xdead_0000));
        mem.warm_walk(CoreId::new(0), Asid::new(99), VirtAddr::new(0x1000));
        assert_eq!(mem.cache_stats().0.accesses(), 0);
    }

    #[test]
    fn warm_access_fills_without_statistics() {
        let mut mem = system();
        let core = CoreId::new(0);
        let pa = nocstar_types::PhysAddr::new(0x4000);
        mem.warm_access(core, pa, false);
        assert_eq!(mem.cache_stats().0.accesses(), 0);
        let hit = mem.access(core, pa, false);
        assert_eq!(hit.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn cluster_walker_prefers_the_warm_pwc_on_ties() {
        let free = vec![Cycle::new(10); 4];
        let (req, home) = (CoreId::new(1), CoreId::new(3));
        // Equal availability: the preferred core keeps the walk.
        assert_eq!(cluster_walker(req, home, 4, &free), req);
    }

    #[test]
    fn cluster_walker_steals_only_a_strictly_earlier_walker() {
        let mut free = vec![Cycle::new(10); 4];
        free[3] = Cycle::new(5);
        let (req, home) = (CoreId::new(1), CoreId::new(3));
        assert_eq!(cluster_walker(req, home, 4, &free), home);
        // With the imbalance reversed, the preferred core stays.
        free[3] = Cycle::new(50);
        assert_eq!(cluster_walker(req, home, 4, &free), req);
        // Degenerate clusters never move the walk.
        assert_eq!(cluster_walker(req, req, 4, &free), req);
        assert_eq!(cluster_walker(req, home, 1, &free), req);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn walking_an_unmapped_page_panics() {
        let mut mem = system();
        let asid = Asid::new(1);
        mem.ensure_mapped(asid, VirtAddr::new(0x1000), PageSize::Size4K);
        mem.walk(CoreId::new(0), asid, VirtAddr::new(0xdead_0000));
    }
}
