//! Physical frame allocation for the simulated machine.

use nocstar_types::{PageSize, PhysPageNum};
use std::fmt;

/// A bump allocator over the simulated machine's physical memory.
///
/// Frames are handed out in address order with natural alignment (a 2 MiB
/// frame starts on a 2 MiB boundary). The simulator never frees frames —
/// workloads allocate their footprint once; remaps allocate fresh frames,
/// modelling the OS handing out a different physical page.
///
/// # Examples
///
/// ```
/// use nocstar_mem::phys::PhysMemory;
/// use nocstar_types::PageSize;
///
/// let mut mem = PhysMemory::new(1 << 30); // 1 GiB machine
/// let a = mem.alloc(PageSize::Size4K);
/// let b = mem.alloc(PageSize::Size2M);
/// assert_ne!(a.base(), b.base());
/// assert_eq!(b.base().value() % PageSize::Size2M.bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    capacity: u64,
    next_free: u64,
}

impl PhysMemory {
    /// The paper's machine: 2 TB of system memory (§IV).
    pub const PAPER_CAPACITY: u64 = 2 << 40;

    /// A machine with `capacity` bytes of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than one 4 KiB frame.
    pub fn new(capacity: u64) -> Self {
        assert!(
            capacity >= PageSize::Size4K.bytes(),
            "machine needs at least one frame"
        );
        Self {
            capacity,
            next_free: 0,
        }
    }

    /// The paper's 2 TB machine.
    pub fn paper_machine() -> Self {
        Self::new(Self::PAPER_CAPACITY)
    }

    /// Allocates one naturally aligned frame of the given size.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted — the simulator sizes
    /// workload footprints to fit, so exhaustion is a configuration bug.
    pub fn alloc(&mut self, size: PageSize) -> PhysPageNum {
        let bytes = size.bytes();
        let base = self.next_free.next_multiple_of(bytes);
        assert!(
            base + bytes <= self.capacity,
            "out of simulated physical memory: {} of {} bytes used",
            self.next_free,
            self.capacity
        );
        self.next_free = base + bytes;
        PhysPageNum::new(base >> size.shift(), size)
    }

    /// Bytes handed out so far (including alignment padding).
    pub fn allocated(&self) -> u64 {
        self.next_free
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl fmt::Display for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} MiB allocated",
            self.next_free >> 20,
            self.capacity >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frames_are_disjoint_and_ordered() {
        let mut mem = PhysMemory::new(1 << 24);
        let a = mem.alloc(PageSize::Size4K);
        let b = mem.alloc(PageSize::Size4K);
        assert_eq!(b.base().value(), a.base().value() + 0x1000);
    }

    #[test]
    fn superpage_frames_are_naturally_aligned() {
        let mut mem = PhysMemory::new(1 << 32);
        mem.alloc(PageSize::Size4K); // misalign the bump pointer
        let big = mem.alloc(PageSize::Size2M);
        assert_eq!(big.base().value() % PageSize::Size2M.bytes(), 0);
        let huge = mem.alloc(PageSize::Size1G);
        assert_eq!(huge.base().value() % PageSize::Size1G.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of simulated physical memory")]
    fn exhaustion_panics() {
        let mut mem = PhysMemory::new(1 << 13); // two 4K frames
        mem.alloc(PageSize::Size4K);
        mem.alloc(PageSize::Size4K);
        mem.alloc(PageSize::Size4K);
    }

    #[test]
    fn display_reports_usage() {
        let mut mem = PhysMemory::new(4 << 20);
        mem.alloc(PageSize::Size2M);
        assert_eq!(mem.to_string(), "2/4 MiB allocated");
    }

    proptest! {
        /// Allocations never overlap, regardless of the size sequence.
        #[test]
        fn prop_allocations_never_overlap(sizes in prop::collection::vec(0usize..3, 1..50)) {
            let mut mem = PhysMemory::new(64 << 30);
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for s in sizes {
                let size = PageSize::ALL[s];
                let frame = mem.alloc(size);
                let start = frame.base().value();
                let end = start + size.bytes();
                for &(a, b) in &ranges {
                    prop_assert!(end <= a || start >= b, "overlap");
                }
                ranges.push((start, end));
            }
        }
    }
}
