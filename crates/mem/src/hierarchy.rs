//! The chip's memory system: per-core L1D/L2 caches, a shared LLC, DRAM,
//! physical memory, and per-address-space page tables.

use crate::cache::{Cache, CacheConfig};
use crate::page_table::PageTable;
use crate::phys::PhysMemory;
use crate::pwc::{PteCache, DEFAULT_PWC_ENTRIES};
use nocstar_stats::counter::HitMiss;
use nocstar_stats::Log2Histogram;
use nocstar_types::time::Cycles;
use nocstar_types::{Asid, CoreId, PageSize, PhysAddr, PhysPageNum, VirtAddr, VirtPageNum};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The per-address-space page tables, shared between the simulator's
/// commit thread and (under `--parallel-domains`) its read-only domain
/// workers.
///
/// Invariant the parallel path relies on: mapped-ness is **monotone**
/// within a run. [`MemorySystem`] maps pages on first touch and exposes
/// remap/promote/demote (which keep every address mapped, only changing
/// frames or leaf level) but never unmapping — so once a worker observes
/// a virtual address as mapped, that observation can never go stale. A
/// negative observation *can* go stale (another thread may map the page
/// first) and must be re-verified at commit time.
#[derive(Debug, Clone, Default)]
pub struct SharedTables {
    inner: Arc<RwLock<BTreeMap<Asid, PageTable>>>,
}

impl SharedTables {
    fn read(&self) -> RwLockReadGuard<'_, BTreeMap<Asid, PageTable>> {
        // A panic on another thread aborts the run anyway; the table data
        // itself is never left half-written (writers mutate through
        // &mut self on the commit thread), so a poisoned lock is safe to
        // enter — it only makes the original panic the one that surfaces.
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, BTreeMap<Asid, PageTable>> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Functional mapped-ness probe with no timing or cache effects (the
    /// domain workers' only view of the tables).
    pub fn is_mapped(&self, asid: Asid, va: VirtAddr) -> bool {
        self.read()
            .get(&asid)
            .is_some_and(|table| table.walk(va).mapping.is_some())
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServicedBy {
    /// Hit in the core's paging-structure cache (upper-level PTEs only).
    Pwc,
    /// Hit in the core's private L1 data cache.
    L1,
    /// Hit in the core's private L2 cache.
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Serviced by DRAM.
    Dram,
}

impl fmt::Display for ServicedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServicedBy::Pwc => write!(f, "PWC"),
            ServicedBy::L1 => write!(f, "L1"),
            ServicedBy::L2 => write!(f, "L2"),
            ServicedBy::Llc => write!(f, "LLC"),
            ServicedBy::Dram => write!(f, "DRAM"),
        }
    }
}

/// The outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total access latency (the servicing level's latency).
    pub latency: Cycles,
    /// Which level serviced the access.
    pub serviced_by: ServicedBy,
}

/// Memory-system sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Number of cores (each gets a private L1D and L2).
    pub cores: usize,
    /// Private L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private L2 cache geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry.
    pub llc: CacheConfig,
    /// Latency of a DRAM access (beyond the LLC lookup that missed).
    pub dram_latency: Cycles,
    /// Simulated physical memory capacity in bytes.
    pub phys_capacity: u64,
}

impl MemoryConfig {
    /// The paper's Haswell configuration (§IV) for `cores` cores, with
    /// physical capacity scaled to simulation-friendly footprints (the
    /// paper's 2 TB machine is modelled by workload footprints that stress
    /// the TLB identically at smaller absolute size).
    pub fn haswell(cores: usize) -> Self {
        Self {
            cores,
            l1d: CacheConfig::haswell_l1d(),
            l2: CacheConfig::haswell_l2(),
            llc: CacheConfig::haswell_llc(cores),
            dram_latency: Cycles::new(200),
            phys_capacity: 64 << 30,
        }
    }
}

/// The full memory system.
///
/// # Examples
///
/// ```
/// use nocstar_mem::hierarchy::{MemoryConfig, MemorySystem, ServicedBy};
/// use nocstar_types::{CoreId, PhysAddr};
///
/// let mut mem = MemorySystem::new(MemoryConfig::haswell(2));
/// let pa = PhysAddr::new(0x4000);
/// let cold = mem.access(CoreId::new(0), pa, false);
/// assert_eq!(cold.serviced_by, ServicedBy::Dram);
/// let warm = mem.access(CoreId::new(0), pa, false);
/// assert_eq!(warm.serviced_by, ServicedBy::L1);
/// // Another core misses its private caches but hits the shared LLC.
/// let shared = mem.access(CoreId::new(1), pa, false);
/// assert_eq!(shared.serviced_by, ServicedBy::Llc);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: MemoryConfig,
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    llc: Cache,
    phys: PhysMemory,
    tables: SharedTables,
    pwcs: Vec<PteCache>,
    /// Distribution of completed page-walk latencies (cycles).
    pub(crate) walk_latency: Log2Histogram,
    /// Distribution of PWC-serviced PTE reads per walk (0–3).
    pub(crate) pwc_hits_per_walk: Log2Histogram,
}

impl MemorySystem {
    /// Builds the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or any cache geometry is invalid.
    pub fn new(config: MemoryConfig) -> Self {
        assert!(config.cores > 0, "need at least one core");
        Self {
            config,
            l1s: (0..config.cores).map(|_| Cache::new(config.l1d)).collect(),
            l2s: (0..config.cores).map(|_| Cache::new(config.l2)).collect(),
            llc: Cache::new(config.llc),
            phys: PhysMemory::new(config.phys_capacity),
            tables: SharedTables::default(),
            pwcs: (0..config.cores)
                .map(|_| PteCache::new(DEFAULT_PWC_ENTRIES))
                .collect(),
            walk_latency: Log2Histogram::new(),
            pwc_hits_per_walk: Log2Histogram::new(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// One data (or PTE) access by `core` to physical address `pa`,
    /// walking L1 → L2 → LLC → DRAM and filling on the way back.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, pa: PhysAddr, write: bool) -> AccessResult {
        let c = core.index();
        if self.l1s[c].access(pa, write) {
            return AccessResult {
                latency: self.l1s[c].latency(),
                serviced_by: ServicedBy::L1,
            };
        }
        if self.l2s[c].access(pa, write) {
            return AccessResult {
                latency: self.l2s[c].latency(),
                serviced_by: ServicedBy::L2,
            };
        }
        if self.llc.access(pa, write) {
            return AccessResult {
                latency: self.llc.latency(),
                serviced_by: ServicedBy::Llc,
            };
        }
        AccessResult {
            latency: self.llc.latency() + self.config.dram_latency,
            serviced_by: ServicedBy::Dram,
        }
    }

    /// Functional warming of the data-cache hierarchy (`SAMPLING.md §2`):
    /// fills and updates recency at each level exactly as
    /// [`access`](Self::access) would — an L1 hit stops there, and so on
    /// down — but records no hit/miss statistics and charges no latency.
    /// Sampled fast-forward replay uses this so measurement windows start
    /// from warm caches instead of stale-warm ones.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn warm_access(&mut self, core: CoreId, pa: PhysAddr, write: bool) {
        let c = core.index();
        if self.l1s[c].touch(pa, write) {
            return;
        }
        if self.l2s[c].touch(pa, write) {
            return;
        }
        self.llc.touch(pa, write);
    }

    /// A cloneable handle onto this system's page tables, for read-only
    /// mapped-ness probes from parallel domain workers. See
    /// [`SharedTables`] for the monotonicity contract.
    pub fn shared_tables(&self) -> SharedTables {
        self.tables.clone()
    }

    /// Ensures `va` is mapped at the given page size (an OS demand-paging
    /// fault on first touch); returns the backing frame.
    pub fn ensure_mapped(&mut self, asid: Asid, va: VirtAddr, size: PageSize) -> PhysPageNum {
        let vpn = va.page_number(size);
        let phys = &mut self.phys;
        let mut tables = self.tables.write();
        let table = tables.entry(asid).or_insert_with(|| PageTable::new(phys));
        table.map(vpn, phys)
    }

    /// Functional translation with no timing or cache effects; `None` if
    /// unmapped.
    pub fn translate(&self, asid: Asid, va: VirtAddr) -> Option<(VirtPageNum, PhysPageNum)> {
        self.tables.read().get(&asid)?.walk(va).mapping
    }

    /// The functional fast-forward translation entry point
    /// (`SAMPLING.md §2`): maps `va` on first touch at the given page
    /// size (exactly as the detailed path would) and returns the
    /// translation as the page tables currently back it — which may be a
    /// different leaf level than `size` if the region was promoted or
    /// demoted. No timing, cache, or PWC effects.
    pub fn resolve_mapped(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        size: PageSize,
    ) -> (VirtPageNum, PhysPageNum) {
        if let Some(mapping) = self.translate(asid, va) {
            return mapping;
        }
        self.ensure_mapped(asid, va, size);
        self.translate(asid, va)
            // nocstar-lint: allow(sim-unwrap): just mapped above; mappings are monotone
            .expect("ensure_mapped leaves the address translated")
    }

    /// Remaps a page to a fresh frame; returns the new frame if mapped.
    pub fn remap(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<PhysPageNum> {
        let phys = &mut self.phys;
        let mut tables = self.tables.write();
        let table = tables.get_mut(&asid)?;
        table.remap(vpn, phys)
    }

    /// Promotes 4 KiB pages under a 2 MiB region (see
    /// [`PageTable::promote`]); returns the stale base pages.
    pub fn promote(&mut self, asid: Asid, vpn_2m: VirtPageNum) -> Option<Vec<VirtPageNum>> {
        let phys = &mut self.phys;
        let mut tables = self.tables.write();
        let table = tables.get_mut(&asid)?;
        table.promote(vpn_2m, phys)
    }

    /// Demotes a 2 MiB mapping (see [`PageTable::demote`]); returns the
    /// stale superpage.
    pub fn demote(&mut self, asid: Asid, vpn_2m: VirtPageNum) -> Option<VirtPageNum> {
        let phys = &mut self.phys;
        let mut tables = self.tables.write();
        let table = tables.get_mut(&asid)?;
        table.demote(vpn_2m, phys)
    }

    /// Per-level hit/miss statistics: `(l1_combined, l2_combined, llc)`.
    pub fn cache_stats(&self) -> (HitMiss, HitMiss, HitMiss) {
        let mut l1 = HitMiss::new();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = HitMiss::new();
        for c in &self.l2s {
            l2.merge(c.stats());
        }
        (l1, l2, self.llc.stats())
    }

    /// Clears cache statistics on every level, plus the walk histograms.
    pub fn reset_cache_stats(&mut self) {
        for c in &mut self.l1s {
            c.reset_stats();
        }
        for c in &mut self.l2s {
            c.reset_stats();
        }
        self.llc.reset_stats();
        self.walk_latency = Log2Histogram::new();
        self.pwc_hits_per_walk = Log2Histogram::new();
    }

    /// Distribution of completed page-walk latencies.
    pub fn walk_latency_histogram(&self) -> &Log2Histogram {
        &self.walk_latency
    }

    /// Distribution of PWC-serviced PTE reads per walk.
    pub fn pwc_hits_histogram(&self) -> &Log2Histogram {
        &self.pwc_hits_per_walk
    }

    /// The physical memory allocator (for inspection).
    pub fn phys(&self) -> &PhysMemory {
        &self.phys
    }

    /// The paging-structure cache of one core.
    pub fn pwc_mut(&mut self, core: CoreId) -> &mut PteCache {
        &mut self.pwcs[core.index()]
    }

    /// Flushes one core's paging-structure cache (context switch).
    pub fn flush_pwc(&mut self, core: CoreId) {
        self.pwcs[core.index()].flush();
    }

    /// Read access to the tables for the walker (same crate).
    pub(crate) fn tables_read(&self) -> RwLockReadGuard<'_, BTreeMap<Asid, PageTable>> {
        self.tables.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(cores: usize) -> MemorySystem {
        let mut cfg = MemoryConfig::haswell(cores);
        cfg.phys_capacity = 1 << 30;
        MemorySystem::new(cfg)
    }

    #[test]
    fn access_walks_down_the_hierarchy() {
        let mut mem = system(1);
        let pa = PhysAddr::new(0x10_0000);
        assert_eq!(
            mem.access(CoreId::new(0), pa, false).serviced_by,
            ServicedBy::Dram
        );
        assert_eq!(
            mem.access(CoreId::new(0), pa, false).serviced_by,
            ServicedBy::L1
        );
    }

    #[test]
    fn dram_latency_includes_llc_lookup() {
        let mut mem = system(1);
        let r = mem.access(CoreId::new(0), PhysAddr::new(0), false);
        assert_eq!(r.latency, Cycles::new(250)); // 50 LLC + 200 DRAM
    }

    #[test]
    fn private_caches_are_per_core_but_llc_is_shared() {
        let mut mem = system(2);
        let pa = PhysAddr::new(0x2000);
        mem.access(CoreId::new(0), pa, false);
        let other = mem.access(CoreId::new(1), pa, false);
        assert_eq!(other.serviced_by, ServicedBy::Llc);
        assert_eq!(other.latency, Cycles::new(50));
    }

    #[test]
    fn ensure_mapped_is_idempotent_and_translates() {
        let mut mem = system(1);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x123_4567);
        let f1 = mem.ensure_mapped(asid, va, PageSize::Size4K);
        let f2 = mem.ensure_mapped(asid, va, PageSize::Size4K);
        assert_eq!(f1, f2);
        let (vpn, ppn) = mem.translate(asid, va).unwrap();
        assert_eq!(ppn, f1);
        assert_eq!(vpn, va.page_number(PageSize::Size4K));
    }

    #[test]
    fn resolve_mapped_demand_maps_and_honors_promotions() {
        let mut mem = system(1);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x9_0000);
        let (vpn, ppn) = mem.resolve_mapped(asid, va, PageSize::Size4K);
        assert_eq!(vpn, va.page_number(PageSize::Size4K));
        assert_eq!(mem.translate(asid, va).unwrap(), (vpn, ppn));
        // After promotion, resolution follows the tables' 2M leaf even
        // when asked at 4K granularity.
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        for i in 0..512u64 {
            mem.ensure_mapped(
                asid,
                VirtAddr::new((v2m.to_base_pages() + i) << 12),
                PageSize::Size4K,
            );
        }
        mem.promote(asid, v2m).unwrap();
        let (vpn2, _) = mem.resolve_mapped(asid, VirtAddr::new(0x20_3000), PageSize::Size4K);
        assert_eq!(vpn2.page_size(), PageSize::Size2M);
    }

    #[test]
    fn distinct_asids_have_distinct_tables() {
        let mut mem = system(1);
        let va = VirtAddr::new(0x5000);
        let a = mem.ensure_mapped(Asid::new(1), va, PageSize::Size4K);
        let b = mem.ensure_mapped(Asid::new(2), va, PageSize::Size4K);
        assert_ne!(a, b);
        assert!(mem.translate(Asid::new(3), va).is_none());
    }

    #[test]
    fn remap_promote_demote_plumb_through() {
        let mut mem = system(1);
        let asid = Asid::new(1);
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        for i in 0..512u64 {
            mem.ensure_mapped(
                asid,
                VirtAddr::new((v2m.to_base_pages() + i) << 12),
                PageSize::Size4K,
            );
        }
        let stale = mem.promote(asid, v2m).unwrap();
        assert_eq!(stale.len(), 512);
        let demoted = mem.demote(asid, v2m).unwrap();
        assert_eq!(demoted, v2m);
        let new = mem
            .remap(asid, VirtAddr::new(0x20_0000).page_number(PageSize::Size4K))
            .unwrap();
        assert_eq!(
            mem.translate(asid, VirtAddr::new(0x20_0000)).unwrap().1,
            new
        );
    }

    #[test]
    fn shared_tables_probe_sees_live_mappings() {
        let mut mem = system(1);
        let asid = Asid::new(1);
        let va = VirtAddr::new(0x77_7000);
        let handle = mem.shared_tables();
        assert!(!handle.is_mapped(asid, va));
        mem.ensure_mapped(asid, va, PageSize::Size4K);
        // The handle observes mappings made after it was taken, and the
        // positive observation survives every mutation the system offers
        // (the monotonicity contract the parallel workers rely on).
        assert!(handle.is_mapped(asid, va));
        mem.remap(asid, va.page_number(PageSize::Size4K));
        assert!(handle.is_mapped(asid, va));
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        for i in 0..512u64 {
            mem.ensure_mapped(
                asid,
                VirtAddr::new((v2m.to_base_pages() + i) << 12),
                PageSize::Size4K,
            );
        }
        mem.promote(asid, v2m);
        assert!(handle.is_mapped(asid, VirtAddr::new(0x20_0000)));
        mem.demote(asid, v2m);
        assert!(handle.is_mapped(asid, VirtAddr::new(0x20_0000)));
        assert!(handle.is_mapped(asid, va));
    }

    #[test]
    fn cache_stats_aggregate_across_cores() {
        let mut mem = system(2);
        mem.access(CoreId::new(0), PhysAddr::new(0), false);
        mem.access(CoreId::new(1), PhysAddr::new(0x8000), false);
        let (l1, _l2, llc) = mem.cache_stats();
        assert_eq!(l1.accesses(), 2);
        assert_eq!(llc.misses(), 2);
        mem.reset_cache_stats();
        assert_eq!(mem.cache_stats().0.accesses(), 0);
    }
}
