//! Memory substrate for the NOCSTAR simulator.
//!
//! TLB studies live or die by what happens on a TLB miss: the page-table
//! walk. This crate provides the machinery behind that path:
//!
//! * [`phys`] — a physical frame allocator over the simulated machine's
//!   memory (the paper's systems have 2 TB).
//! * [`cache`] — a set-associative, write-back cache model.
//! * [`hierarchy`] — the per-core L1D/L2 plus shared-LLC hierarchy (32 KiB /
//!   256 KiB / 8 MiB-per-core at 4 / 12 / 50 cycles, paper §IV) through
//!   which both data accesses and page-walk PTE reads travel.
//! * [`page_table`] — real 4-level x86-64-style radix page tables with
//!   2 MiB and 1 GiB superpage leaves, built frame-by-frame in simulated
//!   physical memory so every PTE has a physical address to fetch.
//! * [`walker`] — the page-table walker: issues the pointer chase through
//!   the cache hierarchy (the paper's *variable* walk latency) or charges a
//!   fixed latency (Table III's fixed-10/20/40/80 sweeps).
//!
//! # Examples
//!
//! ```
//! use nocstar_mem::{MemorySystem, MemoryConfig};
//! use nocstar_types::{Asid, CoreId, PageSize, VirtAddr};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::haswell(1));
//! let asid = Asid::new(1);
//! mem.ensure_mapped(asid, VirtAddr::new(0x1000), PageSize::Size4K);
//! let walk = mem.walk(CoreId::new(0), asid, VirtAddr::new(0x1234));
//! assert_eq!(walk.vpn.page_size(), PageSize::Size4K);
//! assert_eq!(walk.pte_reads.len(), 4); // PML4 -> PDPT -> PD -> PT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod page_table;
pub mod phys;
pub mod pwc;
pub mod walker;

pub use hierarchy::{AccessResult, MemoryConfig, MemorySystem, ServicedBy};
pub use page_table::PageTable;
pub use phys::PhysMemory;
pub use pwc::PteCache;
pub use walker::{WalkLatency, WalkResult};
