//! A set-associative, write-back cache model.
//!
//! Tracks only presence (tags + LRU stamps), not data: the simulator needs
//! hit/miss outcomes and latencies, not values. Lines are 64 bytes.

use nocstar_stats::counter::HitMiss;
use nocstar_types::time::Cycles;
use nocstar_types::PhysAddr;

/// Cache line size in bytes (all levels).
pub const LINE_BYTES: u64 = 64;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency.
    pub latency: Cycles,
}

impl CacheConfig {
    /// Haswell L1D: 32 KiB, 8-way, 4 cycles (paper §IV).
    pub fn haswell_l1d() -> Self {
        Self {
            capacity: 32 << 10,
            ways: 8,
            latency: Cycles::new(4),
        }
    }

    /// Haswell L2: 256 KiB, 8-way, 12 cycles (paper §IV).
    pub fn haswell_l2() -> Self {
        Self {
            capacity: 256 << 10,
            ways: 8,
            latency: Cycles::new(12),
        }
    }

    /// Haswell LLC: 2.5 MiB per core, 16-way, 50 cycles.
    ///
    /// The paper states 8 MiB per core; shipping Haswell server parts have
    /// 2.5 MiB/core. We use the real ratio because the simulator runs
    /// footprint-scaled workloads: an oversized LLC would keep every page-
    /// table leaf resident and hide the DRAM component of page walks that
    /// the paper's 2 TB footprints exhibit (see DESIGN.md).
    pub fn haswell_llc(cores: usize) -> Self {
        Self {
            capacity: (2 << 20) * cores as u64 + (cores as u64) * (512 << 10),
            ways: 16,
            latency: Cycles::new(50),
        }
    }
}

/// One level of cache: a tag array with per-line LRU stamps.
///
/// # Examples
///
/// ```
/// use nocstar_mem::cache::{Cache, CacheConfig};
/// use nocstar_types::PhysAddr;
///
/// let mut l1 = Cache::new(CacheConfig::haswell_l1d());
/// let pa = PhysAddr::new(0x1000);
/// assert!(!l1.access(pa, false)); // cold miss (fills the line)
/// assert!(l1.access(pa, false));  // now hits
/// assert!(l1.access(PhysAddr::new(0x1020), true)); // same 64B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    num_sets: usize,
    /// Per (set, way): line tag, or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// Per (set, way): last-use stamp.
    stamps: Vec<u64>,
    /// Per (set, way): dirty bit.
    dirty: Vec<bool>,
    clock: u64,
    stats: HitMiss,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Builds a cache level.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, capacity smaller
    /// than one way of lines, or capacity not a multiple of `ways *
    /// LINE_BYTES`).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        let lines = config.capacity / LINE_BYTES;
        assert!(
            lines >= config.ways as u64 && lines.is_multiple_of(config.ways as u64),
            "capacity must be a whole number of {}-way sets of {LINE_BYTES}B lines",
            config.ways
        );
        let num_sets = (lines / config.ways as u64) as usize;
        let total = num_sets * config.ways;
        Self {
            config,
            num_sets,
            tags: vec![INVALID; total],
            stamps: vec![0; total],
            dirty: vec![false; total],
            clock: 0,
            stats: HitMiss::new(),
        }
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> Cycles {
        self.config.latency
    }

    /// Accesses one physical address; returns whether it hit. A miss fills
    /// the line (evicting LRU); a write marks the line dirty.
    pub fn access(&mut self, pa: PhysAddr, write: bool) -> bool {
        let hit = self.lookup_fill(pa, write);
        if hit {
            self.stats.hit();
        } else {
            self.stats.miss();
        }
        hit
    }

    /// [`access`](Self::access) without statistics: fills, evicts and
    /// updates recency identically but records no hit or miss — the
    /// functional-warming entry point for sampled fast-forward replay
    /// (`SAMPLING.md §2`).
    pub fn touch(&mut self, pa: PhysAddr, write: bool) -> bool {
        self.lookup_fill(pa, write)
    }

    fn lookup_fill(&mut self, pa: PhysAddr, write: bool) -> bool {
        let line = pa.value() / LINE_BYTES;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.config.ways;
        self.clock += 1;

        let ways = &mut self.tags[base..base + self.config.ways];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            if write {
                self.dirty[base + w] = true;
            }
            return true;
        }
        // Miss: fill into the LRU way (invalid ways have stamp 0, so they
        // are chosen first). `ways >= 1` is asserted at construction, so
        // the min always exists; way 0 is the degenerate fallback.
        let victim = (0..self.config.ways)
            .min_by_key(|&w| {
                if self.tags[base + w] == INVALID {
                    0
                } else {
                    self.stamps[base + w].max(1)
                }
            })
            .unwrap_or(0);
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = write;
        false
    }

    /// Checks for presence without filling or updating recency.
    pub fn probe(&self, pa: PhysAddr) -> bool {
        let line = pa.value() / LINE_BYTES;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Clears statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 8 lines, 2 ways => 4 sets.
        Cache::new(CacheConfig {
            capacity: 8 * LINE_BYTES,
            ways: 2,
            latency: Cycles::new(4),
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let pa = PhysAddr::new(0x40);
        assert!(!c.access(pa, false));
        assert!(c.access(pa, false));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn same_line_different_offsets_share_one_line() {
        let mut c = tiny();
        c.access(PhysAddr::new(0x100), false);
        assert!(c.access(PhysAddr::new(0x13f), true));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = tiny(); // 4 sets; lines 0,4,8 map to set 0
        let line = |n: u64| PhysAddr::new(n * 4 * LINE_BYTES);
        c.access(line(0), false);
        c.access(line(1), false);
        c.access(line(0), false); // line 1 is now LRU
        c.access(line(2), false); // evicts line 1
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(1)));
        assert!(c.probe(line(2)));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert!(!c.probe(PhysAddr::new(0)));
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses(), 0);
        c.access(PhysAddr::new(0), false);
        assert!(c.probe(PhysAddr::new(0)));
    }

    #[test]
    fn touch_fills_and_promotes_without_statistics() {
        let mut c = tiny();
        let pa = PhysAddr::new(0x40);
        assert!(!c.touch(pa, false)); // cold: fills the line
        assert!(c.touch(pa, false));
        assert_eq!(c.stats().accesses(), 0);
        // The touched line is genuinely resident for later timed accesses.
        assert!(c.access(pa, false));
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn touch_and_access_share_one_recency_order() {
        let mut c = tiny(); // 4 sets; lines 0,4,8 map to set 0
        let line = |n: u64| PhysAddr::new(n * 4 * LINE_BYTES);
        c.access(line(0), false);
        c.access(line(1), false);
        c.touch(line(0), false); // line 1 is now LRU
        c.access(line(2), false); // evicts line 1
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(1)));
    }

    #[test]
    fn haswell_configs_have_paper_latencies() {
        assert_eq!(
            Cache::new(CacheConfig::haswell_l1d()).latency(),
            Cycles::new(4)
        );
        assert_eq!(
            Cache::new(CacheConfig::haswell_l2()).latency(),
            Cycles::new(12)
        );
        assert_eq!(
            Cache::new(CacheConfig::haswell_llc(32)).latency(),
            Cycles::new(50)
        );
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity: 3 * LINE_BYTES,
            ways: 2,
            latency: Cycles::new(1),
        });
    }

    proptest! {
        /// Occupancy never exceeds capacity and a just-accessed line is
        /// always resident.
        #[test]
        fn prop_capacity_respected(addrs in prop::collection::vec(0u64..0x10_0000, 1..300)) {
            let mut c = Cache::new(CacheConfig {
                capacity: 64 * LINE_BYTES,
                ways: 4,
                latency: Cycles::new(1),
            });
            for &a in &addrs {
                let pa = PhysAddr::new(a);
                c.access(pa, a % 3 == 0);
                prop_assert!(c.probe(pa));
                prop_assert!(c.occupancy() <= 64);
            }
            prop_assert_eq!(c.stats().accesses(), addrs.len() as u64);
        }

        /// A working set that fits in one set's ways never misses after warmup.
        #[test]
        fn prop_resident_set_never_misses(seed in 0u64..1000) {
            let mut c = tiny(); // 4 sets, 2 ways
            let a = PhysAddr::new(seed * 4 * LINE_BYTES);
            let b = PhysAddr::new((seed + 1000) * 4 * LINE_BYTES); // same set
            c.access(a, false);
            c.access(b, false);
            c.reset_stats();
            for _ in 0..10 {
                c.access(a, false);
                c.access(b, false);
            }
            prop_assert_eq!(c.stats().misses(), 0);
        }
    }
}
