//! A 4-level x86-64-style radix page table, built in simulated physical
//! memory.
//!
//! Each table node occupies a real (simulated) 4 KiB frame, so every PTE
//! the walker reads has a physical address to send through the cache
//! hierarchy — this is what makes the paper's "variable" page-walk latency
//! emerge from cache behaviour rather than being a constant.
//!
//! Leaves may sit at three depths: PT (4 KiB pages), PD (2 MiB), or PDPT
//! (1 GiB). [`PageTable::promote`] and [`PageTable::demote`] convert
//! between 4 KiB and 2 MiB mappings, as the transparent-huge-page storm
//! microbenchmark (paper §V) does continuously.

use crate::phys::PhysMemory;
use nocstar_types::{PageSize, PhysAddr, PhysPageNum, VirtAddr, VirtPageNum};
use std::collections::BTreeMap;

const FANOUT_BITS: u32 = 9;
const FANOUT_MASK: u64 = (1 << FANOUT_BITS) - 1;
const PTE_BYTES: u64 = 8;
/// Levels of the radix tree (PML4, PDPT, PD, PT).
pub const LEVELS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Pointer to a lower-level table node.
    Table(usize),
    /// Terminal mapping to a physical frame (page size implied by depth).
    Leaf(PhysPageNum),
}

#[derive(Debug, Clone)]
struct Node {
    frame: PhysPageNum,
    entries: BTreeMap<u16, Slot>,
}

/// The outcome of walking one virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Physical addresses of the PTEs read, in walk order. Populated even
    /// for failed walks (the walker reads until it finds a hole).
    pub pte_addrs: Vec<PhysAddr>,
    /// The translation found, if the address is mapped.
    pub mapping: Option<(VirtPageNum, PhysPageNum)>,
}

/// One address space's page table.
///
/// # Examples
///
/// ```
/// use nocstar_mem::page_table::PageTable;
/// use nocstar_mem::phys::PhysMemory;
/// use nocstar_types::{PageSize, VirtAddr};
///
/// let mut phys = PhysMemory::new(1 << 30);
/// let mut pt = PageTable::new(&mut phys);
/// let vpn = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
/// pt.map(vpn, &mut phys);
/// let walk = pt.walk(VirtAddr::new(0x20_1234));
/// assert_eq!(walk.pte_addrs.len(), 3); // superpage leaf at the PD level
/// assert_eq!(walk.mapping.unwrap().0, vpn);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    root: usize,
    mapped_pages: u64,
}

impl PageTable {
    /// Creates an empty table, allocating its root node.
    pub fn new(phys: &mut PhysMemory) -> Self {
        let root_frame = phys.alloc(PageSize::Size4K);
        Self {
            nodes: vec![Node {
                frame: root_frame,
                entries: BTreeMap::new(),
            }],
            root: 0,
            mapped_pages: 0,
        }
    }

    /// The radix index at each level for a virtual address.
    fn indices(va: VirtAddr) -> [u16; LEVELS] {
        let mut idx = [0u16; LEVELS];
        for (level, slot) in idx.iter_mut().enumerate() {
            let shift = 12 + FANOUT_BITS * (LEVELS - 1 - level) as u32;
            *slot = ((va.value() >> shift) & FANOUT_MASK) as u16;
        }
        idx
    }

    /// The depth (0-based level index) at which a leaf of `size` lives.
    fn leaf_depth(size: PageSize) -> usize {
        size.walk_levels() - 1
    }

    fn pte_addr(&self, node: usize, index: u16) -> PhysAddr {
        self.nodes[node]
            .frame
            .base()
            .offset(u64::from(index) * PTE_BYTES)
    }

    /// Walks `va`, recording the PTE reads a hardware walker would issue.
    pub fn walk(&self, va: VirtAddr) -> WalkOutcome {
        let idx = Self::indices(va);
        let mut pte_addrs = Vec::with_capacity(LEVELS);
        let mut node = self.root;
        for (depth, &i) in idx.iter().enumerate() {
            pte_addrs.push(self.pte_addr(node, i));
            match self.nodes[node].entries.get(&i) {
                Some(Slot::Table(child)) => node = *child,
                Some(Slot::Leaf(ppn)) => {
                    let size = match depth {
                        1 => PageSize::Size1G,
                        2 => PageSize::Size2M,
                        3 => PageSize::Size4K,
                        _ => unreachable!("no leaves at the PML4 level"),
                    };
                    return WalkOutcome {
                        pte_addrs,
                        mapping: Some((va.page_number(size), *ppn)),
                    };
                }
                None => {
                    return WalkOutcome {
                        pte_addrs,
                        mapping: None,
                    }
                }
            }
        }
        unreachable!("PT-level entries are always leaves")
    }

    /// Maps `vpn` to a freshly allocated frame, creating intermediate
    /// nodes as needed. Returns the frame (the existing one if `vpn` was
    /// already mapped at the same size).
    ///
    /// # Panics
    ///
    /// Panics if the region is already mapped at a *different* page size —
    /// overlapping mixed-size mappings are an OS bug the simulator refuses
    /// to model.
    pub fn map(&mut self, vpn: VirtPageNum, phys: &mut PhysMemory) -> PhysPageNum {
        let size = vpn.page_size();
        let depth = Self::leaf_depth(size);
        let idx = Self::indices(vpn.base());
        let mut node = self.root;
        for &i in idx.iter().take(depth) {
            node = match self.nodes[node].entries.get(&i) {
                Some(Slot::Table(child)) => *child,
                Some(Slot::Leaf(_)) => {
                    panic!("mapping {vpn} conflicts with an existing superpage leaf")
                }
                None => {
                    let frame = phys.alloc(PageSize::Size4K);
                    let child = self.nodes.len();
                    self.nodes.push(Node {
                        frame,
                        entries: BTreeMap::new(),
                    });
                    self.nodes[node].entries.insert(i, Slot::Table(child));
                    child
                }
            };
        }
        match self.nodes[node].entries.get(&idx[depth]) {
            Some(Slot::Leaf(existing)) => *existing,
            Some(Slot::Table(_)) => {
                panic!("mapping {vpn} conflicts with finer-grained existing mappings")
            }
            None => {
                let frame = phys.alloc(size);
                self.nodes[node]
                    .entries
                    .insert(idx[depth], Slot::Leaf(frame));
                self.mapped_pages += 1;
                frame
            }
        }
    }

    /// Points an existing mapping at a fresh frame (an OS page migration /
    /// copy-on-write-style remap). Returns the new frame, or `None` if the
    /// page was not mapped.
    pub fn remap(&mut self, vpn: VirtPageNum, phys: &mut PhysMemory) -> Option<PhysPageNum> {
        let (node, index) = self.leaf_slot(vpn)?;
        let frame = phys.alloc(vpn.page_size());
        self.nodes[node].entries.insert(index, Slot::Leaf(frame));
        Some(frame)
    }

    /// Removes a mapping; returns whether it existed.
    pub fn unmap(&mut self, vpn: VirtPageNum) -> bool {
        match self.leaf_slot(vpn) {
            Some((node, index)) => {
                self.nodes[node].entries.remove(&index);
                self.mapped_pages -= 1;
                true
            }
            None => false,
        }
    }

    fn leaf_slot(&self, vpn: VirtPageNum) -> Option<(usize, u16)> {
        let depth = Self::leaf_depth(vpn.page_size());
        let idx = Self::indices(vpn.base());
        let mut node = self.root;
        for &i in idx.iter().take(depth) {
            match self.nodes[node].entries.get(&i) {
                Some(Slot::Table(child)) => node = *child,
                _ => return None,
            }
        }
        match self.nodes[node].entries.get(&idx[depth]) {
            Some(Slot::Leaf(_)) => Some((node, idx[depth])),
            _ => None,
        }
    }

    /// Promotes the 512 4 KiB pages under `vpn_2m` into one 2 MiB mapping,
    /// allocating a fresh superpage frame. Returns the 4 KiB pages whose
    /// translations became stale (the OS must shoot these down), or `None`
    /// if no PT node existed there.
    pub fn promote(
        &mut self,
        vpn_2m: VirtPageNum,
        phys: &mut PhysMemory,
    ) -> Option<Vec<VirtPageNum>> {
        assert_eq!(
            vpn_2m.page_size(),
            PageSize::Size2M,
            "promote takes a 2M page"
        );
        let idx = Self::indices(vpn_2m.base());
        let mut node = self.root;
        for &i in idx.iter().take(2) {
            match self.nodes[node].entries.get(&i) {
                Some(Slot::Table(child)) => node = *child,
                _ => return None,
            }
        }
        let pd_index = idx[2];
        let pt_node = match self.nodes[node].entries.get(&pd_index) {
            Some(Slot::Table(pt)) => *pt,
            _ => return None,
        };
        let base_4k = vpn_2m.to_base_pages();
        let stale: Vec<VirtPageNum> = self.nodes[pt_node]
            .entries
            .keys()
            .map(|&i| VirtPageNum::new(base_4k + u64::from(i), PageSize::Size4K))
            .collect();
        self.mapped_pages -= stale.len() as u64;
        let frame = phys.alloc(PageSize::Size2M);
        self.nodes[node].entries.insert(pd_index, Slot::Leaf(frame));
        self.mapped_pages += 1;
        // The PT node's frame leaks in simulated memory, exactly like an OS
        // that defers freeing page-table pages; the simulator never reuses it.
        Some(stale)
    }

    /// Demotes a 2 MiB mapping back into 512 4 KiB mappings with fresh
    /// frames. Returns the stale 2 MiB page to shoot down, or `None` if
    /// `vpn_2m` was not a 2 MiB leaf.
    pub fn demote(&mut self, vpn_2m: VirtPageNum, phys: &mut PhysMemory) -> Option<VirtPageNum> {
        assert_eq!(
            vpn_2m.page_size(),
            PageSize::Size2M,
            "demote takes a 2M page"
        );
        let (node, index) = self.leaf_slot(vpn_2m)?;
        let pt_frame = phys.alloc(PageSize::Size4K);
        let pt_node = self.nodes.len();
        let base_frame = phys.alloc(PageSize::Size2M); // 512 contiguous 4K frames
        let entries: BTreeMap<u16, Slot> = (0..512u16)
            .map(|i| {
                (
                    i,
                    Slot::Leaf(PhysPageNum::new(
                        base_frame.to_base_pages() + u64::from(i),
                        PageSize::Size4K,
                    )),
                )
            })
            .collect();
        self.nodes.push(Node {
            frame: pt_frame,
            entries,
        });
        self.nodes[node].entries.insert(index, Slot::Table(pt_node));
        self.mapped_pages += 511; // -1 superpage, +512 base pages
        Some(vpn_2m)
    }

    /// Number of leaf mappings currently present.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of table nodes (root + interior + PT nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (PhysMemory, PageTable) {
        let mut phys = PhysMemory::new(8 << 30);
        let pt = PageTable::new(&mut phys);
        (phys, pt)
    }

    #[test]
    fn walk_of_unmapped_address_fails_at_the_root() {
        let (_, pt) = setup();
        let walk = pt.walk(VirtAddr::new(0x1234));
        assert!(walk.mapping.is_none());
        assert_eq!(walk.pte_addrs.len(), 1); // read the PML4 entry, found hole
    }

    #[test]
    fn mapping_a_4k_page_yields_a_four_level_walk() {
        let (mut phys, mut pt) = setup();
        let vpn = VirtAddr::new(0x7654_3210).page_number(PageSize::Size4K);
        let frame = pt.map(vpn, &mut phys);
        let walk = pt.walk(VirtAddr::new(0x7654_3213));
        assert_eq!(walk.pte_addrs.len(), 4);
        assert_eq!(walk.mapping, Some((vpn, frame)));
        // Four nodes: PML4 + PDPT + PD + PT.
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn superpage_walks_stop_early() {
        let (mut phys, mut pt) = setup();
        let v2m = VirtAddr::new(0x4000_0000).page_number(PageSize::Size2M);
        pt.map(v2m, &mut phys);
        assert_eq!(pt.walk(VirtAddr::new(0x4000_1000)).pte_addrs.len(), 3);

        let v1g = VirtAddr::new(0x1_0000_0000).page_number(PageSize::Size1G);
        pt.map(v1g, &mut phys);
        assert_eq!(pt.walk(VirtAddr::new(0x1_2345_6789)).pte_addrs.len(), 2);
    }

    #[test]
    fn mapping_is_idempotent() {
        let (mut phys, mut pt) = setup();
        let vpn = VirtAddr::new(0x1000).page_number(PageSize::Size4K);
        let a = pt.map(vpn, &mut phys);
        let b = pt.map(vpn, &mut phys);
        assert_eq!(a, b);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn adjacent_pages_share_interior_nodes() {
        let (mut phys, mut pt) = setup();
        pt.map(
            VirtAddr::new(0x1000).page_number(PageSize::Size4K),
            &mut phys,
        );
        pt.map(
            VirtAddr::new(0x2000).page_number(PageSize::Size4K),
            &mut phys,
        );
        assert_eq!(pt.node_count(), 4); // same PML4/PDPT/PD/PT path
                                        // Their PTEs sit in the same PT frame, 8 bytes apart.
        let w1 = pt.walk(VirtAddr::new(0x1000));
        let w2 = pt.walk(VirtAddr::new(0x2000));
        assert_eq!(w2.pte_addrs[3].value() - w1.pte_addrs[3].value(), PTE_BYTES);
    }

    #[test]
    fn remap_changes_the_frame() {
        let (mut phys, mut pt) = setup();
        let vpn = VirtAddr::new(0x5000).page_number(PageSize::Size4K);
        let old = pt.map(vpn, &mut phys);
        let new = pt.remap(vpn, &mut phys).unwrap();
        assert_ne!(old, new);
        assert_eq!(pt.walk(VirtAddr::new(0x5000)).mapping.unwrap().1, new);
        assert!(pt
            .remap(
                VirtAddr::new(0x9000).page_number(PageSize::Size4K),
                &mut phys
            )
            .is_none());
    }

    #[test]
    fn unmap_removes_the_leaf() {
        let (mut phys, mut pt) = setup();
        let vpn = VirtAddr::new(0x5000).page_number(PageSize::Size4K);
        pt.map(vpn, &mut phys);
        assert!(pt.unmap(vpn));
        assert!(!pt.unmap(vpn));
        assert!(pt.walk(VirtAddr::new(0x5000)).mapping.is_none());
    }

    #[test]
    fn promote_collapses_4k_pages_into_a_superpage() {
        let (mut phys, mut pt) = setup();
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        // Map 512 base pages underneath it.
        for i in 0..512u64 {
            pt.map(
                VirtPageNum::new(v2m.to_base_pages() + i, PageSize::Size4K),
                &mut phys,
            );
        }
        let stale = pt.promote(v2m, &mut phys).unwrap();
        assert_eq!(stale.len(), 512);
        assert_eq!(pt.mapped_pages(), 1);
        let walk = pt.walk(VirtAddr::new(0x20_0000));
        assert_eq!(walk.mapping.unwrap().0, v2m);
        assert_eq!(walk.pte_addrs.len(), 3);
    }

    #[test]
    fn demote_splits_a_superpage() {
        let (mut phys, mut pt) = setup();
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        pt.map(v2m, &mut phys);
        let stale = pt.demote(v2m, &mut phys).unwrap();
        assert_eq!(stale, v2m);
        assert_eq!(pt.mapped_pages(), 512);
        let walk = pt.walk(VirtAddr::new(0x20_3000));
        assert_eq!(walk.pte_addrs.len(), 4);
        assert_eq!(walk.mapping.unwrap().0.page_size(), PageSize::Size4K);
    }

    #[test]
    fn promote_then_demote_round_trips_structure() {
        let (mut phys, mut pt) = setup();
        let v2m = VirtAddr::new(0x20_0000).page_number(PageSize::Size2M);
        for i in 0..512u64 {
            pt.map(
                VirtPageNum::new(v2m.to_base_pages() + i, PageSize::Size4K),
                &mut phys,
            );
        }
        pt.promote(v2m, &mut phys).unwrap();
        pt.demote(v2m, &mut phys).unwrap();
        assert_eq!(pt.mapped_pages(), 512);
        assert!(pt.walk(VirtAddr::new(0x20_0000)).mapping.is_some());
    }

    #[test]
    #[should_panic(expected = "conflicts")]
    fn mixed_size_overlap_panics() {
        let (mut phys, mut pt) = setup();
        pt.map(
            VirtAddr::new(0x20_0000).page_number(PageSize::Size2M),
            &mut phys,
        );
        pt.map(
            VirtAddr::new(0x20_0000).page_number(PageSize::Size4K),
            &mut phys,
        );
    }

    proptest! {
        /// Every mapped page walks back to the frame map() returned, and
        /// PTE addresses are frame-aligned reads within table nodes.
        #[test]
        fn prop_map_walk_round_trip(pages in prop::collection::vec(0u64..1_000_000, 1..100)) {
            let mut phys = PhysMemory::new(32 << 30);
            let mut pt = PageTable::new(&mut phys);
            let mut expect = std::collections::HashMap::new();
            for &p in &pages {
                let vpn = VirtPageNum::new(p, PageSize::Size4K);
                let frame = pt.map(vpn, &mut phys);
                expect.insert(p, frame);
            }
            for (&p, &frame) in &expect {
                let walk = pt.walk(VirtAddr::new(p << 12));
                let (vpn, got) = walk.mapping.expect("mapped page must walk");
                prop_assert_eq!(got, frame);
                prop_assert_eq!(vpn.number(), p);
                prop_assert_eq!(walk.pte_addrs.len(), 4);
                for pa in &walk.pte_addrs {
                    prop_assert_eq!(pa.value() % PTE_BYTES, 0);
                }
            }
            prop_assert_eq!(pt.mapped_pages(), expect.len() as u64);
        }
    }
}
