//! The per-core paging-structure cache (PWC).
//!
//! x86 walkers cache upper-level page-table entries (PML4E/PDPTE/PDE) in
//! small dedicated structures, so a typical walk reads only the leaf PTE
//! from the memory hierarchy. Without this, every walk would pay four
//! dependent cache misses and walk latencies would be far above the
//! 20–40 cycles the paper measures on real systems (§V, Table III).
//!
//! Modelled as a small fully-associative LRU cache over upper-level PTE
//! physical addresses; a hit costs one cycle instead of a memory access.

use nocstar_stats::counter::HitMiss;
use nocstar_types::PhysAddr;

/// Default PWC capacity (upper-level PTEs), in line with the few dozen
/// paging-structure entries documented for recent x86 cores.
pub const DEFAULT_PWC_ENTRIES: usize = 32;

/// A per-core paging-structure cache.
///
/// # Examples
///
/// ```
/// use nocstar_mem::pwc::PteCache;
/// use nocstar_types::PhysAddr;
///
/// let mut pwc = PteCache::new(4);
/// let pte = PhysAddr::new(0x1000);
/// assert!(!pwc.access(pte)); // cold
/// assert!(pwc.access(pte));  // cached
/// ```
#[derive(Debug, Clone)]
pub struct PteCache {
    keys: Vec<u64>,
    stamps: Vec<u64>,
    capacity: usize,
    clock: u64,
    stats: HitMiss,
}

impl PteCache {
    /// Builds a PWC holding `capacity` upper-level entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        Self {
            keys: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            stats: HitMiss::new(),
        }
    }

    /// Looks up the PTE at `pa`, filling on miss; returns whether it hit.
    pub fn access(&mut self, pa: PhysAddr) -> bool {
        let hit = self.lookup_fill(pa);
        if hit {
            self.stats.hit();
        } else {
            self.stats.miss();
        }
        hit
    }

    /// [`access`](Self::access) without statistics: fills, evicts and
    /// updates recency identically but records no hit or miss — the
    /// functional-warming entry point for sampled fast-forward replay
    /// (`SAMPLING.md §2`).
    pub fn touch(&mut self, pa: PhysAddr) -> bool {
        self.lookup_fill(pa)
    }

    fn lookup_fill(&mut self, pa: PhysAddr) -> bool {
        let key = pa.value() / 8;
        self.clock += 1;
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            self.stamps[i] = self.clock;
            return true;
        }
        if self.keys.len() < self.capacity {
            self.keys.push(key);
            self.stamps.push(self.clock);
        } else {
            // `keys` is at capacity (> 0) on this branch; index 0 is the
            // degenerate fallback the min can never actually take.
            let victim = (0..self.keys.len())
                .min_by_key(|&i| self.stamps[i])
                .unwrap_or(0);
            self.keys[victim] = key;
            self.stamps[victim] = self.clock;
        }
        false
    }

    /// Drops everything (context switch on a PCID-less OS).
    pub fn flush(&mut self) {
        self.keys.clear();
        self.stamps.clear();
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let mut pwc = PteCache::new(2);
        let a = PhysAddr::new(0x8);
        let b = PhysAddr::new(0x10);
        let c = PhysAddr::new(0x18);
        pwc.access(a);
        pwc.access(b);
        pwc.access(a); // b is now LRU
        pwc.access(c); // evicts b
        assert!(pwc.access(a));
        assert!(!pwc.access(b));
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut pwc = PteCache::new(4);
        pwc.access(PhysAddr::new(0x8));
        pwc.flush();
        assert!(!pwc.access(PhysAddr::new(0x8)));
    }

    #[test]
    fn distinct_ptes_in_one_line_are_distinct_entries() {
        // The PWC caches entries, not 64-byte lines.
        let mut pwc = PteCache::new(4);
        pwc.access(PhysAddr::new(0x0));
        assert!(!pwc.access(PhysAddr::new(0x8)));
    }

    #[test]
    fn touch_fills_without_statistics() {
        let mut pwc = PteCache::new(4);
        let pte = PhysAddr::new(0x8);
        assert!(!pwc.touch(pte));
        assert!(pwc.touch(pte));
        assert_eq!(pwc.stats().hits() + pwc.stats().misses(), 0);
        // The touched entry is genuinely resident for later timed walks.
        assert!(pwc.access(pte));
        assert_eq!(pwc.stats().hits(), 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut pwc = PteCache::new(4);
        pwc.access(PhysAddr::new(0x8));
        pwc.access(PhysAddr::new(0x8));
        assert_eq!(pwc.stats().hits(), 1);
        assert_eq!(pwc.stats().misses(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = PteCache::new(0);
    }
}
