//! Sample-spec parsing for sampled fast-forward replay.
//!
//! A [`SampleSpec`] describes where cycle-accurate measurement windows
//! fall along a trace: `<period>:<window>:<warmup>[@<seed>]`, all in
//! completed memory accesses per hardware thread. The normative state
//! machine, placement rule, and estimation methodology live in
//! `SAMPLING.md` at the repository root; this module only carries the
//! spec value type so workload drivers and the simulator core agree on
//! the grammar.

use std::fmt;
use std::str::FromStr;

/// Placement of sampled measurement windows along a trace
/// (`SAMPLING.md §1`).
///
/// # Examples
///
/// ```
/// use nocstar_workloads::sample::SampleSpec;
///
/// let spec: SampleSpec = "1000:60:30@7".parse().unwrap();
/// assert_eq!(spec.period(), 1000);
/// assert_eq!(spec.window(), 60);
/// assert_eq!(spec.warmup(), 30);
/// assert_eq!(spec.seed(), 7);
/// assert_eq!(spec.slack(), 910);
/// assert_eq!(spec.to_string(), "1000:60:30@7");
/// // Same seed, same offset — placement never uses entropy.
/// assert_eq!(spec.offset(), "1000:60:30@7".parse::<SampleSpec>().unwrap().offset());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    period: u64,
    window: u64,
    warmup: u64,
    seed: u64,
}

/// Why a sample spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleSpecError {
    /// Not of the form `<period>:<window>:<warmup>[@<seed>]`.
    Shape(String),
    /// A field was present but not a non-negative integer.
    Number(String),
    /// Fields parsed but violate a constraint (window ≥ 1, warmup ≥ 1,
    /// period ≥ window + warmup).
    Constraint(String),
}

impl fmt::Display for SampleSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(s) => {
                write!(
                    f,
                    "bad sample spec {s:?}: expected <period>:<window>:<warmup>[@<seed>]"
                )
            }
            Self::Number(s) => write!(f, "bad sample spec field {s:?}: expected an integer"),
            Self::Constraint(why) => write!(f, "bad sample spec: {why}"),
        }
    }
}

impl std::error::Error for SampleSpecError {}

/// The splitmix64 finalizer: the repo-standard deterministic mixer
/// (no RNG state, no wall clock).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SampleSpec {
    /// Builds a spec from raw fields, enforcing the `SAMPLING.md §1`
    /// constraints.
    pub fn new(period: u64, window: u64, warmup: u64, seed: u64) -> Result<Self, SampleSpecError> {
        if window == 0 {
            return Err(SampleSpecError::Constraint("window must be >= 1".into()));
        }
        if warmup == 0 {
            return Err(SampleSpecError::Constraint(
                "warmup must be >= 1 (the warmup-boundary statistics reset must fire)".into(),
            ));
        }
        if period < window + warmup {
            return Err(SampleSpecError::Constraint(format!(
                "period {period} < window {window} + warmup {warmup}"
            )));
        }
        Ok(Self {
            period,
            window,
            warmup,
            seed,
        })
    }

    /// Accesses per thread from one window start to the next.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Measured accesses per thread per window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Detailed-warmup accesses per thread preceding every window.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// The placement seed (moves only the offset).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fast-forward quota of every leg after the first:
    /// `period − window − warmup`.
    pub fn slack(&self) -> u64 {
        self.period - self.window - self.warmup
    }

    /// Fast-forward quota of the first leg:
    /// `splitmix64(seed) mod (slack + 1)`.
    pub fn offset(&self) -> u64 {
        splitmix64(self.seed) % (self.slack() + 1)
    }

    /// How many complete windows fit in a span of `total` accesses per
    /// thread (`SAMPLING.md §1`): legs repeat while a full
    /// fast-forward + warmup + window still fits.
    pub fn windows(&self, total: u64) -> u64 {
        let first = self.offset() + self.warmup + self.window;
        if total < first {
            0
        } else {
            1 + (total - first) / self.period
        }
    }

    /// Total accesses per thread that enter the cycle-accurate core
    /// (warmup + window per leg) for a span of `total`.
    pub fn detailed_accesses(&self, total: u64) -> u64 {
        self.windows(total) * (self.warmup + self.window)
    }
}

impl FromStr for SampleSpec {
    type Err = SampleSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (body, seed) = match s.split_once('@') {
            Some((body, seed)) => {
                let seed = seed
                    .parse::<u64>()
                    .map_err(|_| SampleSpecError::Number(seed.to_string()))?;
                (body, seed)
            }
            None => (s, 0),
        };
        let mut parts = body.split(':');
        let mut field = |name: &str| -> Result<u64, SampleSpecError> {
            let raw = parts
                .next()
                .ok_or_else(|| SampleSpecError::Shape(s.to_string()))?;
            raw.parse::<u64>()
                .map_err(|_| SampleSpecError::Number(format!("{name}={raw}")))
        };
        let period = field("period")?;
        let window = field("window")?;
        let warmup = field("warmup")?;
        if parts.next().is_some() {
            return Err(SampleSpecError::Shape(s.to_string()));
        }
        Self::new(period, window, warmup, seed)
    }
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}@{}",
            self.period, self.window, self.warmup, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let spec: SampleSpec = "1000:60:30@7".parse().unwrap();
        assert_eq!(spec, SampleSpec::new(1000, 60, 30, 7).unwrap());
        assert_eq!(spec.slack(), 910);
        assert!(spec.offset() <= spec.slack());
    }

    #[test]
    fn seed_defaults_to_zero() {
        let spec: SampleSpec = "500:40:20".parse().unwrap();
        assert_eq!(spec.seed(), 0);
        assert_eq!(spec.to_string(), "500:40:20@0");
    }

    #[test]
    fn rejects_malformed_shapes() {
        for bad in [
            "",
            "1000",
            "1000:60",
            "1000:60:30:5",
            "a:b:c",
            "1000:60:30@x",
        ] {
            assert!(
                bad.parse::<SampleSpec>().is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn rejects_constraint_violations() {
        assert!(
            SampleSpec::new(80, 60, 30, 0).is_err(),
            "period < window + warmup"
        );
        assert!(SampleSpec::new(100, 0, 30, 0).is_err(), "zero window");
        assert!(SampleSpec::new(100, 60, 0, 0).is_err(), "zero warmup");
        assert!(
            SampleSpec::new(90, 60, 30, 0).is_ok(),
            "zero slack is legal"
        );
    }

    #[test]
    fn window_count_matches_the_spec_formula() {
        let spec = SampleSpec::new(1000, 60, 30, 0).unwrap();
        let off = spec.offset();
        assert_eq!(spec.windows(off + 89), 0, "not even one full leg");
        assert_eq!(spec.windows(off + 90), 1);
        assert_eq!(spec.windows(off + 90 + 999), 1);
        assert_eq!(spec.windows(off + 90 + 1000), 2);
        assert_eq!(spec.windows(off + 90 + 9 * 1000), 10);
    }

    #[test]
    fn offset_is_deterministic_and_seed_sensitive() {
        let a = SampleSpec::new(1000, 60, 30, 1).unwrap();
        let b = SampleSpec::new(1000, 60, 30, 1).unwrap();
        assert_eq!(a.offset(), b.offset());
        // At least one of a handful of seeds must move the offset.
        let base = SampleSpec::new(1000, 60, 30, 0).unwrap().offset();
        assert!(
            (1..8).any(|s| SampleSpec::new(1000, 60, 30, s).unwrap().offset() != base),
            "offset should depend on the seed"
        );
    }

    #[test]
    fn zero_slack_forces_offset_zero() {
        for seed in 0..16 {
            let spec = SampleSpec::new(90, 60, 30, seed).unwrap();
            assert_eq!(spec.offset(), 0);
        }
    }

    #[test]
    fn detailed_accesses_counts_warmup_and_window() {
        let spec = SampleSpec::new(1000, 60, 30, 0).unwrap();
        let total = spec.offset() + 90 + 4 * 1000;
        assert_eq!(spec.windows(total), 5);
        assert_eq!(spec.detailed_accesses(total), 5 * 90);
    }

    #[test]
    fn display_round_trips() {
        for s in ["1000:60:30@7", "90:60:30@0", "500:40:20@0"] {
            let spec: SampleSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            let again: SampleSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
    }
}
