//! A bounded Zipf sampler.
//!
//! Samples `k` in `[0, n)` with probability proportional to `(k+1)^-s`,
//! using the rejection-inversion method of Hörmann & Derflinger, which is
//! O(1) per sample for any `n` — important because power-law workloads
//! (graph500) draw from footprints of hundreds of thousands of pages.

use rand::Rng;

/// A Zipf distribution over `{0, 1, …, n-1}` with exponent `s > 0`,
/// rank 0 being the most popular.
///
/// # Examples
///
/// ```
/// use nocstar_workloads::zipf::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut low_ranks = 0;
/// for _ in 0..1000 {
///     if zipf.sample(&mut rng) < 10 {
///         low_ranks += 1;
///     }
/// }
/// // The top-10 ranks of zipf(1.0) carry ~39% of the mass.
/// assert!(low_ranks > 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed rejection-inversion constants (Apache Commons'
    // RejectionInversionZipfSampler formulation, over ranks 1..=n).
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut zipf = Self {
            n,
            s,
            h_integral_x1: 0.0,
            h_integral_n: 0.0,
            threshold: 0.0,
        };
        zipf.h_integral_x1 = zipf.h_integral(1.5) - 1.0;
        zipf.h_integral_n = zipf.h_integral(n as f64 + 0.5);
        zipf.threshold = 2.0 - zipf.h_integral_inverse(zipf.h_integral(2.5) - zipf.h(2.0));
        zipf
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Antiderivative of `h(x) = x^-s`.
    fn h_integral(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(-self.s)
    }

    fn h_integral_inverse(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            // Clamp to keep the base positive under floating-point error.
            let t = (x * (1.0 - self.s) + 1.0).max(f64::MIN_POSITIVE);
            t.powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_integral_n + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, s: f64, samples: usize, seed: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn mass_is_monotonically_decreasing_in_rank() {
        let counts = frequencies(16, 1.0, 200_000, 7);
        // Compare coarse groups (per-rank averages) to tolerate noise.
        let head = counts[..4].iter().sum::<u64>() as f64 / 4.0;
        let mid = counts[4..8].iter().sum::<u64>() as f64 / 4.0;
        let tail = counts[8..].iter().sum::<u64>() as f64 / 8.0;
        assert!(head > mid);
        assert!(mid > tail);
    }

    #[test]
    fn rank_zero_probability_matches_theory() {
        // For n=100, s=1.0: p(0) = 1/H(100) ~ 1/5.187 ~ 0.1928.
        let counts = frequencies(100, 1.0, 300_000, 3);
        let p0 = counts[0] as f64 / 300_000.0;
        assert!((p0 - 0.1928).abs() < 0.01, "p0 = {p0}");
    }

    #[test]
    fn non_unit_exponent_is_supported() {
        let counts = frequencies(1000, 0.7, 100_000, 9);
        assert!(counts[0] > counts[500]);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn single_item_always_samples_zero() {
        let zipf = Zipf::new(1, 1.3);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let zipf = Zipf::new(5000, 0.9);
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_exponent_rejected() {
        let _ = Zipf::new(10, 0.0);
    }

    proptest! {
        /// Samples are always in range for arbitrary (n, s).
        #[test]
        fn prop_samples_in_range(n in 1u64..100_000, s in 0.1f64..2.5, seed in any::<u64>()) {
            let zipf = Zipf::new(n, s);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(zipf.sample(&mut rng) < n);
            }
        }
    }
}
