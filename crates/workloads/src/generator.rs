//! [`SyntheticTrace`]: the interpreter for a [`WorkloadSpec`].

use crate::spec::{ColdDistribution, WorkloadSpec};
use crate::trace::{MemAccess, TraceEvent, TraceSource};
use crate::zipf::Zipf;
use nocstar_types::time::Cycles;
use nocstar_types::{Asid, PageSize, ThreadId, VirtAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base virtual address of the shared region's window (per address space).
const SHARED_BASE: u64 = 0x10_0000_0000;
/// Base virtual address of thread 0's private window; each thread gets a
/// 64 GiB window.
const PRIVATE_BASE: u64 = 0x100_0000_0000;
const PRIVATE_STRIDE: u64 = 0x10_0000_0000;
/// Span of the ASLR-style random page offset applied to each region's
/// base (up to 1 GiB). Without it, every thread's region starts at a
/// 64 GiB-aligned address, and identically-strided hot pages from all
/// threads alias into the *same* TLB sets chip-wide — a pathology real
/// systems avoid precisely because mmap randomizes placements.
const ASLR_PAGES: u64 = 0x40_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic synthetic trace for one hardware thread.
///
/// See [`WorkloadSpec::trace`] for construction.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    spec: WorkloadSpec,
    asid: Asid,
    thread: ThreadId,
    thp_enabled: bool,
    shared_base: u64,
    private_base: u64,
    rng: SmallRng,
    shared_hot: Option<Zipf>,
    private_hot: Option<Zipf>,
    shared_cold: Option<Zipf>,
    private_cold: Option<Zipf>,
    /// Sequential-scan cursor for [`ColdDistribution::Strided`] workloads.
    scan_pos: u64,
    backing_salt: u64,
}

impl SyntheticTrace {
    pub(crate) fn new(
        spec: WorkloadSpec,
        asid: Asid,
        thread: ThreadId,
        seed: u64,
        thp_enabled: bool,
    ) -> Self {
        let stream = splitmix64(seed)
            ^ splitmix64(0x5151 ^ u64::from(asid.value()) << 32)
            ^ splitmix64(thread.index() as u64).rotate_left(17);
        let make_cold = |pages: u64| -> Option<Zipf> {
            match spec.cold {
                ColdDistribution::Zipf(s) if pages > 0 => Some(Zipf::new(pages, s)),
                _ => None,
            }
        };
        let make_hot = |hot: u64| -> Option<Zipf> {
            (hot > 0).then(|| Zipf::new(hot, spec.hot_zipf_exponent))
        };
        let private_hot_pages = spec.hot_pages.min(spec.private_pages);
        // ASLR: randomize each region's base by a per-(seed, asid[, thread])
        // page offset. Shared offsets are per-address-space so all threads
        // of an application agree on shared addresses.
        let shared_base = SHARED_BASE
            + (splitmix64(seed ^ 0xa51d ^ (u64::from(asid.value()) << 8)) % ASLR_PAGES) * 4096;
        let private_base = PRIVATE_BASE
            + thread.index() as u64 * PRIVATE_STRIDE
            + (splitmix64(stream ^ 0x915e) % ASLR_PAGES) * 4096;
        Self {
            spec,
            asid,
            thread,
            thp_enabled,
            shared_base,
            private_base,
            rng: SmallRng::seed_from_u64(stream),
            shared_hot: make_hot(spec.hot_pages),
            private_hot: make_hot(private_hot_pages),
            shared_cold: make_cold(spec.shared_pages),
            private_cold: make_cold(spec.private_pages),
            scan_pos: splitmix64(stream ^ 0x5ca9) % spec.shared_pages.max(1),
            // Backing decisions are per-address-space, not per-thread, so
            // all threads agree on a page's size.
            backing_salt: splitmix64(seed ^ (u64::from(asid.value()) << 17)),
        }
    }

    /// The spec this trace interprets.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The hardware thread this trace belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// First byte of the shared region (after ASLR).
    pub fn shared_base(&self) -> VirtAddr {
        VirtAddr::new(self.shared_base)
    }

    /// First byte of this thread's private region (after ASLR).
    pub fn private_base(&self) -> VirtAddr {
        VirtAddr::new(self.private_base)
    }

    /// Picks a page index within a region: hot-set ranks are Zipf
    /// distributed and scattered across the region with a fixed stride
    /// (rank `r` lives at page `r * stride`), so superpage backing does
    /// not collapse the whole hot set onto a few 2 MiB translations;
    /// cold samples range over the entire region (rarely landing on a hot
    /// page, which is harmless).
    fn pick_page(&mut self, region_pages: u64, hot: Option<Zipf>, cold: Option<Zipf>) -> u64 {
        let go_hot = hot.is_some() && self.rng.gen::<f64>() < self.spec.hot_fraction;
        if go_hot {
            // nocstar-lint: allow(sim-unwrap): go_hot is only true when hot is Some
            let zipf = hot.expect("checked");
            let rank = zipf.sample(&mut self.rng);
            // Odd stride: hot pages must stay coprime with power-of-two
            // slice/bank striping, or they all land on a few home slices.
            let stride = ((region_pages / zipf.n()).max(1)) | 1;
            (rank * stride) % region_pages.max(1)
        } else {
            match (self.spec.cold, cold) {
                (_, Some(zipf)) => zipf.sample(&mut self.rng),
                (ColdDistribution::Strided(step), None) => {
                    self.scan_pos = (self.scan_pos + step) % region_pages.max(1);
                    self.scan_pos
                }
                (_, None) => self.rng.gen_range(0..region_pages),
            }
        }
    }

    fn pick_address(&mut self) -> VirtAddr {
        let shared = self.rng.gen::<f64>() < self.spec.shared_access_fraction
            || self.spec.private_pages == 0;
        let (base, page) = if shared {
            let page = self.pick_page(self.spec.shared_pages, self.shared_hot, self.shared_cold);
            (self.shared_base, page)
        } else {
            let page = self.pick_page(self.spec.private_pages, self.private_hot, self.private_cold);
            (self.private_base, page)
        };
        let offset = u64::from(self.rng.gen::<u16>()) & 0xff8; // 8-byte aligned
        VirtAddr::new(base + page * 4096 + offset)
    }
}

impl TraceSource for SyntheticTrace {
    fn next_event(&mut self) -> TraceEvent {
        if self.spec.remaps_per_million > 0.0
            && self.rng.gen::<f64>() < self.spec.remaps_per_million / 1.0e6
        {
            // Remap a random shared page; the stale translation's page size
            // is whatever backs that address.
            let page = self.rng.gen_range(0..self.spec.shared_pages);
            let va = VirtAddr::new(self.shared_base + page * 4096);
            return TraceEvent::Remap(va.page_number(self.backing(va)));
        }
        let va = self.pick_address();
        let gap_mean = self.spec.mem_op_gap.max(1);
        let gap = self
            .rng
            .gen_range(gap_mean.div_ceil(2)..=gap_mean + gap_mean / 2);
        TraceEvent::Access(MemAccess {
            va,
            is_write: self.rng.gen::<f64>() < self.spec.write_fraction,
            gap: Cycles::new(gap),
        })
    }

    fn backing(&self, va: VirtAddr) -> PageSize {
        if !self.thp_enabled {
            return PageSize::Size4K;
        }
        let frame_2m = va.value() >> 21;
        let h = splitmix64(frame_2m ^ self.backing_salt);
        if ((h % 10_000) as f64) < self.spec.superpage_fraction * 10_000.0 {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ColdDistribution;
    use std::collections::HashSet;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "gen-test",
            shared_pages: 10_000,
            private_pages: 1_000,
            shared_access_fraction: 0.8,
            hot_pages: 128,
            hot_fraction: 0.9,
            hot_zipf_exponent: 1.2,
            cold: ColdDistribution::Uniform,
            superpage_fraction: 0.6,
            mem_op_gap: 8,
            write_fraction: 0.3,
            remaps_per_million: 0.0,
        }
    }

    fn accesses(trace: &mut SyntheticTrace, n: usize) -> Vec<MemAccess> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if let TraceEvent::Access(a) = trace.next_event() {
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn traces_are_deterministic_per_seed_and_thread() {
        let s = spec();
        let mut a = s.trace(Asid::new(1), ThreadId::new(0), 7, true);
        let mut b = s.trace(Asid::new(1), ThreadId::new(0), 7, true);
        for _ in 0..200 {
            assert_eq!(a.next_event(), b.next_event());
        }
        let mut c = s.trace(Asid::new(1), ThreadId::new(1), 7, true);
        let same = (0..200)
            .filter(|_| a.next_event() == c.next_event())
            .count();
        assert!(same < 50, "different threads should diverge");
    }

    #[test]
    fn hot_set_dominates_accesses_and_is_scattered() {
        let s = spec();
        let mut t = s.trace(Asid::new(1), ThreadId::new(0), 1, false);
        let stride = (s.shared_pages / s.hot_pages) | 1; // 79
        let base = t.shared_base().value();
        let sample = accesses(&mut t, 5_000);
        let mut hot_pages_seen = std::collections::HashSet::new();
        let mut shared_hot = 0usize;
        for a in &sample {
            if a.va.value() >= base && a.va.value() < PRIVATE_BASE {
                let page = (a.va.value() - base) >> 12;
                if page.is_multiple_of(stride) && page / stride < s.hot_pages {
                    shared_hot += 1;
                    hot_pages_seen.insert(page);
                }
            }
        }
        // ~80% shared x ~90% hot = ~72% expected (cold samples can also
        // land on hot pages, nudging it up slightly).
        let frac = shared_hot as f64 / 5_000.0;
        assert!((0.62..0.84).contains(&frac), "hot fraction {frac}");
        // The hot set spans many distinct scattered pages, and those pages
        // cover many distinct 2 MiB frames (no superpage collapse).
        assert!(
            hot_pages_seen.len() > 32,
            "{} hot pages",
            hot_pages_seen.len()
        );
        let frames: std::collections::HashSet<u64> =
            hot_pages_seen.iter().map(|p| (p * 4096) >> 21).collect();
        assert!(frames.len() > 16, "{} hot 2MiB frames", frames.len());
    }

    #[test]
    fn private_addresses_are_disjoint_across_threads() {
        let s = spec();
        let mut pages0 = HashSet::new();
        let mut pages1 = HashSet::new();
        let mut t0 = s.trace(Asid::new(1), ThreadId::new(0), 3, false);
        let mut t1 = s.trace(Asid::new(1), ThreadId::new(1), 3, false);
        for a in accesses(&mut t0, 2_000) {
            if a.va.value() >= PRIVATE_BASE {
                pages0.insert(a.va.value() >> 12);
            }
        }
        for a in accesses(&mut t1, 2_000) {
            if a.va.value() >= PRIVATE_BASE {
                pages1.insert(a.va.value() >> 12);
            }
        }
        assert!(!pages0.is_empty() && !pages1.is_empty());
        assert!(pages0.is_disjoint(&pages1));
    }

    #[test]
    fn backing_is_stable_and_respects_thp_flag() {
        let s = spec();
        let t = s.trace(Asid::new(1), ThreadId::new(0), 5, true);
        let va = VirtAddr::new(SHARED_BASE + 123 * 4096);
        let first = t.backing(va);
        assert_eq!(t.backing(va), first);
        let no_thp = s.trace(Asid::new(1), ThreadId::new(0), 5, false);
        assert_eq!(no_thp.backing(va), PageSize::Size4K);
    }

    #[test]
    fn superpage_fraction_roughly_matches_spec() {
        let s = spec();
        let t = s.trace(Asid::new(1), ThreadId::new(0), 5, true);
        let total = 4_000u64;
        let mut big = 0u64;
        for r in 0..total {
            let va = VirtAddr::new(SHARED_BASE + r * (2 << 20));
            if t.backing(va) == PageSize::Size2M {
                big += 1;
            }
        }
        let frac = big as f64 / total as f64;
        assert!((frac - 0.6).abs() < 0.05, "superpage fraction {frac}");
    }

    #[test]
    fn threads_agree_on_backing() {
        let s = spec();
        let t0 = s.trace(Asid::new(1), ThreadId::new(0), 5, true);
        let t1 = s.trace(Asid::new(1), ThreadId::new(1), 5, true);
        for r in 0..500u64 {
            let va = VirtAddr::new(SHARED_BASE + r * (2 << 20) + 0x123);
            assert_eq!(t0.backing(va), t1.backing(va));
        }
    }

    #[test]
    fn strided_cold_scans_sequentially() {
        let mut s = spec();
        s.cold = ColdDistribution::Strided(1);
        s.hot_fraction = 0.0; // all accesses are cold
        s.shared_access_fraction = 1.0;
        s.private_pages = 0;
        let mut t = s.trace(Asid::new(1), ThreadId::new(0), 4, false);
        let base = t.shared_base().value();
        let pages: Vec<u64> = accesses(&mut t, 50)
            .iter()
            .map(|a| (a.va.value() - base) >> 12)
            .collect();
        // Consecutive accesses touch consecutive pages (mod region size).
        for w in pages.windows(2) {
            assert_eq!((w[0] + 1) % s.shared_pages, w[1]);
        }
    }

    #[test]
    fn remap_events_appear_at_the_configured_rate() {
        let mut s = spec();
        s.remaps_per_million = 50_000.0; // 5% for test speed
        let mut t = s.trace(Asid::new(1), ThreadId::new(0), 9, true);
        let mut remaps = 0;
        for _ in 0..10_000 {
            if matches!(t.next_event(), TraceEvent::Remap(_)) {
                remaps += 1;
            }
        }
        assert!((300..700).contains(&remaps), "remaps = {remaps}");
    }

    #[test]
    fn gaps_center_on_the_spec_mean() {
        let s = spec();
        let mut t = s.trace(Asid::new(1), ThreadId::new(0), 2, false);
        let sample = accesses(&mut t, 3_000);
        let mean: f64 =
            sample.iter().map(|a| a.gap.value() as f64).sum::<f64>() / sample.len() as f64;
        assert!((mean - 8.0).abs() < 1.0, "gap mean {mean}");
        assert!(sample.iter().all(|a| a.gap.value() >= 4));
    }
}
