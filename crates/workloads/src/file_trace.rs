//! Streaming replay of on-disk NCT trace files with bounded memory.
//!
//! [`FileTrace`] is the scalable counterpart of
//! [`RecordedTrace`](crate::recorded::RecordedTrace): instead of holding
//! every event in memory, it keeps one decoded block (at most
//! [`WRITER_BLOCK_EVENTS`](crate::nct::WRITER_BLOCK_EVENTS) events from
//! files this crate writes) plus per-block metadata, reading the rest
//! from the file as replay advances. Like `RecordedTrace`, replay wraps
//! back to the first event after the last, so a finite capture drives an
//! arbitrarily long simulation.
//!
//! The on-disk format is specified normatively in `TRACE_FORMAT.md`;
//! encoding primitives and the whole-file in-memory form live in
//! [`crate::nct`].

use crate::nct::{self, NctError, NctHeader};
use crate::trace::{TraceEvent, TraceSource};
use nocstar_types::{Asid, PageSize, VirtAddr};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Location and size of one validated block within the trace file.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// Absolute file offset of the block payload (past its header).
    payload_offset: u64,
    /// Payload byte length.
    payload_len: u32,
    /// Events encoded in the payload.
    events: u32,
}

/// One thread's stream of an NCT trace file, replayed as a
/// [`TraceSource`] with bounded memory.
///
/// [`open`](Self::open) fully validates the selected thread's section —
/// header, directory entry, frame table, every block's checksum and
/// event encoding — so replay itself cannot encounter malformed data.
/// Opening is `O(section bytes)` in time but `O(one block)` in memory.
///
/// # Examples
///
/// Capture 100 events from a live generator, round-trip them through an
/// on-disk NCT file, and replay them event-for-event:
///
/// ```
/// use nocstar_workloads::file_trace::FileTrace;
/// use nocstar_workloads::nct::NctFile;
/// use nocstar_workloads::preset::Preset;
/// use nocstar_workloads::recorded::RecordedTrace;
/// use nocstar_workloads::trace::TraceSource;
/// use nocstar_types::{Asid, ThreadId};
///
/// let spec = Preset::Redis.spec();
/// let mut live = spec.trace(Asid::new(1), ThreadId::new(0), 7, true);
/// let recorded = RecordedTrace::capture(&mut live, 100);
///
/// let path = std::env::temp_dir().join("nocstar_file_trace_doctest.nct");
/// NctFile::from_recorded(std::slice::from_ref(&recorded), "redis")
///     .unwrap()
///     .save(&path)
///     .unwrap();
///
/// let mut replay = FileTrace::open(&path, 0).unwrap();
/// assert_eq!(replay.asid(), Asid::new(1));
/// assert_eq!(replay.event_count(), 100);
/// for expected in recorded.events() {
///     assert_eq!(&replay.next_event(), expected);
/// }
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct FileTrace {
    path: PathBuf,
    file: File,
    asid: Asid,
    label: String,
    thread: u16,
    superpage_frames: BTreeSet<u64>,
    event_count: u64,
    blocks: Vec<BlockMeta>,
    /// Index into `blocks` of the currently decoded block.
    block_ix: usize,
    /// Decoded events of the current block.
    current: Vec<TraceEvent>,
    /// Next event to serve from `current`.
    cursor: usize,
}

impl FileTrace {
    /// Opens thread `thread` of the NCT file at `path`, validating that
    /// thread's entire section up front.
    ///
    /// # Errors
    ///
    /// Any structured [`NctError`]: I/O failure, bad magic, unsupported
    /// version, out-of-range thread index, truncated or corrupt section,
    /// or a block checksum mismatch.
    pub fn open(path: impl AsRef<Path>, thread: u16) -> Result<Self, NctError> {
        let path = path.as_ref().to_path_buf();
        let file =
            File::open(&path).map_err(|e| nct::io_err(&format!("open {}", path.display()), &e))?;
        let mut reader = BufReader::new(file);
        let header = NctHeader::read_from(&mut reader)?;
        if thread >= header.thread_count {
            return Err(NctError::BadThreadIndex {
                requested: thread,
                available: header.thread_count,
            });
        }

        // Directory entry for the requested thread.
        seek(&mut reader, header.dir_entry_offset(thread), &path)?;
        let mut entry = [0u8; nct::DIR_ENTRY_LEN];
        nct::read_exact(&mut reader, &mut entry, "thread directory entry")?;
        let mut word = [0u8; 8];
        word.copy_from_slice(&entry[0..8]);
        let section_offset = u64::from_le_bytes(word);
        word.copy_from_slice(&entry[8..16]);
        let section_len = u64::from_le_bytes(word);

        // Validate the whole section with a one-block buffer, recording
        // where each payload lives for replay-time seeks.
        seek(&mut reader, section_offset, &path)?;
        let mut section = SectionReader {
            inner: &mut reader,
            consumed: 0,
            limit: section_len,
        };
        // Frame table and event count are varint-packed; read them
        // through a small bounded prefix buffer.
        let prefix = section.read_prefix()?;
        let mut pos = 0usize;
        let superpage_frames = nct::decode_frame_table(&prefix, &mut pos, thread)?;
        let event_count = nct::read_uvarint(&prefix, &mut pos)?;
        section.rewind_to(pos)?;
        drop(prefix);
        if event_count == 0 {
            return Err(NctError::Corrupt(format!(
                "thread {thread} has zero events"
            )));
        }

        let mut blocks = Vec::new();
        let mut seen: u64 = 0;
        let mut payload = Vec::new();
        while seen < event_count {
            let block_ix = blocks.len();
            let meta = section.read_block(section_offset, &mut payload, thread, block_ix)?;
            if seen + u64::from(meta.events) > event_count {
                return Err(NctError::Corrupt(format!(
                    "thread {thread} blocks hold more events than the declared {event_count}"
                )));
            }
            // Decode (and discard) to prove the payload is well-formed
            // before the simulator ever depends on it.
            nct::decode_block(&payload, meta.events as usize)?;
            seen += u64::from(meta.events);
            blocks.push(meta);
        }
        if section.consumed != section.limit {
            return Err(NctError::Corrupt(format!(
                "thread {thread} section has {} trailing byte(s)",
                section.limit - section.consumed
            )));
        }

        let mut trace = Self {
            path,
            file: reader.into_inner(),
            asid: header.asid,
            label: header.label,
            thread,
            superpage_frames,
            event_count,
            blocks,
            block_ix: 0,
            current: Vec::new(),
            cursor: 0,
        };
        trace.load_block(0)?;
        Ok(trace)
    }

    /// The workload label stored in the file header.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The thread stream this trace replays.
    pub fn thread(&self) -> u16 {
        self.thread
    }

    /// Total events in this thread's stream (replay loops past the end).
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Reads and decodes block `ix` into `self.current`.
    fn load_block(&mut self, ix: usize) -> Result<(), NctError> {
        let meta = self.blocks[ix];
        self.file
            .seek(SeekFrom::Start(meta.payload_offset))
            .map_err(|e| nct::io_err("seek to block payload", &e))?;
        let mut payload = vec![0u8; meta.payload_len as usize];
        nct::read_exact(&mut self.file, &mut payload, "block payload")?;
        // The section was validated at open; a failure here means the
        // file changed underneath us, which load_block's callers treat
        // as fatal.
        self.current = nct::decode_block(&payload, meta.events as usize)?;
        self.block_ix = ix;
        self.cursor = 0;
        Ok(())
    }
}

impl TraceSource for FileTrace {
    /// The next event, wrapping to the first block after the last.
    ///
    /// # Panics
    ///
    /// Panics only if the underlying file is truncated or rewritten
    /// *between* [`open`](Self::open) and replay — every static defect is
    /// caught at open time with a structured [`NctError`]. A trace file
    /// must stay immutable while a simulation replays it.
    fn next_event(&mut self) -> TraceEvent {
        if self.cursor == self.current.len() {
            let next = (self.block_ix + 1) % self.blocks.len();
            if let Err(e) = self.load_block(next) {
                panic!(
                    "NCT trace {} (thread {}) changed during replay: {e}",
                    self.path.display(),
                    self.thread
                );
            }
        }
        let event = self.current[self.cursor];
        self.cursor += 1;
        event
    }

    fn backing(&self, va: VirtAddr) -> PageSize {
        if self.superpage_frames.contains(&(va.value() >> 21)) {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

/// Seeks a buffered reader to an absolute offset with NCT error mapping.
fn seek(reader: &mut BufReader<File>, to: u64, path: &Path) -> Result<(), NctError> {
    reader
        .seek(SeekFrom::Start(to))
        .map(|_| ())
        .map_err(|e| nct::io_err(&format!("seek in {}", path.display()), &e))
}

/// A bounded view over one thread section that tracks consumption
/// against the directory's declared length.
struct SectionReader<'a> {
    inner: &'a mut BufReader<File>,
    consumed: u64,
    limit: u64,
}

/// Upper bound on the frame-table + event-count prefix read speculatively
/// at open: enough for one million delta-coded superpage frames.
const PREFIX_CAP: u64 = 4 << 20;

impl SectionReader<'_> {
    /// Reads the section's varint-packed prefix (frame table and event
    /// count) into memory, up to `PREFIX_CAP` or the section end.
    fn read_prefix(&mut self) -> Result<Vec<u8>, NctError> {
        let want = self.limit.min(PREFIX_CAP);
        let mut buf = vec![0u8; want as usize];
        nct::read_exact(self.inner, &mut buf, "thread section prefix")?;
        Ok(buf)
    }

    /// Positions the reader just past the `pos`-byte prefix actually
    /// consumed by the frame-table decode.
    fn rewind_to(&mut self, pos: usize) -> Result<(), NctError> {
        let overshoot = self.limit.min(PREFIX_CAP) - pos as u64;
        self.inner
            .seek_relative(-(overshoot as i64))
            .map_err(|e| nct::io_err("rewind past section prefix", &e))?;
        self.consumed = pos as u64;
        Ok(())
    }

    /// Reads and checksums the next block, returning its metadata and
    /// leaving the payload in `payload`.
    fn read_block(
        &mut self,
        section_offset: u64,
        payload: &mut Vec<u8>,
        thread: u16,
        block: usize,
    ) -> Result<BlockMeta, NctError> {
        if self.consumed + nct::BLOCK_HEADER_LEN as u64 > self.limit {
            return Err(NctError::Truncated(format!(
                "thread {thread} block {block} header ends early"
            )));
        }
        let mut header = [0u8; nct::BLOCK_HEADER_LEN];
        nct::read_exact(self.inner, &mut header, "block header")?;
        self.consumed += nct::BLOCK_HEADER_LEN as u64;
        let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let events = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&header[8..16]);
        let checksum = u64::from_le_bytes(sum);
        if payload_len == 0 || events == 0 {
            return Err(NctError::Corrupt(format!(
                "thread {thread} block {block} declares an empty payload or zero events"
            )));
        }
        if self.consumed + u64::from(payload_len) > self.limit {
            return Err(NctError::Truncated(format!(
                "thread {thread} block {block} payload ends early"
            )));
        }
        let payload_offset = section_offset + self.consumed;
        payload.clear();
        payload.resize(payload_len as usize, 0);
        nct::read_exact(self.inner, payload, "block payload")?;
        self.consumed += u64::from(payload_len);
        if nct::fnv1a64(payload) != checksum {
            return Err(NctError::ChecksumMismatch { thread, block });
        }
        Ok(BlockMeta {
            payload_offset,
            payload_len,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nct::NctFile;
    use crate::preset::Preset;
    use crate::recorded::RecordedTrace;
    use nocstar_types::ThreadId;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nocstar_file_trace_{}_{name}", std::process::id()))
    }

    fn capture(preset: Preset, thread: usize, count: usize) -> RecordedTrace {
        let mut live = preset
            .spec()
            .trace(Asid::new(1), ThreadId::new(thread), 42, true);
        RecordedTrace::capture(&mut live, count)
    }

    #[test]
    fn replays_event_for_event_and_loops() {
        let recorded = capture(Preset::Redis, 0, 250);
        let path = scratch("loop.nct");
        NctFile::from_recorded(std::slice::from_ref(&recorded), "redis")
            .unwrap()
            .save(&path)
            .unwrap();
        let mut replay = FileTrace::open(&path, 0).unwrap();
        assert_eq!(replay.label(), "redis");
        assert_eq!(replay.event_count(), 250);
        // Two full passes: the second must repeat the first (wrap).
        for pass in 0..2 {
            for (i, expected) in recorded.events().iter().enumerate() {
                assert_eq!(&replay.next_event(), expected, "pass {pass}, event {i}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multi_block_streams_replay_in_order() {
        // More events than one writer block, so replay crosses block
        // boundaries and wraps from the last block to the first.
        let count = crate::nct::WRITER_BLOCK_EVENTS + 100;
        let recorded = capture(Preset::Gups, 0, count);
        let path = scratch("multiblock.nct");
        NctFile::from_recorded(std::slice::from_ref(&recorded), "gups")
            .unwrap()
            .save(&path)
            .unwrap();
        let mut replay = FileTrace::open(&path, 0).unwrap();
        for expected in recorded.events() {
            assert_eq!(&replay.next_event(), expected);
        }
        // Wrap: next event is the first again.
        assert_eq!(replay.next_event(), recorded.events()[0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn backing_matches_recorded_trace() {
        let recorded = capture(Preset::MongoDb, 1, 2_000);
        let path = scratch("backing.nct");
        NctFile::from_recorded(std::slice::from_ref(&recorded), "mongodb")
            .unwrap()
            .save(&path)
            .unwrap();
        let replay = FileTrace::open(&path, 0).unwrap();
        for event in recorded.events() {
            if let TraceEvent::Access(a) = event {
                assert_eq!(replay.backing(a.va), recorded.backing(a.va));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_thread_stream_is_independent() {
        let t0 = capture(Preset::Canneal, 0, 120);
        let t1 = capture(Preset::Canneal, 1, 120);
        let path = scratch("threads.nct");
        NctFile::from_recorded(&[t0.clone(), t1.clone()], "canneal")
            .unwrap()
            .save(&path)
            .unwrap();
        let mut r1 = FileTrace::open(&path, 1).unwrap();
        assert_eq!(r1.thread(), 1);
        for expected in t1.events() {
            assert_eq!(&r1.next_event(), expected);
        }
        assert!(matches!(
            FileTrace::open(&path, 2),
            Err(NctError::BadThreadIndex {
                requested: 2,
                available: 2
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_truncated_files() {
        assert!(matches!(
            FileTrace::open(scratch("does_not_exist.nct"), 0),
            Err(NctError::Io(_))
        ));
        let recorded = capture(Preset::Redis, 0, 50);
        let path = scratch("truncated.nct");
        let mut bytes = NctFile::from_recorded(std::slice::from_ref(&recorded), "redis")
            .unwrap()
            .to_bytes();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileTrace::open(&path, 0),
            Err(NctError::Truncated(_) | NctError::Io(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_payloads() {
        let recorded = capture(Preset::Redis, 0, 50);
        let path = scratch("corrupt.nct");
        let mut bytes = NctFile::from_recorded(std::slice::from_ref(&recorded), "redis")
            .unwrap()
            .to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileTrace::open(&path, 0),
            Err(NctError::ChecksumMismatch {
                thread: 0,
                block: 0
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
