//! Synthetic workload generation for the NOCSTAR simulator.
//!
//! The paper evaluates on PARSEC and CloudSuite applications scaled to 2 TB
//! footprints. Those traces are not available here, so this crate provides
//! seeded synthetic address-stream generators — one preset per paper
//! workload — whose knobs (footprint, hot-set size and weight, inter-thread
//! sharing, superpage backing, memory-op density) are calibrated so the
//! TLB-visible behaviour lands where the paper reports it: private-L2-TLB
//! miss rates of 5–18 % and shared-TLB miss elimination of 70–90 %
//! (see `EXPERIMENTS.md` for measured values).
//!
//! * [`trace`] — the event stream model ([`TraceEvent`], [`TraceSource`]).
//! * [`zipf`] — an O(1) bounded Zipf sampler (power-law workloads).
//! * [`spec`] — the tunable workload description ([`WorkloadSpec`]).
//! * [`generator`] — [`SyntheticTrace`], the spec interpreter.
//! * [`preset`] — the 11 paper workloads.
//! * [`recorded`] — in-memory trace capture/replay (and a JSON
//!   interchange format for externally produced traces).
//! * [`nct`] — the NCT compressed binary trace format (normative spec:
//!   `TRACE_FORMAT.md` at the repository root).
//! * [`file_trace`] — streaming NCT replay with bounded memory.
//! * [`microbench`] — the TLB-storm and slice-hammer stress tests (§V).
//! * [`multiprog`] — the 330 four-app multiprogrammed mixes (Fig 18).
//! * [`sample`] — the sampled-replay window-placement spec
//!   ([`SampleSpec`], normative spec: `SAMPLING.md`).
//!
//! # Examples
//!
//! ```
//! use nocstar_workloads::preset::Preset;
//! use nocstar_workloads::trace::{TraceEvent, TraceSource};
//! use nocstar_types::{Asid, ThreadId};
//!
//! let spec = Preset::Gups.spec();
//! let mut trace = spec.trace(Asid::new(1), ThreadId::new(0), 42, true);
//! match trace.next_event() {
//!     TraceEvent::Access(a) => assert!(a.gap.value() > 0),
//!     other => panic!("first event should be an access, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod file_trace;
pub mod generator;
pub mod microbench;
pub mod multiprog;
pub mod nct;
pub mod preset;
pub mod recorded;
pub mod sample;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use file_trace::FileTrace;
pub use generator::SyntheticTrace;
pub use nct::{NctError, NctFile};
pub use preset::Preset;
pub use sample::SampleSpec;
pub use spec::WorkloadSpec;
pub use trace::{MemAccess, TraceEvent, TraceSource};
