//! Multiprogrammed workload mixes (paper Fig 18).
//!
//! The paper builds every 4-combination of its 11 workloads — C(11,4) =
//! 330 mixes — and runs each on a 32-core system with 8 threads per
//! application, each application in its own address space.

use crate::preset::Preset;
use std::fmt;

/// One multiprogrammed mix: four distinct applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mix {
    /// The four applications, in preset order.
    pub apps: [Preset; 4],
}

impl Mix {
    /// Threads each application runs (8, so 4 apps fill 32 cores).
    pub const THREADS_PER_APP: usize = 8;
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}+{}+{}+{}",
            self.apps[0], self.apps[1], self.apps[2], self.apps[3]
        )
    }
}

/// All C(11,4) = 330 mixes, in lexicographic preset order.
///
/// # Examples
///
/// ```
/// use nocstar_workloads::multiprog::all_mixes;
/// assert_eq!(all_mixes().len(), 330);
/// ```
pub fn all_mixes() -> Vec<Mix> {
    let presets = Preset::ALL;
    let n = presets.len();
    let mut mixes = Vec::with_capacity(330);
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                for d in c + 1..n {
                    mixes.push(Mix {
                        apps: [presets[a], presets[b], presets[c], presets[d]],
                    });
                }
            }
        }
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_exactly_330_mixes() {
        assert_eq!(all_mixes().len(), 330);
    }

    #[test]
    fn mixes_are_distinct_and_apps_within_a_mix_are_distinct() {
        let mixes = all_mixes();
        let unique: HashSet<&Mix> = mixes.iter().collect();
        assert_eq!(unique.len(), 330);
        for mix in &mixes {
            let apps: HashSet<_> = mix.apps.iter().collect();
            assert_eq!(apps.len(), 4, "{mix}");
        }
    }

    #[test]
    fn four_apps_of_eight_threads_fill_a_32_core_chip() {
        assert_eq!(4 * Mix::THREADS_PER_APP, 32);
    }

    #[test]
    fn display_joins_names() {
        let mix = all_mixes()[0];
        assert_eq!(mix.to_string(), "graph500+canneal+xsbench+data caching");
    }
}
