//! Recording and replaying traces (in memory, JSON interchange).
//!
//! The synthetic generators are deterministic, but third-party users of
//! the simulator often want to (a) capture a trace once and re-run it
//! against many configurations without regenerating it, or (b) feed the
//! simulator a trace produced by an external tool (e.g. a Pin/DynamoRIO
//! memory trace converted to this format). [`RecordedTrace`] is that
//! bridge: a serializable event list plus the page-size backing decisions,
//! replayable as a [`TraceSource`].
//!
//! **Scaling past toy lengths:** this type holds every event in memory
//! and its JSON form costs ~60 bytes per event, so it is the
//! human-inspectable *interchange* format, not the replay format. For
//! real application traces use the NCT binary format instead — see
//! `TRACE_FORMAT.md` at the repository root for the normative spec,
//! [`crate::nct::NctFile`] for conversion (the `nocstar-trace convert`
//! CLI maps JSON ⇄ NCT losslessly in both directions), and
//! [`crate::file_trace::FileTrace`] for streaming replay with bounded
//! memory.

use crate::trace::{MemAccess, TraceEvent, TraceSource};
use nocstar_json::Json;
use nocstar_types::time::Cycles;
use nocstar_types::{Asid, PageSize, VirtAddr, VirtPageNum};
use std::collections::BTreeSet;
use std::fmt;

/// A finite captured trace, replayed in a loop.
///
/// # Examples
///
/// ```
/// use nocstar_workloads::preset::Preset;
/// use nocstar_workloads::recorded::RecordedTrace;
/// use nocstar_workloads::trace::TraceSource;
/// use nocstar_types::{Asid, ThreadId};
///
/// let mut live = Preset::Redis.spec().trace(Asid::new(1), ThreadId::new(0), 7, true);
/// let recorded = RecordedTrace::capture(&mut live, 100);
/// let mut replay = recorded.clone();
/// // Replays the captured events verbatim (and loops past the end).
/// for _ in 0..250 {
///     replay.next_event();
/// }
/// assert_eq!(replay.asid(), Asid::new(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    asid: Asid,
    events: Vec<TraceEvent>,
    /// Page-size backing per 2 MiB-aligned virtual frame (addresses not
    /// listed default to 4 KiB).
    superpage_frames: BTreeSet<u64>,
    cursor: usize,
}

/// Why a trace failed to deserialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceJsonError {
    /// The text is not well-formed JSON.
    Parse(nocstar_json::ParseError),
    /// The JSON is well-formed but does not match the trace schema.
    Schema(String),
}

impl fmt::Display for TraceJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceJsonError::Parse(e) => write!(f, "{e}"),
            TraceJsonError::Schema(msg) => write!(f, "trace schema error: {msg}"),
        }
    }
}

impl std::error::Error for TraceJsonError {}

fn schema_err(msg: &str) -> TraceJsonError {
    TraceJsonError::Schema(msg.to_string())
}

fn page_size_label(size: PageSize) -> &'static str {
    match size {
        PageSize::Size4K => "4K",
        PageSize::Size2M => "2M",
        PageSize::Size1G => "1G",
    }
}

fn page_size_from_label(label: &str) -> Result<PageSize, TraceJsonError> {
    match label {
        "4K" => Ok(PageSize::Size4K),
        "2M" => Ok(PageSize::Size2M),
        "1G" => Ok(PageSize::Size1G),
        other => Err(TraceJsonError::Schema(format!(
            "unknown page size {other:?}"
        ))),
    }
}

fn vpn_to_json(vpn: VirtPageNum) -> Json {
    Json::obj(vec![
        ("n", Json::U64(vpn.number())),
        ("s", Json::str(page_size_label(vpn.page_size()))),
    ])
}

fn vpn_from_json(v: &Json) -> Result<VirtPageNum, TraceJsonError> {
    let number = v
        .get("n")
        .and_then(Json::as_u64)
        .ok_or_else(|| schema_err("page number missing 'n'"))?;
    let size = v
        .get("s")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err("page number missing 's'"))?;
    Ok(VirtPageNum::new(number, page_size_from_label(size)?))
}

fn event_to_json(event: &TraceEvent) -> Json {
    match event {
        TraceEvent::Access(a) => Json::obj(vec![
            ("t", Json::str("access")),
            ("va", Json::U64(a.va.value())),
            ("w", Json::Bool(a.is_write)),
            ("gap", Json::U64(a.gap.value())),
        ]),
        TraceEvent::ContextSwitch => Json::obj(vec![("t", Json::str("ctx_switch"))]),
        TraceEvent::Remap(vpn) => {
            Json::obj(vec![("t", Json::str("remap")), ("page", vpn_to_json(*vpn))])
        }
        TraceEvent::Promote(vpn) => Json::obj(vec![
            ("t", Json::str("promote")),
            ("page", vpn_to_json(*vpn)),
        ]),
        TraceEvent::Demote(vpn) => Json::obj(vec![
            ("t", Json::str("demote")),
            ("page", vpn_to_json(*vpn)),
        ]),
    }
}

fn event_from_json(v: &Json) -> Result<TraceEvent, TraceJsonError> {
    let tag = v
        .get("t")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err("event missing 't' tag"))?;
    let page = || {
        v.get("page")
            .ok_or_else(|| schema_err("event missing 'page'"))
            .and_then(vpn_from_json)
    };
    match tag {
        "access" => Ok(TraceEvent::Access(MemAccess {
            va: VirtAddr::new(
                v.get("va")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| schema_err("access missing 'va'"))?,
            ),
            is_write: v
                .get("w")
                .and_then(Json::as_bool)
                .ok_or_else(|| schema_err("access missing 'w'"))?,
            gap: Cycles::new(
                v.get("gap")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| schema_err("access missing 'gap'"))?,
            ),
        })),
        "ctx_switch" => Ok(TraceEvent::ContextSwitch),
        "remap" => Ok(TraceEvent::Remap(page()?)),
        "promote" => Ok(TraceEvent::Promote(page()?)),
        "demote" => Ok(TraceEvent::Demote(page()?)),
        other => Err(TraceJsonError::Schema(format!(
            "unknown event tag {other:?}"
        ))),
    }
}

impl RecordedTrace {
    /// Captures the next `count` events from a live source, along with the
    /// backing decisions for every address they touch.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn capture(source: &mut dyn TraceSource, count: usize) -> Self {
        assert!(count > 0, "cannot capture an empty trace");
        let mut events = Vec::with_capacity(count);
        let mut superpage_frames = BTreeSet::new();
        for _ in 0..count {
            let event = source.next_event();
            let touched: Option<VirtAddr> = match &event {
                TraceEvent::Access(a) => Some(a.va),
                TraceEvent::Remap(vpn) | TraceEvent::Promote(vpn) | TraceEvent::Demote(vpn) => {
                    Some(vpn.base())
                }
                TraceEvent::ContextSwitch => None,
            };
            if let Some(va) = touched {
                if source.backing(va) == PageSize::Size2M {
                    superpage_frames.insert(va.value() >> 21);
                }
            }
            events.push(event);
        }
        Self {
            asid: source.asid(),
            events,
            superpage_frames,
            cursor: 0,
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The captured events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The address space the trace was captured in.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The 2 MiB-backed virtual frame numbers (VA ≫ 21) captured with
    /// the events; addresses outside these frames are 4 KiB-backed.
    pub fn superpage_frames(&self) -> &BTreeSet<u64> {
        &self.superpage_frames
    }

    /// Reassembles a trace from its parts — the path back from the NCT
    /// binary format (see [`crate::nct::NctFile::to_recorded`]).
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty (same contract as
    /// [`capture`](Self::capture)).
    pub fn from_parts(
        asid: Asid,
        events: Vec<TraceEvent>,
        superpage_frames: BTreeSet<u64>,
    ) -> Self {
        assert!(!events.is_empty(), "cannot build an empty trace");
        Self {
            asid,
            events,
            superpage_frames,
            cursor: 0,
        }
    }

    /// Serializes to JSON (the interchange format for external traces).
    ///
    /// Superpage frames are emitted in ascending order (the ordered set's
    /// iteration order), so equal traces always produce byte-identical text.
    pub fn to_json(&self) -> String {
        let frames: Vec<u64> = self.superpage_frames.iter().copied().collect();
        Json::obj(vec![
            ("asid", Json::U64(u64::from(self.asid.value()))),
            (
                "events",
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ),
            (
                "superpage_frames",
                Json::Arr(frames.into_iter().map(Json::U64).collect()),
            ),
        ])
        .to_string()
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error if the text is not JSON, or a schema error if
    /// it does not match the trace format.
    pub fn from_json(json: &str) -> Result<Self, TraceJsonError> {
        let doc = Json::parse(json).map_err(TraceJsonError::Parse)?;
        let asid = doc
            .get("asid")
            .and_then(Json::as_u64)
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| schema_err("trace missing 'asid'"))?;
        let events = doc
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| schema_err("trace missing 'events'"))?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let superpage_frames = doc
            .get("superpage_frames")
            .and_then(Json::as_array)
            .ok_or_else(|| schema_err("trace missing 'superpage_frames'"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| schema_err("superpage frame must be an integer"))
            })
            .collect::<Result<BTreeSet<_>, _>>()?;
        Ok(Self {
            asid: Asid::new(asid),
            events,
            superpage_frames,
            cursor: 0,
        })
    }
}

impl TraceSource for RecordedTrace {
    fn next_event(&mut self) -> TraceEvent {
        let event = self.events[self.cursor];
        self.cursor = (self.cursor + 1) % self.events.len();
        event
    }

    fn backing(&self, va: VirtAddr) -> PageSize {
        if self.superpage_frames.contains(&(va.value() >> 21)) {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::Preset;
    use nocstar_types::ThreadId;

    fn live() -> impl TraceSource {
        Preset::Canneal
            .spec()
            .trace(Asid::new(3), ThreadId::new(1), 99, true)
    }

    #[test]
    fn capture_preserves_events_and_asid() {
        let mut a = live();
        let mut b = live();
        let recorded = RecordedTrace::capture(&mut a, 200);
        assert_eq!(recorded.len(), 200);
        assert_eq!(recorded.asid(), Asid::new(3));
        let mut replay = recorded.clone();
        for _ in 0..200 {
            assert_eq!(replay.next_event(), b.next_event());
        }
    }

    #[test]
    fn replay_loops_past_the_end() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 10);
        let mut replay = recorded.clone();
        let first: Vec<TraceEvent> = (0..10).map(|_| replay.next_event()).collect();
        let second: Vec<TraceEvent> = (0..10).map(|_| replay.next_event()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn backing_is_preserved_for_touched_superpages() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 2_000);
        let mut b = live();
        let check = RecordedTrace::capture(&mut b, 2_000);
        let mut superpages = 0;
        for event in check.events() {
            if let TraceEvent::Access(acc) = event {
                let expected = live().backing(acc.va);
                assert_eq!(recorded.backing(acc.va), expected);
                if expected == PageSize::Size2M {
                    superpages += 1;
                }
            }
        }
        assert!(superpages > 0, "test needs some superpage accesses");
    }

    #[test]
    fn json_round_trip() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 50);
        let json = recorded.to_json();
        let back = RecordedTrace::from_json(&json).unwrap();
        assert_eq!(back, recorded);
        // Determinism: serializing the round-tripped trace reproduces the text.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn recorded_traces_drive_a_simulation() {
        // The replayed trace must be usable wherever a live one is.
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 500);
        let boxed: Box<dyn TraceSource> = Box::new(recorded);
        let mut source = boxed;
        for _ in 0..100 {
            source.next_event();
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_capture_rejected() {
        let mut a = live();
        let _ = RecordedTrace::capture(&mut a, 0);
    }
}
