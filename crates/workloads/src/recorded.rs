//! Recording and replaying traces.
//!
//! The synthetic generators are deterministic, but third-party users of
//! the simulator often want to (a) capture a trace once and re-run it
//! against many configurations without regenerating it, or (b) feed the
//! simulator a trace produced by an external tool (e.g. a Pin/DynamoRIO
//! memory trace converted to this format). [`RecordedTrace`] is that
//! bridge: a serializable event list plus the page-size backing decisions,
//! replayable as a [`TraceSource`].

use crate::trace::{TraceEvent, TraceSource};
use nocstar_types::{Asid, PageSize, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A finite captured trace, replayed in a loop.
///
/// # Examples
///
/// ```
/// use nocstar_workloads::preset::Preset;
/// use nocstar_workloads::recorded::RecordedTrace;
/// use nocstar_workloads::trace::TraceSource;
/// use nocstar_types::{Asid, ThreadId};
///
/// let mut live = Preset::Redis.spec().trace(Asid::new(1), ThreadId::new(0), 7, true);
/// let recorded = RecordedTrace::capture(&mut live, 100);
/// let mut replay = recorded.clone();
/// // Replays the captured events verbatim (and loops past the end).
/// for _ in 0..250 {
///     replay.next_event();
/// }
/// assert_eq!(replay.asid(), Asid::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    asid: Asid,
    events: Vec<TraceEvent>,
    /// Page-size backing per 2 MiB-aligned virtual frame (addresses not
    /// listed default to 4 KiB).
    superpage_frames: HashMap<u64, ()>,
    #[serde(skip)]
    cursor: usize,
}

impl RecordedTrace {
    /// Captures the next `count` events from a live source, along with the
    /// backing decisions for every address they touch.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn capture(source: &mut dyn TraceSource, count: usize) -> Self {
        assert!(count > 0, "cannot capture an empty trace");
        let mut events = Vec::with_capacity(count);
        let mut superpage_frames = HashMap::new();
        for _ in 0..count {
            let event = source.next_event();
            let touched: Option<VirtAddr> = match &event {
                TraceEvent::Access(a) => Some(a.va),
                TraceEvent::Remap(vpn) | TraceEvent::Promote(vpn) | TraceEvent::Demote(vpn) => {
                    Some(vpn.base())
                }
                TraceEvent::ContextSwitch => None,
            };
            if let Some(va) = touched {
                if source.backing(va) == PageSize::Size2M {
                    superpage_frames.insert(va.value() >> 21, ());
                }
            }
            events.push(event);
        }
        Self {
            asid: source.asid(),
            events,
            superpage_frames,
            cursor: 0,
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The captured events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes to JSON (the interchange format for external traces).
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error (I/O-free; effectively
    /// infallible for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error if the JSON does not match the trace schema.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl TraceSource for RecordedTrace {
    fn next_event(&mut self) -> TraceEvent {
        let event = self.events[self.cursor];
        self.cursor = (self.cursor + 1) % self.events.len();
        event
    }

    fn backing(&self, va: VirtAddr) -> PageSize {
        if self.superpage_frames.contains_key(&(va.value() >> 21)) {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::Preset;
    use nocstar_types::ThreadId;

    fn live() -> impl TraceSource {
        Preset::Canneal
            .spec()
            .trace(Asid::new(3), ThreadId::new(1), 99, true)
    }

    #[test]
    fn capture_preserves_events_and_asid() {
        let mut a = live();
        let mut b = live();
        let recorded = RecordedTrace::capture(&mut a, 200);
        assert_eq!(recorded.len(), 200);
        assert_eq!(recorded.asid(), Asid::new(3));
        let mut replay = recorded.clone();
        for _ in 0..200 {
            assert_eq!(replay.next_event(), b.next_event());
        }
    }

    #[test]
    fn replay_loops_past_the_end() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 10);
        let mut replay = recorded.clone();
        let first: Vec<TraceEvent> = (0..10).map(|_| replay.next_event()).collect();
        let second: Vec<TraceEvent> = (0..10).map(|_| replay.next_event()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn backing_is_preserved_for_touched_superpages() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 2_000);
        let mut b = live();
        let check = RecordedTrace::capture(&mut b, 2_000);
        let mut superpages = 0;
        for event in check.events() {
            if let TraceEvent::Access(acc) = event {
                let expected = live().backing(acc.va);
                assert_eq!(recorded.backing(acc.va), expected);
                if expected == PageSize::Size2M {
                    superpages += 1;
                }
            }
        }
        assert!(superpages > 0, "test needs some superpage accesses");
    }

    #[test]
    fn json_round_trip() {
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 50);
        let json = recorded.to_json().unwrap();
        let back = RecordedTrace::from_json(&json).unwrap();
        assert_eq!(back, recorded);
    }

    #[test]
    fn recorded_traces_drive_a_simulation() {
        // The replayed trace must be usable wherever a live one is.
        let mut a = live();
        let recorded = RecordedTrace::capture(&mut a, 500);
        let boxed: Box<dyn TraceSource> = Box::new(recorded);
        let mut source = boxed;
        for _ in 0..100 {
            source.next_event();
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_capture_rejected() {
        let mut a = live();
        let _ = RecordedTrace::capture(&mut a, 0);
    }
}
