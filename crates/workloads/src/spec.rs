//! The tunable synthetic-workload description.
//!
//! Each paper workload is modelled as a *hot/cold* access mixture over a
//! shared region (one address space touched by all of the application's
//! threads) plus per-thread private regions:
//!
//! * a **hot set** of `hot_pages` pages, *scattered* across the region
//!   (so superpage backing does not collapse it onto a handful of 2 MiB
//!   translations) and accessed with a Zipf rank distribution — its
//!   popular head fits the L1 TLB, its tail fits an L2 TLB but not the
//!   L1; this is what puts private-L2-TLB miss rates in the paper's
//!   5–18 % band;
//! * the **cold** remainder of the footprint is sampled uniformly or by a
//!   Zipf tail; its size relative to the *aggregate* shared-L2 capacity is
//!   what sets how many private misses a shared TLB eliminates (Fig 2),
//!   and makes the elimination grow with core count exactly as in the
//!   paper.

use crate::generator::SyntheticTrace;
use nocstar_types::{Asid, ThreadId};

/// How cold (non-hot-set) pages are chosen within a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdDistribution {
    /// Uniform over the cold pages (gups-like random access).
    Uniform,
    /// Zipf with the given exponent over the cold pages (power-law reuse,
    /// graph and key-value workloads).
    Zipf(f64),
    /// A sequential scan with the given page step (streaming kernels;
    /// the pattern adjacent-page TLB prefetching is built for). Each
    /// thread scans from its own starting offset.
    Strided(u64),
}

/// A complete synthetic workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (the paper's label).
    pub name: &'static str,
    /// Shared-region footprint in 4 KiB pages (includes the hot set).
    pub shared_pages: u64,
    /// Per-thread private-region footprint in 4 KiB pages.
    pub private_pages: u64,
    /// Probability an access targets the shared region.
    pub shared_access_fraction: f64,
    /// Hot-set size in pages (scattered evenly across the region).
    pub hot_pages: u64,
    /// Probability an in-region access hits the hot set.
    pub hot_fraction: f64,
    /// Zipf exponent over hot-set ranks (popular hot pages fit the L1
    /// TLB; the tail of the hot set lives in the L2 TLB).
    pub hot_zipf_exponent: f64,
    /// Distribution over the cold pages.
    pub cold: ColdDistribution,
    /// Fraction of the footprint backed by 2 MiB pages when transparent
    /// huge pages are enabled (the paper measures 50–80 %).
    pub superpage_fraction: f64,
    /// Mean cycles of non-memory work between memory ops.
    pub mem_op_gap: u64,
    /// Fraction of accesses that write.
    pub write_fraction: f64,
    /// OS page remaps (→ chip-wide shootdowns) per million accesses.
    pub remaps_per_million: f64,
}

impl WorkloadSpec {
    /// Builds the deterministic trace for one hardware thread of this
    /// workload.
    ///
    /// `thp_enabled` selects transparent-huge-page backing (Fig 13) versus
    /// 4 KiB-only (Fig 12). Traces with the same `(seed, asid, thread)`
    /// are identical.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (see [`validate`](Self::validate)).
    pub fn trace(
        &self,
        asid: Asid,
        thread: ThreadId,
        seed: u64,
        thp_enabled: bool,
    ) -> SyntheticTrace {
        self.validate();
        SyntheticTrace::new(*self, asid, thread, seed, thp_enabled)
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, the hot set exceeds
    /// the shared footprint, or the footprint is empty.
    pub fn validate(&self) {
        assert!(
            self.shared_pages > 0,
            "{}: empty shared footprint",
            self.name
        );
        assert!(
            self.hot_pages <= self.shared_pages,
            "{}: hot set larger than footprint",
            self.name
        );
        for (label, p) in [
            ("shared_access_fraction", self.shared_access_fraction),
            ("hot_fraction", self.hot_fraction),
            ("superpage_fraction", self.superpage_fraction),
            ("write_fraction", self.write_fraction),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{}: {label} = {p} is not a probability",
                self.name
            );
        }
        assert!(
            self.remaps_per_million >= 0.0,
            "{}: negative remap rate",
            self.name
        );
        match self.cold {
            ColdDistribution::Zipf(s) => {
                assert!(s > 0.0, "{}: non-positive Zipf exponent", self.name)
            }
            ColdDistribution::Strided(step) => {
                assert!(step > 0, "{}: zero scan stride", self.name)
            }
            ColdDistribution::Uniform => {}
        }
        assert!(
            self.hot_zipf_exponent > 0.0,
            "{}: non-positive hot Zipf exponent",
            self.name
        );
    }

    /// Total distinct pages this workload can touch with `threads` threads.
    pub fn total_pages(&self, threads: usize) -> u64 {
        self.shared_pages + self.private_pages * threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            shared_pages: 1000,
            private_pages: 100,
            shared_access_fraction: 0.8,
            hot_pages: 64,
            hot_fraction: 0.9,
            hot_zipf_exponent: 1.2,
            cold: ColdDistribution::Uniform,
            superpage_fraction: 0.5,
            mem_op_gap: 8,
            write_fraction: 0.3,
            remaps_per_million: 10.0,
        }
    }

    #[test]
    fn valid_spec_passes() {
        base().validate();
    }

    #[test]
    fn total_pages_counts_private_per_thread() {
        assert_eq!(base().total_pages(8), 1000 + 800);
    }

    #[test]
    #[should_panic(expected = "hot set larger")]
    fn oversized_hot_set_rejected() {
        let mut s = base();
        s.hot_pages = 2000;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_probability_rejected() {
        let mut s = base();
        s.hot_fraction = 1.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn bad_zipf_rejected() {
        let mut s = base();
        s.cold = ColdDistribution::Zipf(-1.0);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "zero scan stride")]
    fn zero_stride_rejected() {
        let mut s = base();
        s.cold = ColdDistribution::Strided(0);
        s.validate();
    }
}
