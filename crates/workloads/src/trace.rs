//! The trace event model: what a simulated thread does next.

use nocstar_types::time::Cycles;
use nocstar_types::{Asid, PageSize, VirtAddr, VirtPageNum};

/// One memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The virtual address touched.
    pub va: VirtAddr,
    /// Whether the access writes.
    pub is_write: bool,
    /// Cycles of non-memory work preceding this access (models the
    /// instructions between memory ops; the knob behind each workload's
    /// memory intensity).
    pub gap: Cycles,
}

/// One event in a thread's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Execute a memory access (translation on the critical path).
    Access(MemAccess),
    /// The OS scheduled another process on this core: all non-global TLB
    /// entries of this thread's context are flushed.
    ContextSwitch,
    /// The OS remapped a page (migration, COW): its translation must be
    /// shot down chip-wide.
    Remap(
        /// The now-stale virtual page.
        VirtPageNum,
    ),
    /// Transparent-huge-page promotion: 512 base-page translations under
    /// this 2 MiB page become stale.
    Promote(
        /// The 2 MiB page being created.
        VirtPageNum,
    ),
    /// Superpage demotion: the 2 MiB translation becomes stale.
    Demote(
        /// The 2 MiB page being split.
        VirtPageNum,
    ),
}

/// An infinite, deterministic stream of [`TraceEvent`]s for one hardware
/// thread, plus the page-size backing decisions for the addresses it emits.
///
/// Sources are `Send`: under `--parallel-domains`, each domain worker
/// thread owns the sources of the hardware threads in its domain.
pub trait TraceSource: Send {
    /// The next event. Streams are infinite; the simulator decides when to
    /// stop.
    fn next_event(&mut self) -> TraceEvent;

    /// The page size backing `va` (stable for a given address: the
    /// simulator maps each page on first touch with this size).
    fn backing(&self, va: VirtAddr) -> PageSize;

    /// The address space this thread runs in.
    fn asid(&self) -> Asid;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial source used to exercise the trait object path.
    struct OneAddress;

    impl TraceSource for OneAddress {
        fn next_event(&mut self) -> TraceEvent {
            TraceEvent::Access(MemAccess {
                va: VirtAddr::new(0x1000),
                is_write: false,
                gap: Cycles::new(5),
            })
        }
        fn backing(&self, _va: VirtAddr) -> PageSize {
            PageSize::Size4K
        }
        fn asid(&self) -> Asid {
            Asid::new(1)
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut boxed: Box<dyn TraceSource> = Box::new(OneAddress);
        match boxed.next_event() {
            TraceEvent::Access(a) => {
                assert_eq!(a.va, VirtAddr::new(0x1000));
                assert_eq!(boxed.backing(a.va), PageSize::Size4K);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(boxed.asid(), Asid::new(1));
    }
}
