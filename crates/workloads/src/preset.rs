//! The paper's 11 evaluation workloads as synthetic presets.
//!
//! The parameters encode each workload's TLB-relevant character as the
//! paper describes it: `canneal`, `gups` and `xsbench` have notably poor
//! locality (large cold footprints, weak or absent skew); the CloudSuite
//! services (`nutch`, `olio`, `redis`, `mongodb`, `data caching`) are
//! Zipf-skewed with heavy superpage coverage; `graph500`/`graph analytics`
//! are power-law with large footprints and high sharing. Footprints are
//! sized relative to aggregate shared-L2-TLB capacity so shared-TLB miss
//! elimination grows with core count as in Fig 2.

use crate::spec::{ColdDistribution, WorkloadSpec};
use std::fmt;

/// One of the paper's 11 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Preset {
    Graph500,
    Canneal,
    Xsbench,
    DataCaching,
    SwTesting,
    GraphAnalytics,
    Nutch,
    Olio,
    Redis,
    MongoDb,
    Gups,
}

impl Preset {
    /// All presets, in the paper's figure order.
    pub const ALL: [Preset; 11] = [
        Preset::Graph500,
        Preset::Canneal,
        Preset::Xsbench,
        Preset::DataCaching,
        Preset::SwTesting,
        Preset::GraphAnalytics,
        Preset::Nutch,
        Preset::Olio,
        Preset::Redis,
        Preset::MongoDb,
        Preset::Gups,
    ];

    /// The synthetic spec modelling this workload.
    pub fn spec(self) -> WorkloadSpec {
        use ColdDistribution::{Uniform, Zipf};
        match self {
            Preset::Graph500 => WorkloadSpec {
                name: "graph500",
                shared_pages: 39000,
                private_pages: 700,
                shared_access_fraction: 0.85,
                hot_pages: 512,
                hot_fraction: 0.90,
                hot_zipf_exponent: 1.20,
                cold: Zipf(0.7),
                superpage_fraction: 0.60,
                mem_op_gap: 4,
                write_fraction: 0.25,
                remaps_per_million: 30.0,
            },
            Preset::Canneal => WorkloadSpec {
                name: "canneal",
                shared_pages: 40000,
                private_pages: 900,
                shared_access_fraction: 0.80,
                hot_pages: 640,
                hot_fraction: 0.88,
                hot_zipf_exponent: 1.10,
                cold: Uniform,
                superpage_fraction: 0.50,
                mem_op_gap: 5,
                write_fraction: 0.30,
                remaps_per_million: 20.0,
            },
            Preset::Xsbench => WorkloadSpec {
                name: "xsbench",
                shared_pages: 39000,
                private_pages: 600,
                shared_access_fraction: 0.90,
                hot_pages: 512,
                hot_fraction: 0.88,
                hot_zipf_exponent: 1.10,
                cold: Uniform,
                superpage_fraction: 0.55,
                mem_op_gap: 4,
                write_fraction: 0.10,
                remaps_per_million: 10.0,
            },
            Preset::DataCaching => WorkloadSpec {
                name: "data caching",
                shared_pages: 30000,
                private_pages: 700,
                shared_access_fraction: 0.70,
                hot_pages: 512,
                hot_fraction: 0.90,
                hot_zipf_exponent: 1.25,
                cold: Zipf(0.9),
                superpage_fraction: 0.60,
                mem_op_gap: 6,
                write_fraction: 0.35,
                remaps_per_million: 40.0,
            },
            Preset::SwTesting => WorkloadSpec {
                name: "sw testing",
                shared_pages: 30000,
                private_pages: 600,
                shared_access_fraction: 0.70,
                hot_pages: 448,
                hot_fraction: 0.91,
                hot_zipf_exponent: 1.25,
                cold: Uniform,
                superpage_fraction: 0.65,
                mem_op_gap: 5,
                write_fraction: 0.30,
                remaps_per_million: 50.0,
            },
            Preset::GraphAnalytics => WorkloadSpec {
                name: "graph analytics",
                shared_pages: 37000,
                private_pages: 700,
                shared_access_fraction: 0.85,
                hot_pages: 576,
                hot_fraction: 0.89,
                hot_zipf_exponent: 1.15,
                cold: Zipf(0.75),
                superpage_fraction: 0.60,
                mem_op_gap: 4,
                write_fraction: 0.20,
                remaps_per_million: 25.0,
            },
            Preset::Nutch => WorkloadSpec {
                name: "nutch",
                shared_pages: 36000,
                private_pages: 600,
                shared_access_fraction: 0.60,
                hot_pages: 512,
                hot_fraction: 0.90,
                hot_zipf_exponent: 1.25,
                cold: Zipf(1.0),
                superpage_fraction: 0.70,
                mem_op_gap: 7,
                write_fraction: 0.25,
                remaps_per_million: 35.0,
            },
            Preset::Olio => WorkloadSpec {
                name: "olio",
                shared_pages: 33000,
                private_pages: 600,
                shared_access_fraction: 0.60,
                hot_pages: 448,
                hot_fraction: 0.91,
                hot_zipf_exponent: 1.30,
                cold: Zipf(0.95),
                superpage_fraction: 0.70,
                mem_op_gap: 6,
                write_fraction: 0.30,
                remaps_per_million: 40.0,
            },
            Preset::Redis => WorkloadSpec {
                name: "redis",
                shared_pages: 48000,
                private_pages: 600,
                shared_access_fraction: 0.65,
                hot_pages: 512,
                hot_fraction: 0.90,
                hot_zipf_exponent: 1.20,
                cold: Zipf(0.9),
                superpage_fraction: 0.75,
                mem_op_gap: 5,
                write_fraction: 0.40,
                remaps_per_million: 45.0,
            },
            Preset::MongoDb => WorkloadSpec {
                name: "mongodb",
                shared_pages: 43000,
                private_pages: 600,
                shared_access_fraction: 0.60,
                hot_pages: 512,
                hot_fraction: 0.89,
                hot_zipf_exponent: 1.20,
                cold: Zipf(0.85),
                superpage_fraction: 0.70,
                mem_op_gap: 5,
                write_fraction: 0.35,
                remaps_per_million: 40.0,
            },
            Preset::Gups => WorkloadSpec {
                name: "gups",
                shared_pages: 48000,
                private_pages: 400,
                shared_access_fraction: 0.95,
                hot_pages: 768,
                hot_fraction: 0.85,
                hot_zipf_exponent: 1.05,
                cold: Uniform,
                superpage_fraction: 0.50,
                mem_op_gap: 3,
                write_fraction: 0.50,
                remaps_per_million: 10.0,
            },
        }
    }

    /// The paper's label for this workload.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Looks a preset up by its paper label (the inverse of
    /// [`name`](Self::name)) — how the `nocstar-trace` and bench CLIs
    /// resolve `--preset` flags.
    ///
    /// ```
    /// use nocstar_workloads::preset::Preset;
    /// assert_eq!(Preset::from_name("redis"), Some(Preset::Redis));
    /// assert_eq!(Preset::from_name("data caching"), Some(Preset::DataCaching));
    /// assert_eq!(Preset::from_name("fortnite"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_eleven_presets_with_unique_names() {
        assert_eq!(Preset::ALL.len(), 11);
        let names: HashSet<&str> = Preset::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn every_preset_spec_is_valid() {
        for p in Preset::ALL {
            p.spec().validate();
        }
    }

    #[test]
    fn superpage_coverage_is_in_the_papers_band() {
        // "Linux was able to allocate 50-80% of each workload's memory
        // footprint with superpages."
        for p in Preset::ALL {
            let f = p.spec().superpage_fraction;
            assert!((0.5..=0.8).contains(&f), "{p}: {f}");
        }
    }

    #[test]
    fn poor_locality_workloads_have_the_biggest_cold_footprints() {
        // canneal, gups, xsbench are the paper's poor-locality examples.
        let poor: u64 = [Preset::Canneal, Preset::Gups, Preset::Xsbench]
            .iter()
            .map(|p| p.spec().shared_pages)
            .min()
            .unwrap();
        let services: u64 = [Preset::Nutch, Preset::Olio, Preset::SwTesting]
            .iter()
            .map(|p| p.spec().shared_pages)
            .max()
            .unwrap();
        assert!(poor > services);
    }

    #[test]
    fn hot_sets_fit_an_l2_but_not_an_l1() {
        for p in Preset::ALL {
            let hot = p.spec().hot_pages;
            assert!(hot > 64, "{p}: hot set should overflow the L1 TLB");
            assert!(hot < 1024, "{p}: hot set should fit a private L2 TLB");
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Preset::DataCaching.to_string(), "data caching");
        assert_eq!(Preset::Gups.to_string(), "gups");
    }

    #[test]
    fn from_name_inverts_name_for_every_preset() {
        for p in Preset::ALL {
            assert_eq!(Preset::from_name(p.name()), Some(p));
        }
        assert_eq!(Preset::from_name("no such workload"), None);
    }
}
