//! The NCT ("nocstar compressed trace") binary format, version 1.
//!
//! The normative byte-level specification lives in `TRACE_FORMAT.md` at
//! the repository root — **the document is the contract**; this module
//! implements it, and `tests/trace_replay.rs` holds the two to the same
//! golden fixture. In brief: a magic/version header with a page-size
//! table, a seekable per-thread directory, and per-thread streams of
//! delta + varint-encoded events cut into independently decodable,
//! checksummed blocks so replay can stream with bounded memory (see
//! [`FileTrace`](crate::file_trace::FileTrace)).
//!
//! This module provides the encoding primitives (varint, zigzag,
//! FNV-1a 64, block codec) and [`NctFile`], the whole-file in-memory
//! form used by the `nocstar-trace` CLI for capture, conversion and
//! inspection. Everything returns structured [`NctError`]s — a malformed
//! or truncated file must never panic the process.

use crate::recorded::RecordedTrace;
use crate::trace::{MemAccess, TraceEvent};
use nocstar_types::time::Cycles;
use nocstar_types::{Asid, PageSize, VirtAddr, VirtPageNum};
use std::collections::BTreeSet;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// The 8-byte file magic: `\x89 N C T \r \n \x1A \n` (PNG-style: the
/// high bit catches 7-bit transports, the line endings catch newline
/// translation).
pub const MAGIC: [u8; 8] = [0x89, b'N', b'C', b'T', 0x0D, 0x0A, 0x1A, 0x0A];

/// The format version this module reads and writes.
pub const VERSION: u16 = 1;

/// The page-size table fixed by version 1: log2 bytes of 4 KiB, 2 MiB
/// and 1 GiB pages. Event payloads refer to page sizes by index into
/// this table.
pub const PAGE_SHIFTS: [u8; 3] = [12, 21, 30];

/// Events per block emitted by this crate's writers (readers accept any
/// positive block size; the last block of a stream holds the remainder).
pub const WRITER_BLOCK_EVENTS: usize = 4096;

/// Byte length of the fixed header (before the label).
pub const HEADER_LEN: usize = 24;

/// Byte length of one thread-directory entry (`u64` offset + `u64` length).
pub const DIR_ENTRY_LEN: usize = 16;

/// Byte length of a block header (`u32` payload length, `u32` event
/// count, `u64` FNV-1a checksum).
pub const BLOCK_HEADER_LEN: usize = 16;

/// Why an NCT file could not be read or written.
///
/// Every decode path returns one of these instead of panicking; the
/// `nocstar-lint` `sim-unwrap` gate polices that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NctError {
    /// An underlying I/O operation failed (context and OS error text).
    Io(String),
    /// The file does not start with the NCT magic.
    BadMagic,
    /// The file's version is not one this reader understands.
    UnsupportedVersion(u16),
    /// The file ended before the named structure was complete.
    Truncated(String),
    /// The bytes are structurally invalid (context explains where/why).
    Corrupt(String),
    /// A block's payload did not match its stored FNV-1a checksum.
    ChecksumMismatch {
        /// Thread stream the block belongs to.
        thread: u16,
        /// Zero-based block index within that stream.
        block: usize,
    },
    /// A thread index beyond the file's stream count was requested.
    BadThreadIndex {
        /// The stream that was asked for.
        requested: u16,
        /// Streams actually present.
        available: u16,
    },
}

impl fmt::Display for NctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NctError::Io(msg) => write!(f, "I/O error: {msg}"),
            NctError::BadMagic => write!(f, "not an NCT trace file (bad magic)"),
            NctError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported NCT version {v} (this reader knows {VERSION})"
                )
            }
            NctError::Truncated(what) => write!(f, "truncated NCT file: {what}"),
            NctError::Corrupt(what) => write!(f, "corrupt NCT file: {what}"),
            NctError::ChecksumMismatch { thread, block } => write!(
                f,
                "corrupt NCT file: checksum mismatch in thread {thread}, block {block}"
            ),
            NctError::BadThreadIndex {
                requested,
                available,
            } => write!(
                f,
                "thread {requested} requested but the trace has {available} stream(s)"
            ),
        }
    }
}

impl std::error::Error for NctError {}

pub(crate) fn io_err(context: &str, e: &std::io::Error) -> NctError {
    NctError::Io(format!("{context}: {e}"))
}

fn corrupt(msg: impl Into<String>) -> NctError {
    NctError::Corrupt(msg.into())
}

fn truncated(msg: impl Into<String>) -> NctError {
    NctError::Truncated(msg.into())
}

// ---------------------------------------------------------------------------
// Encoding primitives (TRACE_FORMAT.md §2).
// ---------------------------------------------------------------------------

/// Appends `v` as an unsigned LEB128 varint (shortest encoding).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes an unsigned LEB128 varint from `buf` at `*pos`, advancing
/// `*pos` past it.
///
/// # Errors
///
/// Rejects truncation, encodings longer than 10 bytes, 10th bytes that
/// overflow 64 bits, and non-shortest encodings (trailing zero bytes).
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, NctError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| truncated("varint ends mid-value"))?;
        *pos += 1;
        let payload = u64::from(byte & 0x7F);
        if i == 9 && payload > 1 {
            return Err(corrupt("varint overflows 64 bits"));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            if i > 0 && byte == 0 {
                return Err(corrupt("non-shortest varint encoding"));
            }
            return Ok(v);
        }
    }
    Err(corrupt("varint longer than 10 bytes"))
}

/// Zigzag-maps a signed value so small magnitudes of either sign encode
/// short: 0 → 0, −1 → 1, 1 → 2, −2 → 3, …
pub fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit hash of `bytes` — the per-block checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn size_index(size: PageSize) -> u8 {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

fn size_from_index(index: u8) -> Result<PageSize, NctError> {
    match index {
        0 => Ok(PageSize::Size4K),
        1 => Ok(PageSize::Size2M),
        2 => Ok(PageSize::Size1G),
        other => Err(corrupt(format!(
            "page-size index {other} out of range (table has {} entries)",
            PAGE_SHIFTS.len()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Block codec (TRACE_FORMAT.md §3.5).
// ---------------------------------------------------------------------------

/// Encodes a run of events as one block payload. The previous-VA
/// register starts at 0, so every block decodes independently.
pub fn encode_block(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 4);
    let mut prev_va: u64 = 0;
    for event in events {
        match event {
            TraceEvent::Access(a) => {
                out.push(u8::from(a.is_write));
                let delta = a.va.value().wrapping_sub(prev_va) as i64;
                write_uvarint(&mut out, zigzag(delta));
                write_uvarint(&mut out, a.gap.value());
                prev_va = a.va.value();
            }
            TraceEvent::ContextSwitch => out.push(0x02),
            TraceEvent::Remap(vpn) => encode_page_event(&mut out, 0x03, *vpn),
            TraceEvent::Promote(vpn) => encode_page_event(&mut out, 0x04, *vpn),
            TraceEvent::Demote(vpn) => encode_page_event(&mut out, 0x05, *vpn),
        }
    }
    out
}

fn encode_page_event(out: &mut Vec<u8>, tag: u8, vpn: VirtPageNum) {
    out.push(tag);
    out.push(size_index(vpn.page_size()));
    write_uvarint(out, vpn.number());
}

/// Decodes one block payload that claims to hold `block_events` events.
///
/// # Errors
///
/// Rejects unknown tags, truncated events, bad page-size indexes, and
/// trailing bytes after the last event.
pub fn decode_block(payload: &[u8], block_events: usize) -> Result<Vec<TraceEvent>, NctError> {
    let mut pos = 0usize;
    let mut prev_va: u64 = 0;
    let mut out = Vec::with_capacity(block_events);
    for _ in 0..block_events {
        let tag = *payload
            .get(pos)
            .ok_or_else(|| truncated("block payload ends mid-event"))?;
        pos += 1;
        let event = match tag {
            0x00 | 0x01 => {
                let delta = unzigzag(read_uvarint(payload, &mut pos)?);
                let va = prev_va.wrapping_add(delta as u64);
                let gap = read_uvarint(payload, &mut pos)?;
                prev_va = va;
                TraceEvent::Access(MemAccess {
                    va: VirtAddr::new(va),
                    is_write: tag == 0x01,
                    gap: Cycles::new(gap),
                })
            }
            0x02 => TraceEvent::ContextSwitch,
            0x03..=0x05 => {
                let index = *payload
                    .get(pos)
                    .ok_or_else(|| truncated("page event ends before size index"))?;
                pos += 1;
                let size = size_from_index(index)?;
                let number = read_uvarint(payload, &mut pos)?;
                let vpn = VirtPageNum::new(number, size);
                match tag {
                    0x03 => TraceEvent::Remap(vpn),
                    0x04 => TraceEvent::Promote(vpn),
                    _ => TraceEvent::Demote(vpn),
                }
            }
            other => return Err(corrupt(format!("unknown event tag {other:#04x}"))),
        };
        out.push(event);
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "block payload has {} trailing byte(s) after the last event",
            payload.len() - pos
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Header (TRACE_FORMAT.md §3.1).
// ---------------------------------------------------------------------------

/// The decoded fixed header plus label of an NCT file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NctHeader {
    /// Address space all threads of the trace run in.
    pub asid: Asid,
    /// Number of thread streams (≥ 1).
    pub thread_count: u16,
    /// UTF-8 workload label (used verbatim as the replay report label).
    pub label: String,
}

impl NctHeader {
    /// Total on-disk size of header + label + thread directory — i.e. the
    /// offset at which the first thread section would start in a
    /// contiguous layout.
    pub fn preamble_len(&self) -> u64 {
        (HEADER_LEN + self.label.len() + usize::from(self.thread_count) * DIR_ENTRY_LEN) as u64
    }

    /// Byte offset of thread `index`'s directory entry.
    pub fn dir_entry_offset(&self, index: u16) -> u64 {
        (HEADER_LEN + self.label.len() + usize::from(index) * DIR_ENTRY_LEN) as u64
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.label.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.asid.value().to_le_bytes());
        out.extend_from_slice(&self.thread_count.to_le_bytes());
        out.push(PAGE_SHIFTS.len() as u8);
        out.extend_from_slice(&PAGE_SHIFTS);
        out.extend_from_slice(&(self.label.len() as u16).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(self.label.as_bytes());
        out
    }

    /// Reads and validates the header + label from `r`.
    ///
    /// # Errors
    ///
    /// Returns the structured reason: short read, bad magic, unknown
    /// version, page-size table other than version 1's, nonzero
    /// reserved bits, zero threads, or a non-UTF-8 label.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NctError> {
        let mut fixed = [0u8; HEADER_LEN];
        read_exact(r, &mut fixed, "file header")?;
        if fixed[0..8] != MAGIC {
            return Err(NctError::BadMagic);
        }
        let version = u16::from_le_bytes([fixed[8], fixed[9]]);
        if version != VERSION {
            return Err(NctError::UnsupportedVersion(version));
        }
        let asid = Asid::new(u16::from_le_bytes([fixed[10], fixed[11]]));
        let thread_count = u16::from_le_bytes([fixed[12], fixed[13]]);
        if thread_count == 0 {
            return Err(corrupt("thread count is zero"));
        }
        if fixed[14] != PAGE_SHIFTS.len() as u8 || fixed[15..18] != PAGE_SHIFTS {
            return Err(corrupt(
                "page-size table differs from version 1's {12, 21, 30}",
            ));
        }
        let label_len = usize::from(u16::from_le_bytes([fixed[18], fixed[19]]));
        if fixed[20..24] != [0u8; 4] {
            return Err(corrupt("reserved header bytes are nonzero"));
        }
        let mut label_bytes = vec![0u8; label_len];
        read_exact(r, &mut label_bytes, "workload label")?;
        let label = String::from_utf8(label_bytes)
            .map_err(|_| corrupt("workload label is not valid UTF-8"))?;
        Ok(Self {
            asid,
            thread_count,
            label,
        })
    }
}

/// `read_exact` with NCT error mapping (`UnexpectedEof` → [`NctError::Truncated`]).
pub(crate) fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), NctError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            truncated(format!("{what} ends early"))
        } else {
            io_err(what, &e)
        }
    })
}

/// Reads only the header + label of the NCT file at `path` — how callers
/// learn the thread count and label without touching the streams.
///
/// # Errors
///
/// Any [`NctError`] the header read can produce, plus I/O failures.
pub fn peek_header(path: impl AsRef<Path>) -> Result<NctHeader, NctError> {
    let path = path.as_ref();
    let mut file =
        std::fs::File::open(path).map_err(|e| io_err(&format!("open {}", path.display()), &e))?;
    NctHeader::read_from(&mut file)
}

// ---------------------------------------------------------------------------
// Whole-file form.
// ---------------------------------------------------------------------------

/// One hardware thread's captured stream: its 2 MiB backing set plus its
/// event list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStream {
    /// 2 MiB-aligned virtual frame numbers (VA ≫ 21) backed by
    /// superpages; everything else is 4 KiB-backed.
    pub superpage_frames: BTreeSet<u64>,
    /// The captured events, in order (≥ 1).
    pub events: Vec<TraceEvent>,
}

/// A complete NCT trace held in memory: the form the `nocstar-trace` CLI
/// records into, converts through, and inspects.
///
/// For replaying a large file with bounded memory, use
/// [`FileTrace`](crate::file_trace::FileTrace) instead — it streams one
/// block at a time and never holds a whole stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NctFile {
    asid: Asid,
    label: String,
    threads: Vec<ThreadStream>,
}

impl NctFile {
    /// Assembles a trace file from per-thread streams.
    ///
    /// # Errors
    ///
    /// Rejects zero or more than `u16::MAX` streams, an empty event list
    /// in any stream, and labels longer than `u16::MAX` bytes.
    pub fn new(
        asid: Asid,
        label: impl Into<String>,
        threads: Vec<ThreadStream>,
    ) -> Result<Self, NctError> {
        let label = label.into();
        if threads.is_empty() {
            return Err(corrupt("a trace needs at least one thread stream"));
        }
        if threads.len() > usize::from(u16::MAX) {
            return Err(corrupt(format!(
                "{} thread streams exceed the u16 directory limit",
                threads.len()
            )));
        }
        if label.len() > usize::from(u16::MAX) {
            return Err(corrupt("label longer than 65535 bytes"));
        }
        if let Some(i) = threads.iter().position(|t| t.events.is_empty()) {
            return Err(corrupt(format!("thread {i} has no events")));
        }
        Ok(Self {
            asid,
            label,
            threads,
        })
    }

    /// Builds a multi-thread file from per-thread [`RecordedTrace`]s
    /// (thread `i` of the file is `traces[i]`).
    ///
    /// # Errors
    ///
    /// Rejects an empty slice and traces whose ASIDs disagree (an NCT
    /// file models one address space).
    pub fn from_recorded(
        traces: &[RecordedTrace],
        label: impl Into<String>,
    ) -> Result<Self, NctError> {
        let first_asid = match traces.first() {
            Some(t) => t.asid(),
            None => return Err(corrupt("a trace needs at least one thread stream")),
        };
        if let Some(t) = traces.iter().find(|t| t.asid() != first_asid) {
            return Err(corrupt(format!(
                "thread ASIDs disagree ({} vs {})",
                first_asid.value(),
                t.asid().value()
            )));
        }
        let threads = traces
            .iter()
            .map(|t| ThreadStream {
                superpage_frames: t.superpage_frames().clone(),
                events: t.events().to_vec(),
            })
            .collect();
        Self::new(first_asid, label, threads)
    }

    /// Extracts one thread's stream as a [`RecordedTrace`] (the JSON
    /// interchange form). The label is dropped — JSON carries none.
    ///
    /// # Errors
    ///
    /// [`NctError::BadThreadIndex`] if `thread` is out of range.
    pub fn to_recorded(&self, thread: u16) -> Result<RecordedTrace, NctError> {
        let stream = self.threads.get(usize::from(thread)).ok_or({
            NctError::BadThreadIndex {
                requested: thread,
                available: self.threads.len() as u16,
            }
        })?;
        Ok(RecordedTrace::from_parts(
            self.asid,
            stream.events.clone(),
            stream.superpage_frames.clone(),
        ))
    }

    /// The trace's address space.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The workload label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The per-thread streams.
    pub fn threads(&self) -> &[ThreadStream] {
        &self.threads
    }

    /// Serializes to the on-disk byte form (header, label, directory,
    /// contiguous thread sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = NctHeader {
            asid: self.asid,
            thread_count: self.threads.len() as u16,
            label: self.label.clone(),
        };
        let mut out = header.to_bytes();
        let dir_start = out.len();
        out.resize(dir_start + self.threads.len() * DIR_ENTRY_LEN, 0);
        for (i, stream) in self.threads.iter().enumerate() {
            let offset = out.len() as u64;
            encode_section(&mut out, stream);
            let length = out.len() as u64 - offset;
            let entry = dir_start + i * DIR_ENTRY_LEN;
            out[entry..entry + 8].copy_from_slice(&offset.to_le_bytes());
            out[entry + 8..entry + 16].copy_from_slice(&length.to_le_bytes());
        }
        out
    }

    /// Writes the file to `path`.
    ///
    /// # Errors
    ///
    /// I/O failures, as [`NctError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NctError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| io_err(&format!("write {}", path.display()), &e))
    }

    /// Parses a complete NCT file from bytes, validating every block of
    /// every stream (checksums, event counts, exact section lengths).
    ///
    /// # Errors
    ///
    /// The structured reason the bytes are not a valid NCT file.
    pub fn parse(bytes: &[u8]) -> Result<Self, NctError> {
        let mut cursor = bytes;
        let header = NctHeader::read_from(&mut cursor)?;
        let mut threads = Vec::with_capacity(usize::from(header.thread_count));
        for i in 0..header.thread_count {
            let (offset, length) = read_dir_entry(bytes, &header, i)?;
            let end = offset
                .checked_add(length)
                .ok_or_else(|| corrupt(format!("thread {i} section offset overflows u64")))?;
            if end > bytes.len() as u64 {
                return Err(truncated(format!(
                    "thread {i} section extends past end of file"
                )));
            }
            let section = &bytes[offset as usize..end as usize];
            threads.push(decode_section(section, i)?);
        }
        Self::new(header.asid, header.label, threads)
    }

    /// Reads and fully validates the NCT file at `path`.
    ///
    /// # Errors
    ///
    /// I/O failures and every decode error [`parse`](Self::parse) can
    /// return.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, NctError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), &e))?;
        Self::parse(&bytes)
    }
}

/// Reads thread `index`'s directory entry out of the full file bytes.
fn read_dir_entry(bytes: &[u8], header: &NctHeader, index: u16) -> Result<(u64, u64), NctError> {
    let at = header.dir_entry_offset(index) as usize;
    let entry = bytes
        .get(at..at + DIR_ENTRY_LEN)
        .ok_or_else(|| truncated(format!("directory entry for thread {index} ends early")))?;
    let mut off = [0u8; 8];
    let mut len = [0u8; 8];
    off.copy_from_slice(&entry[0..8]);
    len.copy_from_slice(&entry[8..16]);
    Ok((u64::from_le_bytes(off), u64::from_le_bytes(len)))
}

/// Appends one thread section (frame table, event count, blocks) to `out`.
fn encode_section(out: &mut Vec<u8>, stream: &ThreadStream) {
    write_uvarint(out, stream.superpage_frames.len() as u64);
    let mut prev = 0u64;
    for (i, &frame) in stream.superpage_frames.iter().enumerate() {
        // BTreeSet iteration is ascending, so deltas are ≥ 1 after the
        // first (absolute) value.
        write_uvarint(out, if i == 0 { frame } else { frame - prev });
        prev = frame;
    }
    write_uvarint(out, stream.events.len() as u64);
    for chunk in stream.events.chunks(WRITER_BLOCK_EVENTS) {
        let payload = encode_block(chunk);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

/// Decodes one complete thread section, validating checksums and counts.
fn decode_section(section: &[u8], thread: u16) -> Result<ThreadStream, NctError> {
    let mut pos = 0usize;
    let superpage_frames = decode_frame_table(section, &mut pos, thread)?;
    let event_count = read_uvarint(section, &mut pos)?;
    if event_count == 0 {
        return Err(corrupt(format!("thread {thread} has zero events")));
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut block = 0usize;
    while (events.len() as u64) < event_count {
        let (payload, block_events) = next_block(section, &mut pos, thread, block)?;
        if events.len() as u64 + block_events as u64 > event_count {
            return Err(corrupt(format!(
                "thread {thread} blocks hold more events than the declared {event_count}"
            )));
        }
        events.extend(decode_block(payload, block_events)?);
        block += 1;
    }
    if pos != section.len() {
        return Err(corrupt(format!(
            "thread {thread} section has {} trailing byte(s)",
            section.len() - pos
        )));
    }
    Ok(ThreadStream {
        superpage_frames,
        events,
    })
}

/// Decodes the delta-coded, strictly ascending superpage frame table.
pub(crate) fn decode_frame_table(
    section: &[u8],
    pos: &mut usize,
    thread: u16,
) -> Result<BTreeSet<u64>, NctError> {
    let frame_count = read_uvarint(section, pos)?;
    let mut frames = BTreeSet::new();
    let mut prev = 0u64;
    for i in 0..frame_count {
        let raw = read_uvarint(section, pos)?;
        let frame = if i == 0 {
            raw
        } else {
            if raw == 0 {
                return Err(corrupt(format!(
                    "thread {thread} frame table is not strictly ascending"
                )));
            }
            prev.checked_add(raw)
                .ok_or_else(|| corrupt(format!("thread {thread} frame table overflows u64")))?
        };
        frames.insert(frame);
        prev = frame;
    }
    Ok(frames)
}

/// Reads the next block header + checksummed payload from a section
/// slice, advancing `*pos` past it.
pub(crate) fn next_block<'a>(
    section: &'a [u8],
    pos: &mut usize,
    thread: u16,
    block: usize,
) -> Result<(&'a [u8], usize), NctError> {
    let header = section
        .get(*pos..*pos + BLOCK_HEADER_LEN)
        .ok_or_else(|| truncated(format!("thread {thread} block {block} header ends early")))?;
    *pos += BLOCK_HEADER_LEN;
    let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let block_events = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&header[8..16]);
    let checksum = u64::from_le_bytes(sum);
    if payload_len == 0 || block_events == 0 {
        return Err(corrupt(format!(
            "thread {thread} block {block} declares an empty payload or zero events"
        )));
    }
    let payload = section
        .get(*pos..*pos + payload_len)
        .ok_or_else(|| truncated(format!("thread {thread} block {block} payload ends early")))?;
    *pos += payload_len;
    if fnv1a64(payload) != checksum {
        return Err(NctError::ChecksumMismatch { thread, block });
    }
    Ok((payload, block_events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::ThreadId;

    fn access(va: u64, write: bool, gap: u64) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            va: VirtAddr::new(va),
            is_write: write,
            gap: Cycles::new(gap),
        })
    }

    #[test]
    fn uvarint_spec_vectors() {
        for (value, bytes) in [
            (0u64, vec![0x00u8]),
            (0x7F, vec![0x7F]),
            (0x80, vec![0x80, 0x01]),
            (0x4000, vec![0x80, 0x80, 0x01]),
            (
                u64::MAX,
                vec![0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01],
            ),
        ] {
            let mut out = Vec::new();
            write_uvarint(&mut out, value);
            assert_eq!(out, bytes, "encoding {value:#x}");
            let mut pos = 0;
            assert_eq!(read_uvarint(&out, &mut pos).unwrap(), value);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overlength() {
        let mut pos = 0;
        assert!(matches!(
            read_uvarint(&[0x80], &mut pos),
            Err(NctError::Truncated(_))
        ));
        let eleven = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_uvarint(&eleven, &mut pos),
            Err(NctError::Corrupt(_))
        ));
        // 10th byte may only carry one bit.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut pos = 0;
        assert!(matches!(
            read_uvarint(&overflow, &mut pos),
            Err(NctError::Corrupt(_))
        ));
        // Non-shortest: 0x80 0x00 encodes 0 in two bytes.
        let mut pos = 0;
        assert!(matches!(
            read_uvarint(&[0x80, 0x00], &mut pos),
            Err(NctError::Corrupt(_))
        ));
    }

    #[test]
    fn zigzag_spec_vectors() {
        for (n, z) in [
            (0i64, 0u64),
            (-1, 1),
            (1, 2),
            (-2, 3),
            (i64::MAX, u64::MAX - 1),
        ] {
            assert_eq!(zigzag(n), z);
            assert_eq!(unzigzag(z), n);
        }
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of the empty string is the offset basis; of "a" it is
        // the published 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn block_round_trips_every_event_kind() {
        let events = vec![
            access(0x2000, false, 5),
            access(0x20_3008, true, 2),
            TraceEvent::ContextSwitch,
            TraceEvent::Remap(VirtPageNum::new(77, PageSize::Size4K)),
            TraceEvent::Promote(VirtPageNum::new(1, PageSize::Size2M)),
            TraceEvent::Demote(VirtPageNum::new(3, PageSize::Size1G)),
            access(0x1000, false, 0),         // backwards delta
            access(u64::MAX, true, u64::MAX), // extreme values
        ];
        let payload = encode_block(&events);
        assert_eq!(decode_block(&payload, events.len()).unwrap(), events);
    }

    #[test]
    fn decode_rejects_bad_tags_and_trailing_bytes() {
        assert!(matches!(
            decode_block(&[0x09], 1),
            Err(NctError::Corrupt(_))
        ));
        let mut payload = encode_block(&[TraceEvent::ContextSwitch]);
        payload.push(0x00);
        assert!(matches!(
            decode_block(&payload, 1),
            Err(NctError::Corrupt(_))
        ));
        // Page-size index out of table range.
        assert!(matches!(
            decode_block(&[0x03, 0x03, 0x01], 1),
            Err(NctError::Corrupt(_))
        ));
    }

    fn tiny_file() -> NctFile {
        let stream = ThreadStream {
            superpage_frames: [1u64].into_iter().collect(),
            events: vec![
                access(0x2000, false, 5),
                access(0x20_3008, true, 2),
                TraceEvent::Promote(VirtPageNum::new(1, PageSize::Size2M)),
            ],
        };
        NctFile::new(Asid::new(7), "example", vec![stream]).unwrap()
    }

    #[test]
    fn file_round_trips_through_bytes() {
        let file = tiny_file();
        let bytes = file.to_bytes();
        let back = NctFile::parse(&bytes).unwrap();
        assert_eq!(back, file);
        // Determinism: re-serializing reproduces the bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn multi_block_streams_round_trip() {
        let events: Vec<TraceEvent> = (0..(WRITER_BLOCK_EVENTS * 2 + 17))
            .map(|i| access(0x1000 * i as u64, i % 3 == 0, i as u64 % 9))
            .collect();
        let file = NctFile::new(
            Asid::new(2),
            "big",
            vec![ThreadStream {
                superpage_frames: BTreeSet::new(),
                events: events.clone(),
            }],
        )
        .unwrap();
        let back = NctFile::parse(&file.to_bytes()).unwrap();
        assert_eq!(back.threads()[0].events, events);
    }

    #[test]
    fn header_errors_are_structured() {
        let file = tiny_file();
        let good = file.to_bytes();

        assert!(matches!(NctFile::parse(&[]), Err(NctError::Truncated(_))));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            NctFile::parse(&bad_magic),
            Err(NctError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[8] = 9;
        assert!(matches!(
            NctFile::parse(&bad_version),
            Err(NctError::UnsupportedVersion(9))
        ));

        let mut bad_reserved = good.clone();
        bad_reserved[20] = 1;
        assert!(matches!(
            NctFile::parse(&bad_reserved),
            Err(NctError::Corrupt(_))
        ));

        let mut bad_table = good.clone();
        bad_table[16] = 22;
        assert!(matches!(
            NctFile::parse(&bad_table),
            Err(NctError::Corrupt(_))
        ));

        let truncated = &good[..good.len() - 3];
        assert!(matches!(
            NctFile::parse(truncated),
            Err(NctError::Truncated(_))
        ));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            NctFile::parse(&flipped),
            Err(NctError::ChecksumMismatch {
                thread: 0,
                block: 0
            })
        ));
    }

    #[test]
    fn recorded_conversion_round_trips() {
        let spec = crate::preset::Preset::Canneal.spec();
        let recorded: Vec<RecordedTrace> = (0..2)
            .map(|t| {
                let mut live = spec.trace(Asid::new(3), ThreadId::new(t), 11, true);
                RecordedTrace::capture(&mut live, 300)
            })
            .collect();
        let file = NctFile::from_recorded(&recorded, "canneal").unwrap();
        assert_eq!(file.label(), "canneal");
        for (t, original) in recorded.iter().enumerate() {
            assert_eq!(&file.to_recorded(t as u16).unwrap(), original);
        }
        assert!(matches!(
            file.to_recorded(2),
            Err(NctError::BadThreadIndex {
                requested: 2,
                available: 2
            })
        ));
    }

    #[test]
    fn mismatched_asids_rejected() {
        let spec = crate::preset::Preset::Gups.spec();
        let a =
            RecordedTrace::capture(&mut spec.trace(Asid::new(1), ThreadId::new(0), 1, true), 10);
        let b =
            RecordedTrace::capture(&mut spec.trace(Asid::new(2), ThreadId::new(0), 1, true), 10);
        assert!(matches!(
            NctFile::from_recorded(&[a, b], "mixed"),
            Err(NctError::Corrupt(_))
        ));
        assert!(matches!(
            NctFile::from_recorded(&[], "none"),
            Err(NctError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = NctError::ChecksumMismatch {
            thread: 3,
            block: 9,
        };
        assert!(e.to_string().contains("thread 3"));
        assert!(NctError::BadMagic.to_string().contains("magic"));
        assert!(NctError::UnsupportedVersion(4).to_string().contains('4'));
    }
}
