//! The paper's two pathological stress microbenchmarks (§V).
//!
//! * [`StormTrace`] — the **TLB storm**: a workload runs while the OS
//!   context-switches aggressively (every switch flushes all non-global
//!   TLB contents) and a co-runner continuously allocates 4 KiB pages,
//!   promotes them to 2 MiB superpages, and breaks them apart again —
//!   each promotion invalidating 512 distinct L2 TLB entries.
//! * [`SliceHammerTrace`] — the **TLB slice** stress: N−1 threads all
//!   access pages whose low VPN bits index a single victim slice, creating
//!   maximal per-slice congestion.

use crate::generator::SyntheticTrace;
use crate::trace::{MemAccess, TraceEvent, TraceSource};
use nocstar_types::time::Cycles;
use nocstar_types::{Asid, PageSize, ThreadId, VirtAddr, VirtPageNum};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Wraps a workload trace with context-switch flushes and
/// promote/demote invalidation storms.
///
/// Every `ctx_switch_interval` events the thread suffers a context switch;
/// every `churn_interval` events the co-running microbenchmark promotes a
/// fresh 2 MiB region (and demotes the previous one), generating the
/// paper's "massive number of TLB misses and invalidations".
#[derive(Debug, Clone)]
pub struct StormTrace {
    inner: SyntheticTrace,
    ctx_switch_interval: u64,
    churn_interval: u64,
    events: u64,
    churn_cursor: u64,
    pending: Vec<TraceEvent>,
}

impl StormTrace {
    /// Base of the 2 MiB regions the churn microbenchmark cycles through
    /// (inside the shared region's address space but beyond workload pages).
    const CHURN_BASE: u64 = 0x80_0000_0000;

    /// Builds a storm around `inner`.
    ///
    /// The paper context-switches every 0.5 ms (10⁶ cycles at 2 GHz); with
    /// memory ops every ~10 cycles that is roughly one switch per 10⁵
    /// events. Tests and quick runs use smaller intervals.
    ///
    /// # Panics
    ///
    /// Panics if either interval is zero.
    pub fn new(inner: SyntheticTrace, ctx_switch_interval: u64, churn_interval: u64) -> Self {
        assert!(
            ctx_switch_interval > 0 && churn_interval > 0,
            "storm intervals must be nonzero"
        );
        Self {
            inner,
            ctx_switch_interval,
            churn_interval,
            events: 0,
            churn_cursor: 0,
            pending: Vec::new(),
        }
    }

    fn churn_region(&self, index: u64) -> VirtPageNum {
        VirtAddr::new(Self::CHURN_BASE + index * (2 << 20)).page_number(PageSize::Size2M)
    }
}

impl TraceSource for StormTrace {
    fn next_event(&mut self) -> TraceEvent {
        if let Some(event) = self.pending.pop() {
            return event;
        }
        self.events += 1;
        if self.events.is_multiple_of(self.ctx_switch_interval) {
            return TraceEvent::ContextSwitch;
        }
        if self.events.is_multiple_of(self.churn_interval) {
            // Promote a fresh region now; demote it next churn so the
            // promote/demote cycle continuously invalidates translations.
            let promote = self.churn_region(self.churn_cursor);
            if self.churn_cursor > 0 {
                self.pending
                    .push(TraceEvent::Demote(self.churn_region(self.churn_cursor - 1)));
            }
            self.churn_cursor += 1;
            return TraceEvent::Promote(promote);
        }
        self.inner.next_event()
    }

    fn backing(&self, va: VirtAddr) -> PageSize {
        if va.value() >= Self::CHURN_BASE {
            // Churn pages start life as 4 KiB allocations.
            PageSize::Size4K
        } else {
            self.inner.backing(va)
        }
    }

    fn asid(&self) -> Asid {
        self.inner.asid()
    }
}

/// N−1 threads hammering the L2 TLB slice of one victim core.
///
/// Pages are chosen so `vpn % num_slices == victim_slice`, defeating the
/// low-bit slice striping on purpose.
#[derive(Debug, Clone)]
pub struct SliceHammerTrace {
    asid: Asid,
    victim_slice: usize,
    num_slices: usize,
    pages: u64,
    gap: u64,
    rng: SmallRng,
}

impl SliceHammerTrace {
    const BASE: u64 = 0x20_0000_0000;

    /// Builds the hammer for one attacking thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero, `victim_slice` is out of range, or
    /// `pages` is zero.
    pub fn new(
        asid: Asid,
        thread: ThreadId,
        victim_slice: usize,
        num_slices: usize,
        pages: u64,
        seed: u64,
    ) -> Self {
        assert!(num_slices > 0, "need at least one slice");
        assert!(victim_slice < num_slices, "victim slice out of range");
        assert!(pages > 0, "need at least one page to hammer");
        Self {
            asid,
            victim_slice,
            num_slices,
            pages,
            gap: 6,
            rng: SmallRng::seed_from_u64(seed ^ (thread.index() as u64) << 32),
        }
    }

    /// The `k`-th page this trace can touch — always homed on the victim.
    pub fn page(&self, k: u64) -> VirtPageNum {
        let base_page = Self::BASE >> 12;
        // base_page is slice-0 aligned (BASE is a multiple of 4096*slices
        // for any power-of-two slice count; correct generally below).
        let aligned = base_page - (base_page % self.num_slices as u64);
        VirtPageNum::new(
            aligned + self.victim_slice as u64 + k * self.num_slices as u64,
            PageSize::Size4K,
        )
    }
}

impl TraceSource for SliceHammerTrace {
    fn next_event(&mut self) -> TraceEvent {
        let k = self.rng.gen_range(0..self.pages);
        let offset = u64::from(self.rng.gen::<u16>()) & 0xff8;
        TraceEvent::Access(MemAccess {
            va: VirtAddr::new(self.page(k).base().value() + offset),
            is_write: false,
            gap: Cycles::new(self.gap),
        })
    }

    fn backing(&self, _va: VirtAddr) -> PageSize {
        PageSize::Size4K
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::Preset;

    fn storm(ctx: u64, churn: u64) -> StormTrace {
        let inner = Preset::Canneal
            .spec()
            .trace(Asid::new(1), ThreadId::new(0), 4, true);
        StormTrace::new(inner, ctx, churn)
    }

    #[test]
    fn context_switches_appear_on_schedule() {
        let mut t = storm(10, 1_000_000);
        let mut switches = 0;
        for _ in 0..100 {
            if matches!(t.next_event(), TraceEvent::ContextSwitch) {
                switches += 1;
            }
        }
        assert_eq!(switches, 10);
    }

    #[test]
    fn churn_promotes_then_demotes_previous_region() {
        let mut t = storm(1_000_000, 5);
        let mut promotes = Vec::new();
        let mut demotes = Vec::new();
        for _ in 0..40 {
            match t.next_event() {
                TraceEvent::Promote(v) => promotes.push(v),
                TraceEvent::Demote(v) => demotes.push(v),
                _ => {}
            }
        }
        assert!(promotes.len() >= 3);
        // Each demote targets the previously promoted region.
        for (d, p) in demotes.iter().zip(&promotes) {
            assert_eq!(d, p);
        }
        // Promoted regions are distinct 2M pages.
        assert_ne!(promotes[0], promotes[1]);
        assert_eq!(promotes[0].page_size(), PageSize::Size2M);
    }

    #[test]
    fn storm_churn_addresses_start_as_base_pages() {
        let t = storm(100, 100);
        let churn_va = VirtAddr::new(StormTrace::CHURN_BASE + 0x1234);
        assert_eq!(t.backing(churn_va), PageSize::Size4K);
    }

    #[test]
    fn hammer_pages_all_map_to_the_victim_slice() {
        let t = SliceHammerTrace::new(Asid::new(2), ThreadId::new(3), 5, 32, 100, 9);
        for k in 0..100 {
            assert_eq!(t.page(k).number() % 32, 5);
        }
    }

    #[test]
    fn hammer_emits_accesses_to_victim_pages_only() {
        let mut t = SliceHammerTrace::new(Asid::new(2), ThreadId::new(0), 7, 16, 50, 1);
        for _ in 0..200 {
            match t.next_event() {
                TraceEvent::Access(a) => {
                    let vpn = a.va.page_number(PageSize::Size4K);
                    assert_eq!(vpn.number() % 16, 7);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn hammer_works_with_non_power_of_two_slices() {
        let t = SliceHammerTrace::new(Asid::new(2), ThreadId::new(0), 2, 12, 10, 1);
        for k in 0..10 {
            assert_eq!(t.page(k).number() % 12, 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_victim_rejected() {
        let _ = SliceHammerTrace::new(Asid::new(1), ThreadId::new(0), 32, 32, 10, 0);
    }
}
