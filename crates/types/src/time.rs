//! Simulation time: absolute cycles and cycle durations.
//!
//! [`Cycle`] is a point on the global clock; [`Cycles`] is a duration.
//! Keeping them distinct catches the classic bug of adding two timestamps.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, in clock cycles since reset.
///
/// ```
/// use nocstar_types::time::{Cycle, Cycles};
/// let t = Cycle::ZERO + Cycles::new(10);
/// assert_eq!(t - Cycle::ZERO, Cycles::new(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

/// A duration measured in clock cycles.
///
/// ```
/// use nocstar_types::time::Cycles;
/// assert_eq!(Cycles::new(3) + Cycles::new(4), Cycles::new(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycle {
    /// Simulation start.
    pub const ZERO: Cycle = Cycle(0);

    /// Wraps a raw cycle count since reset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw cycle count since reset.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Cycle) -> Cycles {
        debug_assert!(earlier <= self, "since() called with a later cycle");
        Cycles(self.0 - earlier.0)
    }
}

impl Cycles {
    /// The zero-length duration.
    pub const ZERO: Cycles = Cycles(0);
    /// One clock cycle.
    pub const ONE: Cycles = Cycles(1);

    /// Wraps a raw duration in cycles.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw duration in cycles.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub const fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;
    fn sub(self, rhs: Cycle) -> Cycles {
        self.since(rhs)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(rhs <= self, "Cycles subtraction underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        debug_assert!(rhs <= *self, "Cycles subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_plus_duration_advances() {
        let mut t = Cycle::new(5);
        t += Cycles::new(3);
        assert_eq!(t, Cycle::new(8));
        assert_eq!(t + Cycles::ONE, Cycle::new(9));
    }

    #[test]
    fn difference_of_cycles_is_a_duration() {
        assert_eq!(Cycle::new(12) - Cycle::new(4), Cycles::new(8));
        assert_eq!(Cycle::new(4).since(Cycle::new(4)), Cycles::ZERO);
    }

    #[test]
    fn durations_form_a_monoid() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(Cycles::ZERO + total, total);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycles::new(2).saturating_sub(Cycles::new(5)), Cycles::ZERO);
        assert_eq!(
            Cycles::new(5).saturating_sub(Cycles::new(2)),
            Cycles::new(3)
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_on_time_travel() {
        let _ = Cycle::new(1).since(Cycle::new(2));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "@7");
        assert_eq!(Cycles::new(7).to_string(), "7cy");
    }
}
