//! Virtual/physical addresses, page numbers and page sizes.
//!
//! Addresses are 64-bit. Page numbers are always paired with a
//! [`PageSize`]: a [`VirtPageNum`] produced with [`PageSize::Size2M`] counts
//! 2 MiB-aligned frames, not 4 KiB ones. Mixing page sizes is therefore a
//! type-visible operation (`vpn.page_size()`), which mirrors how the
//! hardware keeps separate TLB arrays per page size.

use std::fmt;

/// Page size supported by the simulated x86-64-style MMU.
///
/// # Examples
///
/// ```
/// use nocstar_types::addr::PageSize;
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size4K.shift(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB base page.
    Size4K,
    /// 2 MiB superpage (leaf at the page-directory level).
    Size2M,
    /// 1 GiB superpage (leaf at the PDPT level).
    Size1G,
}

impl PageSize {
    /// All supported page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// The log2 of the page size in bytes.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Number of 4 KiB base pages this page covers.
    ///
    /// ```
    /// use nocstar_types::addr::PageSize;
    /// assert_eq!(PageSize::Size2M.base_pages(), 512);
    /// ```
    #[inline]
    pub const fn base_pages(self) -> u64 {
        1 << (self.shift() - 12)
    }

    /// Number of radix page-table levels walked to reach a leaf of this size
    /// in a 4-level x86-64-style table (PML4 → PDPT → PD → PT).
    #[inline]
    pub const fn walk_levels(self) -> usize {
        match self {
            PageSize::Size4K => 4,
            PageSize::Size2M => 3,
            PageSize::Size1G => 2,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw 64-bit address value.
            #[inline]
            pub const fn value(self) -> u64 {
                self.0
            }

            /// The offset of this address within a page of the given size.
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Returns this address advanced by `bytes`.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                Self(self.0.wrapping_add(bytes))
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype! {
    /// A virtual (pre-translation) byte address.
    ///
    /// ```
    /// use nocstar_types::addr::{PageSize, VirtAddr};
    /// let va = VirtAddr::new(0x2001);
    /// assert_eq!(va.page_offset(PageSize::Size4K), 1);
    /// ```
    VirtAddr
}

addr_newtype! {
    /// A physical (post-translation) byte address.
    ///
    /// ```
    /// use nocstar_types::addr::PhysAddr;
    /// assert_eq!(PhysAddr::new(0x1000).offset(0x10).value(), 0x1010);
    /// ```
    PhysAddr
}

impl VirtAddr {
    /// The virtual page number containing this address at the given size.
    #[inline]
    pub const fn page_number(self, size: PageSize) -> VirtPageNum {
        VirtPageNum::new(self.0 >> size.shift(), size)
    }
}

impl PhysAddr {
    /// The physical page number containing this address at the given size.
    #[inline]
    pub const fn page_number(self, size: PageSize) -> PhysPageNum {
        PhysPageNum::new(self.0 >> size.shift(), size)
    }
}

macro_rules! page_num_newtype {
    ($(#[$meta:meta])* $name:ident, $addr:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name {
            number: u64,
            size: PageSize,
        }

        impl $name {
            /// Builds a page number from a raw frame index and page size.
            #[inline]
            pub const fn new(number: u64, size: PageSize) -> Self {
                Self { number, size }
            }

            /// The frame index (address >> page shift).
            #[inline]
            pub const fn number(self) -> u64 {
                self.number
            }

            /// The page size this number is counted in.
            #[inline]
            pub const fn page_size(self) -> PageSize {
                self.size
            }

            /// The first byte address of this page.
            #[inline]
            pub const fn base(self) -> $addr {
                $addr::new(self.number << self.size.shift())
            }

            /// Re-expresses this page number in units of 4 KiB base pages.
            ///
            /// A 2 MiB page at frame 1 starts at base-page frame 512.
            #[inline]
            pub const fn to_base_pages(self) -> u64 {
                self.number << (self.size.shift() - 12)
            }

            /// Returns the page `delta` frames after this one (same size).
            /// `delta` may be negative.
            #[inline]
            pub const fn stride(self, delta: i64) -> Self {
                Self {
                    number: self.number.wrapping_add(delta as u64),
                    size: self.size,
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{:#x}", self.size, self.number)
            }
        }
    };
}

page_num_newtype! {
    /// A virtual page number, tagged with its page size.
    ///
    /// ```
    /// use nocstar_types::addr::{PageSize, VirtAddr};
    /// let vpn = VirtAddr::new(0x40_0000).page_number(PageSize::Size2M);
    /// assert_eq!(vpn.number(), 2);
    /// assert_eq!(vpn.to_base_pages(), 1024);
    /// ```
    VirtPageNum, VirtAddr
}

page_num_newtype! {
    /// A physical page (frame) number, tagged with its page size.
    ///
    /// ```
    /// use nocstar_types::addr::{PageSize, PhysPageNum};
    /// let ppn = PhysPageNum::new(3, PageSize::Size4K);
    /// assert_eq!(ppn.base().value(), 0x3000);
    /// ```
    PhysPageNum, PhysAddr
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn page_size_constants_are_consistent() {
        for size in PageSize::ALL {
            assert_eq!(size.bytes(), 1u64 << size.shift());
            assert_eq!(size.base_pages() * PageSize::Size4K.bytes(), size.bytes());
        }
    }

    #[test]
    fn walk_levels_match_x86_64() {
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
        assert_eq!(PageSize::Size1G.walk_levels(), 2);
    }

    #[test]
    fn page_number_and_offset_partition_an_address() {
        let va = VirtAddr::new(0xdead_beef);
        for size in PageSize::ALL {
            let reconstructed = va.page_number(size).base().value() + va.page_offset(size);
            assert_eq!(reconstructed, va.value());
        }
    }

    #[test]
    fn stride_moves_by_whole_pages() {
        let vpn = VirtAddr::new(0x10_0000).page_number(PageSize::Size4K);
        assert_eq!(vpn.stride(1).base().value(), 0x10_1000);
        assert_eq!(vpn.stride(-1).base().value(), 0xff000);
    }

    #[test]
    fn display_formats_are_nonempty_and_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0x1000)), "0x1000");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
        assert_eq!(
            format!("{}", VirtPageNum::new(5, PageSize::Size2M)),
            "2M#0x5"
        );
    }

    #[test]
    fn conversions_round_trip() {
        let raw = 0x1234_5678_9abcu64;
        assert_eq!(u64::from(VirtAddr::from(raw)), raw);
        assert_eq!(u64::from(PhysAddr::from(raw)), raw);
    }

    proptest! {
        #[test]
        fn prop_page_decomposition_round_trips(raw in any::<u64>()) {
            for size in PageSize::ALL {
                let va = VirtAddr::new(raw);
                let back = va.page_number(size).base().value()
                    .wrapping_add(va.page_offset(size));
                prop_assert_eq!(back, raw);
            }
        }

        #[test]
        fn prop_base_pages_orders_like_addresses(a in any::<u32>(), b in any::<u32>()) {
            let pa = VirtPageNum::new(a as u64, PageSize::Size2M);
            let pb = VirtPageNum::new(b as u64, PageSize::Size2M);
            prop_assert_eq!(
                pa.to_base_pages() <= pb.to_base_pages(),
                a <= b
            );
        }
    }
}
