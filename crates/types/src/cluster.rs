//! Cluster partitioning of a chip's tiles.
//!
//! Hierarchical interconnects group contiguous tiles into equal-sized
//! clusters: cluster `k` owns cores `[k * size, (k + 1) * size)`. At
//! 1000+ cores the `core -> cluster` and `cluster -> gateway` maps are on
//! the routing hot path, so they are precomputed into index-addressed
//! arrays here instead of being re-derived (or allocated) per message.

use crate::ids::CoreId;

/// An index-addressed partition of `cores` tiles into equal clusters.
///
/// # Examples
///
/// ```
/// use nocstar_types::cluster::ClusterMap;
/// use nocstar_types::CoreId;
///
/// let map = ClusterMap::new(64, 16);
/// assert_eq!(map.clusters(), 4);
/// assert_eq!(map.cluster_of(CoreId::new(37)), 2);
/// assert_eq!(map.gateway(2), CoreId::new(32));
/// assert!(map.same_cluster(CoreId::new(33), CoreId::new(47)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    cluster_size: usize,
    /// `core index -> cluster index`, flat (u32 keeps 1024-core maps in
    /// one cache line per 16 tiles).
    cluster_of: Vec<u32>,
    /// `cluster index -> gateway tile` (the cluster's first core, which
    /// hosts the overlay router port).
    gateways: Vec<CoreId>,
}

impl ClusterMap {
    /// Partitions `cores` tiles into clusters of `cluster_size`.
    ///
    /// # Panics
    ///
    /// Panics unless `cluster_size` is in `1..=cores` and evenly divides
    /// `cores` (ragged final clusters would leave set ranges without an
    /// intra-cluster home).
    pub fn new(cores: usize, cluster_size: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            cluster_size > 0 && cluster_size <= cores && cores.is_multiple_of(cluster_size),
            "cluster size {cluster_size} must evenly partition {cores} cores"
        );
        let clusters = cores / cluster_size;
        Self {
            cluster_size,
            cluster_of: (0..cores).map(|c| (c / cluster_size) as u32).collect(),
            gateways: (0..clusters)
                .map(|k| CoreId::new(k * cluster_size))
                .collect(),
        }
    }

    /// Total tiles covered by the partition.
    pub fn cores(&self) -> usize {
        self.cluster_of.len()
    }

    /// Tiles per cluster.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.gateways.len()
    }

    /// The cluster containing `core`.
    #[inline]
    pub fn cluster_of(&self, core: CoreId) -> usize {
        self.cluster_of[core.index()] as usize
    }

    /// The gateway tile of `cluster` (hosts the overlay port).
    #[inline]
    pub fn gateway(&self, cluster: usize) -> CoreId {
        self.gateways[cluster]
    }

    /// The first core index of `cluster`.
    #[inline]
    pub fn base(&self, cluster: usize) -> usize {
        cluster * self.cluster_size
    }

    /// Whether two tiles share a cluster.
    #[inline]
    pub fn same_cluster(&self, a: CoreId, b: CoreId) -> bool {
        self.cluster_of[a.index()] == self.cluster_of[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_contiguous() {
        let map = ClusterMap::new(48, 8);
        assert_eq!(map.clusters(), 6);
        for c in 0..48 {
            let k = map.cluster_of(CoreId::new(c));
            assert_eq!(k, c / 8);
            assert!(map.base(k) <= c && c < map.base(k) + map.cluster_size());
        }
    }

    #[test]
    fn gateways_are_cluster_bases() {
        let map = ClusterMap::new(64, 16);
        for k in 0..4 {
            assert_eq!(map.gateway(k).index(), k * 16);
            assert_eq!(map.cluster_of(map.gateway(k)), k);
        }
    }

    #[test]
    fn degenerate_single_tile_clusters() {
        let map = ClusterMap::new(4, 1);
        assert_eq!(map.clusters(), 4);
        assert!(!map.same_cluster(CoreId::new(0), CoreId::new(1)));
    }

    #[test]
    fn one_cluster_covers_the_chip() {
        let map = ClusterMap::new(16, 16);
        assert_eq!(map.clusters(), 1);
        assert!(map.same_cluster(CoreId::new(0), CoreId::new(15)));
    }

    #[test]
    #[should_panic(expected = "evenly partition")]
    fn ragged_partition_rejected() {
        let _ = ClusterMap::new(10, 4);
    }
}
