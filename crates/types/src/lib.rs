//! Shared vocabulary types for the NOCSTAR simulator workspace.
//!
//! This crate defines the strongly-typed building blocks that every other
//! crate in the workspace speaks in terms of:
//!
//! * [`addr`] — virtual/physical addresses and page numbers, plus
//!   [`addr::PageSize`] (4 KiB / 2 MiB / 1 GiB) arithmetic.
//! * [`ids`] — newtype identifiers for cores, TLB slices, banks, threads and
//!   address spaces.
//! * [`time`] — simulation time ([`time::Cycle`]) and durations
//!   ([`time::Cycles`]).
//! * [`geometry`] — 2-D mesh tile coordinates and XY-routing hop math.
//! * [`cluster`] — index-addressed partitioning of tiles into equal
//!   clusters (hierarchical interconnects).
//!
//! Everything here is plain data: `Copy`, `Ord`, `Hash`, `serde`-serializable
//! and free of behaviour beyond small arithmetic helpers, so the simulator
//! crates can exchange values without depending on each other.
//!
//! # Examples
//!
//! ```
//! use nocstar_types::addr::{PageSize, VirtAddr};
//! use nocstar_types::geometry::MeshShape;
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! let vpn = va.page_number(PageSize::Size4K);
//! assert_eq!(vpn.base().value(), 0x7f00_1234_5678 & !0xfff);
//!
//! // A 16-core chip is laid out as a 4x4 mesh; opposite corners are 6 hops apart.
//! let mesh = MeshShape::square_for(16);
//! assert_eq!(mesh.hops(0.into(), 15.into()), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cluster;
pub mod geometry;
pub mod ids;
pub mod time;

pub use addr::{PageSize, PhysAddr, PhysPageNum, VirtAddr, VirtPageNum};
pub use cluster::ClusterMap;
pub use geometry::{Coord, MeshShape};
pub use ids::{Asid, BankId, CoreId, SliceId, ThreadId};
pub use time::{Cycle, Cycles};
