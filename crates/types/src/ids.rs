//! Newtype identifiers for the hardware structures in the simulated chip.
//!
//! Each id wraps a dense `usize` index, so they double as array indices in
//! the simulator, while keeping a `CoreId` from being accidentally used
//! where a `SliceId` is expected.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(usize);

        impl $name {
            /// Wraps a dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The dense index, suitable for indexing per-unit arrays.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }

            /// Iterator over the first `count` ids: `0..count`.
            pub fn all(count: usize) -> impl Iterator<Item = Self> + Clone {
                (0..count).map(Self::new)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype! {
    /// A core (equivalently, a tile: every core sits on one mesh tile).
    ///
    /// ```
    /// use nocstar_types::ids::CoreId;
    /// let ids: Vec<_> = CoreId::all(3).collect();
    /// assert_eq!(ids[2].index(), 2);
    /// assert_eq!(ids[2].to_string(), "core2");
    /// ```
    CoreId, "core"
}

id_newtype! {
    /// A distributed shared-L2-TLB slice. In the distributed and NOCSTAR
    /// organizations there is one slice per core, co-located with it.
    SliceId, "slice"
}

id_newtype! {
    /// A bank of the monolithic shared L2 TLB.
    BankId, "bank"
}

id_newtype! {
    /// A hardware (SMT) thread context running on some core.
    ThreadId, "thread"
}

/// An address-space identifier (context id), stored alongside each TLB entry
/// so translations from different processes never alias (paper §III-A).
///
/// ```
/// use nocstar_types::ids::Asid;
/// assert_ne!(Asid::KERNEL, Asid::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(u16);

impl Asid {
    /// The address space shared by kernel mappings.
    pub const KERNEL: Asid = Asid(0);

    /// Wraps a raw ASID value.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// The raw ASID value.
    #[inline]
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

impl From<u16> for Asid {
    fn from(raw: u16) -> Self {
        Self(raw)
    }
}

/// `SliceId`s mirror `CoreId`s in per-core-slice organizations; conversions
/// make that co-location explicit at call sites.
impl From<CoreId> for SliceId {
    fn from(core: CoreId) -> Self {
        SliceId::new(core.index())
    }
}

/// The core a per-core slice is co-located with.
impl From<SliceId> for CoreId {
    fn from(slice: SliceId) -> Self {
        CoreId::new(slice.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        let core = CoreId::from(7usize);
        assert_eq!(usize::from(core), 7);
        assert_eq!(core.index(), 7);
    }

    #[test]
    fn all_enumerates_densely() {
        let slices: Vec<SliceId> = SliceId::all(4).collect();
        assert_eq!(slices.len(), 4);
        assert!(slices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_includes_kind_and_index() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(BankId::new(0).to_string(), "bank0");
        assert_eq!(ThreadId::new(12).to_string(), "thread12");
        assert_eq!(Asid::new(9).to_string(), "asid9");
    }

    #[test]
    fn slice_core_colocation_conversions() {
        let core = CoreId::new(5);
        let slice = SliceId::from(core);
        assert_eq!(slice.index(), 5);
        assert_eq!(CoreId::from(slice), core);
    }

    #[test]
    fn kernel_asid_is_zero() {
        assert_eq!(Asid::KERNEL.value(), 0);
        assert_eq!(Asid::default(), Asid::KERNEL);
    }
}
