//! 2-D mesh tile geometry and XY-routing hop math.
//!
//! Every core (and, in the distributed organizations, its co-located TLB
//! slice) occupies one tile of a `cols x rows` mesh. Tiles are numbered
//! row-major, so tile ids map directly to [`crate::ids::CoreId`] indices.

use crate::ids::CoreId;
use std::fmt;

/// A tile coordinate on the mesh: `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column index (0 = west edge).
    pub x: usize,
    /// Row index (0 = north edge).
    pub y: usize,
}

impl Coord {
    /// Builds a coordinate from column and row.
    #[inline]
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other` — the XY-routed hop count.
    #[inline]
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The shape of the on-chip mesh: `cols x rows` tiles, numbered row-major.
///
/// # Examples
///
/// ```
/// use nocstar_types::geometry::MeshShape;
/// use nocstar_types::ids::CoreId;
///
/// let mesh = MeshShape::square_for(32); // 8x4
/// assert_eq!((mesh.cols(), mesh.rows()), (8, 4));
/// let far = mesh.hops(CoreId::new(0), CoreId::new(31));
/// assert_eq!(far, 7 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshShape {
    cols: usize,
    rows: usize,
}

impl MeshShape {
    /// Builds a mesh with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        Self { cols, rows }
    }

    /// Builds the most-square mesh holding exactly `tiles` tiles, preferring
    /// wider-than-tall (cols >= rows), matching common tiled-CMP floorplans.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn square_for(tiles: usize) -> Self {
        assert!(tiles > 0, "mesh must have at least one tile");
        let mut rows = (tiles as f64).sqrt() as usize;
        while rows > 1 && !tiles.is_multiple_of(rows) {
            rows -= 1;
        }
        Self::new(tiles / rows, rows)
    }

    /// Number of columns.
    #[inline]
    pub const fn cols(self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub const fn rows(self) -> usize {
        self.rows
    }

    /// Total tile count.
    #[inline]
    pub const fn tiles(self) -> usize {
        self.cols * self.rows
    }

    /// The coordinate of a tile id (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn coord_of(self, core: CoreId) -> Coord {
        let i = core.index();
        assert!(i < self.tiles(), "tile {i} out of range for {self}");
        Coord::new(i % self.cols, i / self.cols)
    }

    /// The tile id at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn id_at(self, coord: Coord) -> CoreId {
        assert!(
            coord.x < self.cols && coord.y < self.rows,
            "coord {coord} outside {self}"
        );
        CoreId::new(coord.y * self.cols + coord.x)
    }

    /// XY-routed hop count between two tiles.
    #[inline]
    pub fn hops(self, from: CoreId, to: CoreId) -> usize {
        self.coord_of(from).manhattan(self.coord_of(to))
    }

    /// The tiles visited by dimension-ordered XY routing, from `from` to
    /// `to` inclusive of both endpoints: first along X, then along Y.
    ///
    /// ```
    /// use nocstar_types::geometry::{Coord, MeshShape};
    /// use nocstar_types::ids::CoreId;
    /// let mesh = MeshShape::new(4, 4);
    /// let path: Vec<Coord> = mesh.xy_path(CoreId::new(0), CoreId::new(9)).collect();
    /// assert_eq!(path, vec![
    ///     Coord::new(0, 0), Coord::new(1, 0), Coord::new(1, 1), Coord::new(1, 2),
    /// ]);
    /// ```
    pub fn xy_path(self, from: CoreId, to: CoreId) -> XyPath {
        XyPath {
            current: Some(self.coord_of(from)),
            dest: self.coord_of(to),
        }
    }

    /// The average XY hop count from a tile to all tiles (including itself),
    /// i.e. the expected distance of a uniform-random access.
    pub fn mean_hops_from(self, from: CoreId) -> f64 {
        let src = self.coord_of(from);
        let total: usize = (0..self.tiles())
            .map(|i| src.manhattan(self.coord_of(CoreId::new(i))))
            .sum();
        total as f64 / self.tiles() as f64
    }

    /// The worst-case (corner-to-corner) hop count.
    #[inline]
    pub const fn diameter(self) -> usize {
        (self.cols - 1) + (self.rows - 1)
    }

    /// The most central tile — where a monolithic shared structure would be
    /// placed to minimize average distance.
    pub fn center_tile(self) -> CoreId {
        self.id_at(Coord::new(self.cols / 2, self.rows / 2))
    }

    /// The tile at the middle of the south edge — the paper's monolithic
    /// shared TLB sits at one end of the chip (§II-C), so tiles at the top
    /// of a 64-core chip need ~8 hops each way.
    pub fn edge_tile(self) -> CoreId {
        self.id_at(Coord::new(self.cols / 2, self.rows - 1))
    }
}

impl fmt::Display for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.cols, self.rows)
    }
}

/// Iterator of tiles along a dimension-ordered XY route.
/// Produced by [`MeshShape::xy_path`].
#[derive(Debug, Clone)]
pub struct XyPath {
    current: Option<Coord>,
    dest: Coord,
}

impl Iterator for XyPath {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let here = self.current?;
        self.current = if here == self.dest {
            None
        } else if here.x != self.dest.x {
            let step = if self.dest.x > here.x { 1 } else { -1 };
            Some(Coord::new((here.x as isize + step) as usize, here.y))
        } else {
            let step = if self.dest.y > here.y { 1 } else { -1 };
            Some(Coord::new(here.x, (here.y as isize + step) as usize))
        };
        Some(here)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn square_for_prefers_square_factorizations() {
        assert_eq!(MeshShape::square_for(16), MeshShape::new(4, 4));
        assert_eq!(MeshShape::square_for(32), MeshShape::new(8, 4));
        assert_eq!(MeshShape::square_for(64), MeshShape::new(8, 8));
        assert_eq!(MeshShape::square_for(512), MeshShape::new(32, 16));
        // Primes degrade to a 1-row chain rather than panicking.
        assert_eq!(MeshShape::square_for(7), MeshShape::new(7, 1));
    }

    #[test]
    fn coord_id_round_trip() {
        let mesh = MeshShape::new(5, 3);
        for i in 0..mesh.tiles() {
            let id = CoreId::new(i);
            assert_eq!(mesh.id_at(mesh.coord_of(id)), id);
        }
    }

    #[test]
    fn xy_path_goes_x_first_then_y() {
        let mesh = MeshShape::new(4, 4);
        let path: Vec<Coord> = mesh.xy_path(CoreId::new(3), CoreId::new(12)).collect();
        // From (3,0) to (0,3): X decreases to 0, then Y increases to 3.
        assert_eq!(path.first(), Some(&Coord::new(3, 0)));
        assert_eq!(path.last(), Some(&Coord::new(0, 3)));
        assert_eq!(path.len(), 7); // 6 hops => 7 tiles
        let x_done = path.iter().position(|c| c.x == 0).unwrap();
        assert!(path[x_done..].iter().all(|c| c.x == 0));
    }

    #[test]
    fn self_path_is_single_tile() {
        let mesh = MeshShape::new(4, 4);
        let path: Vec<Coord> = mesh.xy_path(CoreId::new(5), CoreId::new(5)).collect();
        assert_eq!(path, vec![Coord::new(1, 1)]);
        assert_eq!(mesh.hops(CoreId::new(5), CoreId::new(5)), 0);
    }

    #[test]
    fn diameter_and_center() {
        let mesh = MeshShape::new(8, 8);
        assert_eq!(mesh.diameter(), 14);
        let center = mesh.coord_of(mesh.center_tile());
        assert_eq!(center, Coord::new(4, 4));
        let edge = mesh.coord_of(mesh.edge_tile());
        assert_eq!(edge.y, 7);
    }

    #[test]
    fn mean_hops_is_zero_on_single_tile() {
        assert_eq!(MeshShape::new(1, 1).mean_hops_from(CoreId::new(0)), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tile_panics() {
        MeshShape::new(2, 2).coord_of(CoreId::new(4));
    }

    proptest! {
        #[test]
        fn prop_path_length_matches_hops(
            tiles in 1usize..=64,
            a in 0usize..64,
            b in 0usize..64,
        ) {
            let mesh = MeshShape::square_for(tiles);
            let a = CoreId::new(a % tiles);
            let b = CoreId::new(b % tiles);
            let path: Vec<Coord> = mesh.xy_path(a, b).collect();
            prop_assert_eq!(path.len(), mesh.hops(a, b) + 1);
            // Consecutive tiles are mesh neighbours.
            for w in path.windows(2) {
                prop_assert_eq!(w[0].manhattan(w[1]), 1);
            }
            prop_assert_eq!(path[0], mesh.coord_of(a));
            prop_assert_eq!(*path.last().unwrap(), mesh.coord_of(b));
        }

        #[test]
        fn prop_hops_symmetric_and_bounded(
            tiles in 1usize..=128,
            a in 0usize..128,
            b in 0usize..128,
        ) {
            let mesh = MeshShape::square_for(tiles);
            let a = CoreId::new(a % tiles);
            let b = CoreId::new(b % tiles);
            prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
            prop_assert!(mesh.hops(a, b) <= mesh.diameter());
        }
    }
}
