//! Reactive fault recovery: the closed-loop counterpart to [`FaultPlan`].
//!
//! A fault plan is an open-loop schedule — it says *what breaks when*.
//! This module adds the deterministic *response*: a [`RecoveryPolicy`]
//! installed next to the plan tells each layer how to route around, re-home
//! past, or escalate out of an active fault, and a [`RecoveryStats`] block
//! accounts for every action taken so recovery latency is a first-class
//! measurement.
//!
//! Determinism: the policy is plain data (a handful of switches and one
//! threshold) and every recovery decision is a pure function of
//! `(plan, policy, cycle, message/slice id)` — the same inputs that drive
//! the faults themselves. No recovery action consults wall-clock time,
//! entropy, or iteration order over unordered containers, so a
//! recovery-enabled run is byte-identical across repeats and across
//! `--parallel-domains` just like a plain faulted run.
//!
//! [`FaultPlan`]: crate::FaultPlan

use crate::RetryPolicy;
use nocstar_stats::metrics::Log2Histogram;
use std::str::FromStr;

/// Which closed-loop responses are armed, and how aggressively messages
/// escalate off a faulted fast path.
///
/// The default policy is fully open-loop (everything off): installing it
/// is byte-identical to not installing a policy at all, mirroring
/// [`FaultPlan::is_empty`](crate::FaultPlan::is_empty).
///
/// # Examples
///
/// ```
/// use nocstar_faults::recovery::RecoveryPolicy;
///
/// let policy: RecoveryPolicy = "reroute; rehome; escalate=3".parse().unwrap();
/// assert!(policy.reroute && policy.rehome && !policy.failover);
/// assert_eq!(policy.escalate, Some(3));
/// assert!(policy.is_enabled());
/// assert!(!RecoveryPolicy::default().is_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryPolicy {
    /// Mesh/SMART/overlay fabrics route blocked flights around dead links
    /// via deterministic BFS detours, reverting to the static XY path as
    /// soon as the outage window ends.
    pub reroute: bool,
    /// Offline slices are re-homed to a deterministic backup slice with a
    /// coherent handoff; lookups follow the backup until the outage window
    /// ends, then home back.
    pub rehome: bool,
    /// Hierarchical clusters re-elect a surviving gateway tile when the
    /// static gateway's tile is offline, reverting when it recovers.
    pub failover: bool,
    /// Escalating retry: a fault-blocked message gives up on the fast
    /// fabric and takes the buffered multi-hop escape path after this many
    /// consecutive blocked attempts, instead of burning the plan's full
    /// retry budget on exponential backoff. `None` leaves the plan's
    /// [`RetryPolicy`] untouched.
    pub escalate: Option<u32>,
}

impl RecoveryPolicy {
    /// A policy with every response armed and a 3-attempt escalation
    /// threshold — the configuration the `recovery` bench measures.
    pub fn all() -> Self {
        Self {
            reroute: true,
            rehome: true,
            failover: true,
            escalate: Some(3),
        }
    }

    /// True when any closed-loop response is armed. Fast paths key off
    /// this so a disabled policy is bit-identical to no policy at all.
    pub fn is_enabled(&self) -> bool {
        self.reroute || self.rehome || self.failover || self.escalate.is_some()
    }

    /// The effective fault-retry bound under this policy: the plan's
    /// budget clamped by the escalation threshold. With escalation armed a
    /// permanent outage can no longer livelock on `retry=inf` — blocked
    /// messages always reach the escape path.
    pub fn effective_max_attempts(&self, retry: RetryPolicy) -> Option<u64> {
        let plan = retry.max_attempts.map(u64::from);
        match (self.escalate.map(u64::from), plan) {
            (Some(k), Some(m)) => Some(k.min(m)),
            (Some(k), None) => Some(k),
            (None, m) => m,
        }
    }

    /// Parses a recovery-policy spec. Clauses are `;`-separated:
    ///
    /// | clause | meaning |
    /// |---|---|
    /// | `reroute` | detour around dead links |
    /// | `rehome` | re-home offline slices to a backup slice |
    /// | `failover` | re-elect cluster gateways |
    /// | `escalate=N` | escape after `N` consecutive blocked attempts |
    /// | `all` | everything above with `escalate=3` |
    ///
    /// # Errors
    ///
    /// Returns the offending clause and its byte offset in the spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut policy = RecoveryPolicy::default();
        let mut offset = 0usize;
        for seg in spec.split(';') {
            let clause = seg.trim();
            if !clause.is_empty() {
                let at = offset + (seg.len() - seg.trim_start().len());
                policy
                    .parse_clause(clause)
                    .map_err(|e| format!("bad recovery clause `{clause}` at byte {at}: {e}"))?;
            }
            offset += seg.len() + 1;
        }
        Ok(policy)
    }

    fn parse_clause(&mut self, clause: &str) -> Result<(), String> {
        match clause {
            "reroute" => self.reroute = true,
            "rehome" => self.rehome = true,
            "failover" => self.failover = true,
            "all" => *self = Self::all(),
            _ => {
                let v = clause
                    .strip_prefix("escalate=")
                    .ok_or_else(|| "unknown clause".to_string())?;
                let n = v
                    .trim()
                    .parse::<u32>()
                    .map_err(|_| format!("`{v}` is not a number"))?;
                if n == 0 {
                    return Err("escalation threshold must be nonzero".to_string());
                }
                self.escalate = Some(n);
            }
        }
        Ok(())
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Counters and histograms for every closed-loop recovery action a
/// network model takes. Harvested into the metrics registry only when a
/// policy is armed *and* a fault plan is installed, so recovery-off
/// reports are byte-identical to the existing goldens.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Blocked flights successfully re-routed around a dead link.
    pub reroutes: u64,
    /// Extra hops the detour paths added over the static XY routes.
    pub detour_extra_hops: u64,
    /// Detour searches that found no fault-free path (the flight fell
    /// back to open-loop backoff/escape).
    pub reroute_failed: u64,
    /// Messages escalated to the escape path by the policy threshold
    /// before the plan's retry budget was exhausted.
    pub escalations: u64,
    /// Gateway re-elections performed (hierarchical fabrics).
    pub gateway_failovers: u64,
    /// Cycles from a flight first hitting a dead link to departing on its
    /// detour.
    pub detect_to_reroute: Log2Histogram,
}

impl RecoveryStats {
    /// True when no recovery action was ever taken.
    pub fn is_quiet(&self) -> bool {
        self.reroutes == 0
            && self.detour_extra_hops == 0
            && self.reroute_failed == 0
            && self.escalations == 0
            && self.gateway_failovers == 0
            && self.detect_to_reroute.count() == 0
    }

    /// Zeroes every counter (warmup boundary).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Folds another stats block into this one (hierarchical fabrics
    /// aggregate their overlay's stats with their own).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.reroutes += other.reroutes;
        self.detour_extra_hops += other.detour_extra_hops;
        self.reroute_failed += other.reroute_failed;
        self.escalations += other.escalations;
        self.gateway_failovers += other.gateway_failovers;
        self.detect_to_reroute.merge(&other.detect_to_reroute);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_disabled_and_transparent() {
        let policy = RecoveryPolicy::default();
        assert!(!policy.is_enabled());
        assert_eq!(
            policy.effective_max_attempts(RetryPolicy::default()),
            Some(16),
            "a disabled policy must not perturb the plan's retry budget"
        );
        assert_eq!(
            policy.effective_max_attempts(RetryPolicy { max_attempts: None }),
            None
        );
    }

    #[test]
    fn escalation_clamps_the_retry_budget() {
        let policy: RecoveryPolicy = "escalate=3".parse().unwrap();
        assert_eq!(
            policy.effective_max_attempts(RetryPolicy::default()),
            Some(3)
        );
        // Escalation also bounds an unbounded (retry=inf) plan.
        assert_eq!(
            policy.effective_max_attempts(RetryPolicy { max_attempts: None }),
            Some(3)
        );
        // A plan budget tighter than the threshold wins.
        let loose: RecoveryPolicy = "escalate=30".parse().unwrap();
        assert_eq!(
            loose.effective_max_attempts(RetryPolicy::default()),
            Some(16)
        );
    }

    #[test]
    fn spec_round_trips_every_clause_kind() {
        let policy = RecoveryPolicy::parse("reroute; rehome; failover; escalate=5").unwrap();
        assert!(policy.reroute && policy.rehome && policy.failover);
        assert_eq!(policy.escalate, Some(5));
        assert_eq!(RecoveryPolicy::parse("all").unwrap(), RecoveryPolicy::all());
        assert_eq!(
            RecoveryPolicy::parse("").unwrap(),
            RecoveryPolicy::default()
        );
    }

    #[test]
    fn spec_rejects_malformed_clauses_with_offsets() {
        for bad in ["bogus", "escalate=", "escalate=x", "escalate=0", "rehome!"] {
            assert!(
                RecoveryPolicy::parse(bad).is_err(),
                "`{bad}` should be rejected"
            );
        }
        let err = RecoveryPolicy::parse("reroute; bogus").unwrap_err();
        assert!(err.contains("`bogus`"), "names the clause: {err}");
        assert!(err.contains("at byte 9"), "locates the clause: {err}");
    }

    #[test]
    fn stats_quiet_reset_and_merge() {
        let mut a = RecoveryStats::default();
        assert!(a.is_quiet());
        a.reroutes = 2;
        a.detour_extra_hops = 4;
        a.detect_to_reroute.record(7);
        let mut b = RecoveryStats {
            escalations: 1,
            gateway_failovers: 3,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.reroutes, 2);
        assert_eq!(b.escalations, 1);
        assert_eq!(b.gateway_failovers, 3);
        assert_eq!(b.detect_to_reroute.count(), 1);
        assert!(!b.is_quiet());
        b.reset();
        assert!(b.is_quiet());
    }
}
