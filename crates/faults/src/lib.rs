//! Deterministic fault injection and structured simulation errors.
//!
//! NOCSTAR's claim rests on the interconnect staying near-single-cycle
//! under contention, so the simulator must be able to *stress* the fabric
//! — degrade links, deny circuit setups, spike walk latency, take slices
//! offline, storm shootdowns — and survive with a report instead of a
//! `panic!` or a hang. This crate defines:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic schedule of fault
//!   windows, queried by cycle. An empty plan is guaranteed zero-cost and
//!   bit-identical to a fault-free run.
//! * [`SimError`] — the structured error a simulation returns instead of
//!   panicking: livelock/deadlock/budget/protocol failures, each carrying
//!   a [`DiagSnapshot`] of pending messages, per-link state and
//!   event-queue depth at the moment of failure.
//! * [`FaultStats`] — counters and histograms every fault and recovery
//!   action feeds (denied setups, blocked links, escape fallbacks,
//!   retry/backoff accounting), harvested into the metrics registry.
//! * [`recovery`] — the closed-loop response layer: a [`RecoveryPolicy`]
//!   arms adaptive re-routing, slice re-homing, gateway failover and
//!   escalating retry against an installed plan, with every action
//!   accounted in [`RecoveryStats`].
//!
//! Determinism: every decision is a pure function of `(plan, cycle,
//! message id)`. The same plan and seed always produce byte-identical
//! reports; the plan holds no RNG state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;

pub use recovery::{RecoveryPolicy, RecoveryStats};

use nocstar_stats::metrics::Log2Histogram;
use std::fmt;
use std::str::FromStr;

/// A half-open window of simulated cycles `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleWindow {
    /// First cycle the window covers.
    pub start: u64,
    /// First cycle *after* the window.
    pub end: u64,
}

impl CycleWindow {
    /// Builds a window; `end <= start` yields an empty window.
    pub const fn new(start: u64, end: u64) -> Self {
        Self { start, end }
    }

    /// Whether `cycle` falls inside the window.
    #[inline]
    pub const fn contains(&self, cycle: u64) -> bool {
        self.start <= cycle && cycle < self.end
    }

    /// The number of cycles covered.
    pub const fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the window covers no cycles.
    pub const fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// What an injected link fault does to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// The link is unusable: no flit may be granted across it.
    Outage,
    /// The link still works but each traversal costs this many extra
    /// cycles (marginal voltage, re-timed repeater, partial lane failure).
    Degrade(u64),
}

/// One link fault: a kind applied to a link (or all links) over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Directed link index, or `None` for every link.
    pub link: Option<usize>,
    /// When the fault is active.
    pub window: CycleWindow,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    #[inline]
    fn applies(&self, link: usize, cycle: u64) -> bool {
        self.window.contains(cycle) && self.link.is_none_or(|l| l == link)
    }
}

/// A page-walk latency spike: every walk started inside the window costs
/// `multiplier` times its modelled latency (DRAM refresh storms, thermal
/// throttling of the memory controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkSpike {
    /// When walks are slow.
    pub window: CycleWindow,
    /// Latency multiplier (`>= 1`; `1` is a no-op).
    pub multiplier: u64,
}

/// A slice-offline window: the L2 structure serves no lookups and accepts
/// no inserts (miss-only degraded mode); translations fall back to the
/// page walker. Invalidations still apply, so correctness is preserved
/// when the slice comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOffline {
    /// Structure index (slice or bank).
    pub slice: usize,
    /// When the slice is offline.
    pub window: CycleWindow,
}

/// A whole-cluster-offline window for hierarchical organizations: every
/// slice of cluster `cluster` (under clusters of `size` contiguous
/// tiles) is offline, miss-only, over the window. Self-contained — the
/// clause carries its own cluster size, so parsing stays order-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOffline {
    /// Cluster index.
    pub cluster: usize,
    /// Tiles per cluster the index refers to.
    pub size: usize,
    /// When the cluster is offline.
    pub window: CycleWindow,
}

/// How a fault-blocked message retries before escaping to the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Fault-caused attempts before a message gives up on the fast fabric
    /// and is delivered over the buffered multi-hop escape path. `None`
    /// retries forever (a permanent outage then livelocks — which the
    /// simulator's watchdog reports as [`SimError::Livelock`]).
    pub max_attempts: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: Some(16),
        }
    }
}

/// A deterministic, seeded schedule of injected faults.
///
/// All queries are pure functions of the plan and the cycle, so a plan
/// can be shared (cloned) between the simulator core and the network
/// models without coordination.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Jitter seed for retry backoff (not an RNG: backoff is a hash of
    /// `(seed, message id, attempt)`).
    pub seed: u64,
    /// Link outages and degradations.
    pub link_faults: Vec<LinkFault>,
    /// Windows during which *all* circuit-setup arbitration is denied
    /// (control-network brownout): every full-path acquisition fails and
    /// messages fall back to retry-with-backoff, then the escape path.
    pub setup_denials: Vec<CycleWindow>,
    /// Page-walk latency spikes.
    pub walk_spikes: Vec<WalkSpike>,
    /// Slice-offline (miss-only) windows.
    pub slice_offline: Vec<SliceOffline>,
    /// Whole-cluster-offline windows (hierarchical organizations).
    pub cluster_offline: Vec<ClusterOffline>,
    /// Shootdown storms: every shootdown initiated inside a storm window
    /// is escalated to a full IPI broadcast, layering relay traffic on
    /// the configured leader policy.
    pub shootdown_storms: Vec<CycleWindow>,
    /// Retry bound for fault-blocked messages.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan that injects nothing (identical to not installing a plan).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan can never perturb a run. Fast paths key off
    /// this so an empty plan is bit-identical to no plan at all.
    pub fn is_empty(&self) -> bool {
        self.link_faults.iter().all(|f| f.window.is_empty())
            && self.setup_denials.iter().all(|w| w.is_empty())
            && self
                .walk_spikes
                .iter()
                .all(|s| s.window.is_empty() || s.multiplier <= 1)
            && self.slice_offline.iter().all(|s| s.window.is_empty())
            && self.cluster_offline.iter().all(|c| c.window.is_empty())
            && self.shootdown_storms.iter().all(|w| w.is_empty())
    }

    /// Whether directed link `link` is in outage at `cycle`.
    #[inline]
    pub fn link_outage(&self, link: usize, cycle: u64) -> bool {
        self.link_faults
            .iter()
            .any(|f| f.kind == LinkFaultKind::Outage && f.applies(link, cycle))
    }

    /// Extra traversal cycles for `link` at `cycle` (0 when healthy).
    /// Overlapping degradations add up.
    #[inline]
    pub fn link_degrade(&self, link: usize, cycle: u64) -> u64 {
        self.link_faults
            .iter()
            .filter(|f| f.applies(link, cycle))
            .map(|f| match f.kind {
                LinkFaultKind::Degrade(extra) => extra,
                LinkFaultKind::Outage => 0,
            })
            .sum()
    }

    /// The earliest cycle at or after `cycle` at which `link` is not in
    /// outage (chains overlapping windows; `cycle` itself if healthy).
    pub fn outage_clear_at(&self, link: usize, cycle: u64) -> u64 {
        let mut c = cycle;
        // Each iteration ends at least one window, so this terminates.
        for _ in 0..=self.link_faults.len() {
            let blocking = self
                .link_faults
                .iter()
                .filter(|f| f.kind == LinkFaultKind::Outage && f.applies(link, c))
                .map(|f| f.window.end)
                .max();
            match blocking {
                Some(end) => c = end,
                None => break,
            }
        }
        c
    }

    /// Whether circuit-setup arbitration is denied at `cycle`.
    #[inline]
    pub fn setup_denied(&self, cycle: u64) -> bool {
        self.setup_denials.iter().any(|w| w.contains(cycle))
    }

    /// Walk-latency multiplier at `cycle` (`1` when no spike is active;
    /// overlapping spikes take the largest multiplier).
    #[inline]
    pub fn walk_multiplier(&self, cycle: u64) -> u64 {
        self.walk_spikes
            .iter()
            .filter(|s| s.window.contains(cycle))
            .map(|s| s.multiplier)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Whether structure `slice` is offline (miss-only) at `cycle`,
    /// either individually or because its whole cluster is.
    #[inline]
    pub fn slice_offline(&self, slice: usize, cycle: u64) -> bool {
        self.slice_offline
            .iter()
            .any(|s| s.slice == slice && s.window.contains(cycle))
            || self
                .cluster_offline
                .iter()
                .any(|c| slice / c.size == c.cluster && c.window.contains(cycle))
    }

    /// Whether a shootdown storm is active at `cycle`.
    #[inline]
    pub fn storm_active(&self, cycle: u64) -> bool {
        self.shootdown_storms.iter().any(|w| w.contains(cycle))
    }

    /// Deterministic backoff (in cycles) before retry number `attempt` of
    /// message `id`: capped exponential plus a seeded jitter that breaks
    /// up convoys of messages blocked by the same fault.
    #[inline]
    pub fn backoff(&self, attempt: u64, id: u64) -> u64 {
        let exp = 1u64 << attempt.min(6);
        let hash = (self.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(attempt)
            .wrapping_mul(0x2545_f491_4f6c_dd1d);
        exp + (hash >> 61)
    }

    /// Human-readable labels of every fault class active at `cycle`, for
    /// diagnostic snapshots.
    pub fn active_at(&self, cycle: u64) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.link_faults {
            if f.window.contains(cycle) {
                let link = f.link.map_or_else(|| "*".to_string(), |l| l.to_string());
                match f.kind {
                    LinkFaultKind::Outage => out.push(format!("link:{link}=off")),
                    LinkFaultKind::Degrade(e) => out.push(format!("link:{link}=+{e}")),
                }
            }
        }
        if self.setup_denied(cycle) {
            out.push("setup-denial".to_string());
        }
        let mult = self.walk_multiplier(cycle);
        if mult > 1 {
            out.push(format!("walk=x{mult}"));
        }
        for s in &self.slice_offline {
            if s.window.contains(cycle) {
                out.push(format!("slice:{}=offline", s.slice));
            }
        }
        for c in &self.cluster_offline {
            if c.window.contains(cycle) {
                out.push(format!("cluster:{}/{}=offline", c.cluster, c.size));
            }
        }
        if self.storm_active(cycle) {
            out.push("shootdown-storm".to_string());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Parses a fault-plan spec. Clauses are `;`-separated:
    ///
    /// | clause | meaning |
    /// |---|---|
    /// | `seed=N` | backoff-jitter seed |
    /// | `retry=N` \| `retry=inf` | escape after N fault retries / never |
    /// | `deny@S-E` | setup denial over cycles `[S, E)` |
    /// | `link:L@S-E=off` | outage of link `L` (or `*` = all links) |
    /// | `link:L@S-E=+N` | `N` extra cycles per traversal of link `L` |
    /// | `walk@S-E=xM` | walks started in `[S, E)` cost `M`x latency |
    /// | `slice:I@S-E` | structure `I` offline (miss-only) over `[S, E)` |
    /// | `cluster:K/S@A-B` | every slice of cluster `K` (size `S` tiles) offline over `[A, B)` |
    /// | `storm@S-E` | shootdowns in `[S, E)` escalate to IPI broadcast |
    ///
    /// # Errors
    ///
    /// Returns the first malformed clause together with its byte offset in
    /// the spec, so a typo inside a long plan is locatable at a glance.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        let mut offset = 0usize;
        for seg in spec.split(';') {
            let clause = seg.trim();
            if !clause.is_empty() {
                let at = offset + (seg.len() - seg.trim_start().len());
                plan.parse_clause(clause)
                    .map_err(|e| format!("bad fault clause `{clause}` at byte {at}: {e}"))?;
            }
            offset += seg.len() + 1;
        }
        Ok(plan)
    }

    fn parse_clause(&mut self, clause: &str) -> Result<(), String> {
        if let Some(v) = clause.strip_prefix("seed=") {
            self.seed = parse_u64(v)?;
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("retry=") {
            self.retry.max_attempts = if v == "inf" {
                None
            } else {
                Some(parse_u64(v)? as u32)
            };
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("deny@") {
            self.setup_denials.push(parse_window(v)?);
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("storm@") {
            self.shootdown_storms.push(parse_window(v)?);
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("walk@") {
            let (win, eff) = v
                .split_once('=')
                .ok_or_else(|| "expected `walk@S-E=xM`".to_string())?;
            let mult = eff
                .strip_prefix('x')
                .ok_or_else(|| "walk effect must be `xM`".to_string())?;
            self.walk_spikes.push(WalkSpike {
                window: parse_window(win)?,
                multiplier: parse_u64(mult)?.max(1),
            });
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("cluster:") {
            let (sel, win) = v
                .split_once('@')
                .ok_or_else(|| "expected `cluster:K/S@A-B`".to_string())?;
            let (cluster, size) = sel
                .split_once('/')
                .ok_or_else(|| "expected cluster selector `K/S`".to_string())?;
            let size = parse_u64(size)? as usize;
            if size == 0 {
                return Err("cluster size must be nonzero".to_string());
            }
            self.cluster_offline.push(ClusterOffline {
                cluster: parse_u64(cluster)? as usize,
                size,
                window: parse_window(win)?,
            });
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("slice:") {
            let (idx, win) = v
                .split_once('@')
                .ok_or_else(|| "expected `slice:I@S-E`".to_string())?;
            self.slice_offline.push(SliceOffline {
                slice: parse_u64(idx)? as usize,
                window: parse_window(win)?,
            });
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("link:") {
            let (sel, rest) = v
                .split_once('@')
                .ok_or_else(|| "expected `link:L@S-E=off|+N`".to_string())?;
            let link = if sel == "*" {
                None
            } else {
                Some(parse_u64(sel)? as usize)
            };
            let (win, eff) = rest
                .split_once('=')
                .ok_or_else(|| "expected `link:L@S-E=off|+N`".to_string())?;
            let kind = if eff == "off" {
                LinkFaultKind::Outage
            } else if let Some(extra) = eff.strip_prefix('+') {
                LinkFaultKind::Degrade(parse_u64(extra)?)
            } else {
                return Err("link effect must be `off` or `+N`".to_string());
            };
            self.link_faults.push(LinkFault {
                link,
                window: parse_window(win)?,
                kind,
            });
            return Ok(());
        }
        Err("unknown clause".to_string())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("`{s}` is not a number"))
}

fn parse_window(s: &str) -> Result<CycleWindow, String> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| format!("`{s}` is not a `start-end` window"))?;
    let (start, end) = (parse_u64(a)?, parse_u64(b)?);
    if end <= start {
        return Err(format!("window `{s}` is empty (end <= start)"));
    }
    Ok(CycleWindow::new(start, end))
}

/// Counters and histograms for every fault and recovery action a network
/// model takes. Harvested into the metrics registry when a fault plan is
/// installed (and only then, so fault-free reports are byte-identical).
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Full-path setups denied by an injected setup-denial window.
    pub denied_setups: u64,
    /// Per-attempt blocks caused by a link outage.
    pub link_blocked: u64,
    /// Messages that exhausted their fault-retry budget and were
    /// delivered over the buffered multi-hop escape path.
    pub fallbacks: u64,
    /// Traversals that crossed at least one degraded link.
    pub degraded_traversals: u64,
    /// Total cycles messages spent in injected retry backoff.
    pub backoff_cycles: u64,
    /// Distribution of fault-caused retries per escaped message.
    pub retries_per_fallback: Log2Histogram,
}

impl FaultStats {
    /// True when no fault action was ever taken.
    pub fn is_quiet(&self) -> bool {
        self.denied_setups == 0
            && self.link_blocked == 0
            && self.fallbacks == 0
            && self.degraded_traversals == 0
            && self.backoff_cycles == 0
    }

    /// Zeroes every counter (warmup boundary).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// One in-flight message at the moment a snapshot was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMessage {
    /// Message (transaction) id.
    pub id: u64,
    /// Source tile index.
    pub src: usize,
    /// Destination tile index.
    pub dst: usize,
    /// Message kind label (e.g. `TlbRequest`).
    pub kind: String,
    /// Cycle the message was submitted.
    pub submitted_at: u64,
    /// Fault-caused retry attempts so far.
    pub attempts: u64,
}

/// One directed link's state at the moment a snapshot was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkState {
    /// Directed link index.
    pub link: usize,
    /// Last cycle the link carries a flit (inclusive).
    pub busy_until: u64,
    /// Message id holding a round-trip reservation, if any.
    pub reserved_by: Option<u64>,
    /// Whether an injected outage covers the link right now.
    pub faulted: bool,
}

/// A diagnostic snapshot attached to every [`SimError`]: enough state to
/// see *why* the simulation failed without re-running it under a
/// debugger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagSnapshot {
    /// Simulated cycle at the failure.
    pub cycle: u64,
    /// Events still queued across all event-queue shards (the chip-wide
    /// total, whatever the domain count).
    pub event_queue_depth: usize,
    /// Deepest single event-queue shard. Equals `event_queue_depth` on a
    /// sequential (one-domain) run; under `--parallel-domains` a large gap
    /// between the two flags a lopsided domain partition.
    pub event_queue_domain_max: usize,
    /// Transactions (lookups, inserts, invalidations) still in flight.
    pub inflight_transactions: usize,
    /// Hardware threads that had not finished their access quota.
    pub unfinished_threads: usize,
    /// Messages waiting inside the network model.
    pub pending_messages: Vec<PendingMessage>,
    /// Per-link occupancy/reservation/fault state.
    pub links: Vec<LinkState>,
    /// Fault classes active at the failure cycle.
    pub active_faults: Vec<String>,
}

impl fmt::Display for DiagSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{}: {} queued events, {} in-flight transactions, \
             {} unfinished threads, {} pending messages",
            self.cycle,
            self.event_queue_depth,
            self.inflight_transactions,
            self.unfinished_threads,
            self.pending_messages.len()
        )?;
        if self.event_queue_domain_max < self.event_queue_depth {
            write!(
                f,
                " (deepest domain shard: {})",
                self.event_queue_domain_max
            )?;
        }
        if !self.active_faults.is_empty() {
            write!(f, "; active faults: {}", self.active_faults.join(", "))?;
        }
        let busy = self
            .links
            .iter()
            .filter(|l| l.busy_until > self.cycle)
            .count();
        let reserved = self
            .links
            .iter()
            .filter(|l| l.reserved_by.is_some())
            .count();
        if busy + reserved > 0 {
            write!(f, "; links: {busy} busy, {reserved} reserved")?;
        }
        Ok(())
    }
}

/// A structured simulation failure. Replaces the old quiesce/reservation
/// panics and the event-loop stall panic: callers get a typed error with
/// a [`DiagSnapshot`] and (from the simulator) a partial report.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The simulation kept processing events but made no forward progress
    /// (no access completed) for `stalled_for` cycles — e.g. a permanent
    /// outage with an unbounded retry policy.
    Livelock {
        /// Cycles since the last completed access.
        stalled_for: u64,
        /// State at detection.
        snapshot: DiagSnapshot,
    },
    /// No pending events and no network activity while threads are
    /// unfinished: nothing can ever happen again.
    Deadlock {
        /// State at detection.
        snapshot: DiagSnapshot,
    },
    /// An injected fault forced the run to abort.
    FaultAborted {
        /// Why the run could not degrade gracefully.
        reason: String,
        /// State at the abort.
        snapshot: DiagSnapshot,
    },
    /// The configured cycle budget ([`max_cycles`]) was exhausted.
    ///
    /// [`max_cycles`]: SimError::CycleBudgetExceeded::budget
    CycleBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// State when the budget ran out.
        snapshot: DiagSnapshot,
    },
    /// An internal protocol invariant was violated (e.g. a response over
    /// a round-trip fabric with no reservation, or an event naming an
    /// unknown transaction).
    Protocol {
        /// What was violated.
        context: String,
        /// State at the violation.
        snapshot: DiagSnapshot,
    },
}

impl SimError {
    /// The diagnostic snapshot carried by every variant.
    pub fn snapshot(&self) -> &DiagSnapshot {
        match self {
            SimError::Livelock { snapshot, .. }
            | SimError::Deadlock { snapshot }
            | SimError::FaultAborted { snapshot, .. }
            | SimError::CycleBudgetExceeded { snapshot, .. }
            | SimError::Protocol { snapshot, .. } => snapshot,
        }
    }

    /// A stable short name for the variant (metrics labels, test
    /// assertions).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Livelock { .. } => "livelock",
            SimError::Deadlock { .. } => "deadlock",
            SimError::FaultAborted { .. } => "fault-aborted",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget-exceeded",
            SimError::Protocol { .. } => "protocol",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock {
                stalled_for,
                snapshot,
            } => write!(
                f,
                "livelock: no forward progress for {stalled_for} cycles ({snapshot})"
            ),
            SimError::Deadlock { snapshot } => {
                write!(
                    f,
                    "deadlock: no pending events or network activity ({snapshot})"
                )
            }
            SimError::FaultAborted { reason, snapshot } => {
                write!(f, "aborted by injected fault: {reason} ({snapshot})")
            }
            SimError::CycleBudgetExceeded { budget, snapshot } => {
                write!(f, "cycle budget of {budget} exceeded ({snapshot})")
            }
            SimError::Protocol { context, snapshot } => {
                write!(f, "protocol violation: {context} ({snapshot})")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.link_outage(0, 100));
        assert_eq!(plan.link_degrade(3, 100), 0);
        assert!(!plan.setup_denied(0));
        assert_eq!(plan.walk_multiplier(50), 1);
        assert!(!plan.slice_offline(2, 10));
        assert!(!plan.storm_active(10));
        assert!(plan.active_at(0).is_empty());
    }

    #[test]
    fn windows_are_half_open() {
        let w = CycleWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert_eq!(w.len(), 10);
        assert!(CycleWindow::new(5, 5).is_empty());
    }

    #[test]
    fn link_queries_respect_selector_and_window() {
        let plan = FaultPlan {
            link_faults: vec![
                LinkFault {
                    link: Some(2),
                    window: CycleWindow::new(100, 200),
                    kind: LinkFaultKind::Outage,
                },
                LinkFault {
                    link: None,
                    window: CycleWindow::new(150, 160),
                    kind: LinkFaultKind::Degrade(3),
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.link_outage(2, 150));
        assert!(!plan.link_outage(1, 150));
        assert!(!plan.link_outage(2, 200));
        assert_eq!(plan.link_degrade(7, 155), 3);
        assert_eq!(plan.link_degrade(7, 160), 0);
        assert!(!plan.is_empty());
    }

    #[test]
    fn outage_clear_at_chains_overlapping_windows() {
        let out = |s, e| LinkFault {
            link: Some(0),
            window: CycleWindow::new(s, e),
            kind: LinkFaultKind::Outage,
        };
        let plan = FaultPlan {
            link_faults: vec![out(10, 20), out(18, 30)],
            ..FaultPlan::default()
        };
        assert_eq!(plan.outage_clear_at(0, 5), 5);
        assert_eq!(plan.outage_clear_at(0, 12), 30);
        assert_eq!(plan.outage_clear_at(1, 12), 12);
    }

    #[test]
    fn walk_multiplier_takes_the_max_active_spike() {
        let plan = FaultPlan {
            walk_spikes: vec![
                WalkSpike {
                    window: CycleWindow::new(0, 100),
                    multiplier: 4,
                },
                WalkSpike {
                    window: CycleWindow::new(50, 60),
                    multiplier: 8,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.walk_multiplier(10), 4);
        assert_eq!(plan.walk_multiplier(55), 8);
        assert_eq!(plan.walk_multiplier(100), 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let plan = FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        };
        for attempt in 0..20u64 {
            let a = plan.backoff(attempt, 7);
            let b = plan.backoff(attempt, 7);
            assert_eq!(a, b, "backoff must be deterministic");
            assert!(a >= 1);
            assert!(a <= 64 + 7, "capped exponential plus 3-bit jitter");
        }
        assert!(plan.backoff(6, 1) > plan.backoff(0, 1));
    }

    #[test]
    fn spec_round_trips_every_clause_kind() {
        let plan = FaultPlan::parse(
            "seed=9; retry=4; deny@100-200; link:*@50-80=off; link:3@10-20=+2; \
             walk@0-1000=x8; slice:1@300-400; cluster:2/16@700-800; storm@500-600",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.retry.max_attempts, Some(4));
        assert!(plan.setup_denied(150));
        assert!(plan.link_outage(11, 60));
        assert_eq!(plan.link_degrade(3, 15), 2);
        assert_eq!(plan.walk_multiplier(500), 8);
        assert!(plan.slice_offline(1, 350));
        assert!(plan.storm_active(550));
        // Cluster 2 of size 16 covers slices 32..48, only inside its window.
        assert!(plan.slice_offline(32, 750));
        assert!(plan.slice_offline(47, 750));
        assert!(!plan.slice_offline(48, 750));
        assert!(!plan.slice_offline(32, 800));
        let inf: FaultPlan = "retry=inf".parse().unwrap();
        assert_eq!(inf.retry.max_attempts, None);
        assert!(inf.is_empty());
    }

    #[test]
    fn spec_rejects_malformed_clauses() {
        for bad in [
            "bogus",
            "deny@10",
            "deny@20-10",
            "link:x@0-5=off",
            "link:1@0-5=slow",
            "walk@0-5=8",
            "slice:@0-5",
            "seed=abc",
            "cluster:2@0-5",
            "cluster:2/0@0-5",
            "cluster:x/16@0-5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn parse_errors_name_the_clause_and_byte_offset() {
        // The second clause is the bad one; its `c` sits at byte 12.
        let err = FaultPlan::parse("deny@10-20; cluster:2@0-5; storm@0-5").unwrap_err();
        assert!(err.contains("`cluster:2@0-5`"), "names the clause: {err}");
        assert!(err.contains("at byte 12"), "locates the clause: {err}");
        assert!(err.contains("K/S"), "explains the expected shape: {err}");

        // A malformed slice clause deeper in the spec reports its own
        // offset, not the spec start.
        let spec = "seed=7; link:*@0-9=off; slice:x@0-5";
        let err = FaultPlan::parse(spec).unwrap_err();
        assert!(err.contains("`slice:x@0-5`"), "names the clause: {err}");
        let at = spec.find("slice:").unwrap();
        assert!(err.contains(&format!("at byte {at}")), "offset: {err}");
        assert!(err.contains("not a number"), "explains the cause: {err}");

        // Leading whitespace counts toward the offset of the clause body.
        let err = FaultPlan::parse("   slice:@0-5").unwrap_err();
        assert!(err.contains("at byte 3"), "skips leading spaces: {err}");

        // Cluster selectors with a zero size are named too.
        let err = FaultPlan::parse("cluster:1/0@0-5").unwrap_err();
        assert!(err.contains("`cluster:1/0@0-5`"), "{err}");
        assert!(err.contains("at byte 0"), "{err}");
        assert!(err.contains("nonzero"), "{err}");
    }

    #[test]
    fn active_faults_are_labelled() {
        let plan =
            FaultPlan::parse("deny@0-10; slice:2@0-10; cluster:1/8@0-10; walk@0-10=x4").unwrap();
        let active = plan.active_at(5);
        assert!(active.contains(&"setup-denial".to_string()));
        assert!(active.contains(&"slice:2=offline".to_string()));
        assert!(active.contains(&"cluster:1/8=offline".to_string()));
        assert!(active.contains(&"walk=x4".to_string()));
        assert!(plan.active_at(10).is_empty());
    }

    #[test]
    fn sim_error_exposes_kind_and_snapshot() {
        let snap = DiagSnapshot {
            cycle: 123,
            unfinished_threads: 2,
            ..DiagSnapshot::default()
        };
        let e = SimError::Livelock {
            stalled_for: 999,
            snapshot: snap.clone(),
        };
        assert_eq!(e.kind(), "livelock");
        assert_eq!(e.snapshot(), &snap);
        let text = e.to_string();
        assert!(text.contains("999"));
        assert!(text.contains("@123"));
    }

    #[test]
    fn fault_stats_quiet_and_reset() {
        let mut s = FaultStats::default();
        assert!(s.is_quiet());
        s.denied_setups = 3;
        s.retries_per_fallback.record(4);
        assert!(!s.is_quiet());
        s.reset();
        assert!(s.is_quiet());
        assert_eq!(s.retries_per_fallback.count(), 0);
    }
}
