//! Per-fabric lookahead bounds (`Interconnect::lookahead`).
//!
//! The epoch-parallel driver trusts `lookahead()` as a hard lower bound on
//! cross-tile latency: a violation would let one domain affect another
//! inside its supposedly-safe horizon. These tests drive each fabric with
//! its cheapest possible non-local message and check the bound is both
//! respected (no earlier delivery) and tight (some delivery achieves it,
//! so the parallel horizon is as large as the fabric allows).

use nocstar_noc::bus::BusNoc;
use nocstar_noc::circuit::{AcquireMode, CircuitFabric};
use nocstar_noc::hier::{HierNoc, InterKind, IntraKind};
use nocstar_noc::mesh::{MeshNoc, CYCLES_PER_HOP};
use nocstar_noc::message::{Message, MsgKind};
use nocstar_noc::smart::SmartNoc;
use nocstar_noc::{drain_until_idle, Interconnect};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{CoreId, MeshShape};

fn one_hop(id: u64) -> Message {
    Message::new(id, CoreId::new(0), CoreId::new(1), MsgKind::TlbRequest)
}

/// Submits a single-hop message at several start cycles (on a fresh
/// fabric each time, so round-trip reservations cannot interfere) and
/// asserts every delivery is at least `lookahead` after submission, with
/// the bound achieved at least once.
fn check_bound_tight<N: Interconnect>(mut build: impl FnMut() -> N) {
    let lookahead = build().lookahead();
    assert!(
        lookahead >= Cycles::ONE,
        "cross-tile latency cannot be zero"
    );
    let mut achieved = false;
    for (i, start) in [0u64, 17, 4000].into_iter().enumerate() {
        let mut noc = build();
        let submit = Cycle::new(start);
        noc.submit(submit, one_hop(i as u64));
        let deliveries = drain_until_idle(&mut noc, submit, 10_000).expect("fabric must quiesce");
        assert_eq!(deliveries.len(), 1);
        let at = deliveries[0].at;
        assert!(
            at >= submit + lookahead,
            "delivery at {at:?} violates lookahead {lookahead:?} from {submit:?}"
        );
        achieved |= at == submit + lookahead;
    }
    assert!(achieved, "lookahead is not tight: no delivery achieved it");
}

#[test]
fn bus_lookahead_bounds_deliveries() {
    assert_eq!(
        BusNoc::new(MeshShape::square_for(16)).lookahead(),
        Cycles::ONE
    );
    check_bound_tight(|| BusNoc::new(MeshShape::square_for(16)));
}

#[test]
fn mesh_lookahead_bounds_deliveries() {
    let mesh = MeshNoc::contended(MeshShape::square_for(16));
    assert_eq!(mesh.lookahead(), Cycles::new(CYCLES_PER_HOP));
    check_bound_tight(|| MeshNoc::contended(MeshShape::square_for(16)));
    check_bound_tight(|| MeshNoc::contention_free(MeshShape::square_for(16)));
}

#[test]
fn smart_lookahead_bounds_deliveries() {
    // HPCmax=1 is the slowest configuration; the bound must hold for the
    // fastest too, where a one-hop flit still pays setup + one bypass.
    for hpc in [1, 8] {
        let smart = SmartNoc::new(MeshShape::square_for(16), hpc);
        assert_eq!(smart.lookahead(), Cycles::new(2));
        check_bound_tight(|| SmartNoc::new(MeshShape::square_for(16), hpc));
    }
}

#[test]
fn circuit_lookahead_bounds_deliveries() {
    for mode in [AcquireMode::OneWay, AcquireMode::RoundTrip] {
        let fabric = CircuitFabric::new(MeshShape::square_for(16), 8, mode);
        assert_eq!(fabric.lookahead(), Cycles::ONE);
        check_bound_tight(|| CircuitFabric::new(MeshShape::square_for(16), 8, mode));
    }
    check_bound_tight(|| CircuitFabric::ideal(MeshShape::square_for(16), 8));
}

#[test]
fn hier_lookahead_bounds_deliveries() {
    // With clusters of >= 2 tiles, cores 0 and 1 share an intra-cluster
    // fabric, so the composed lookahead is the intra fabric's (ONE for
    // both bus and crossbar) and the one-hop probe exercises it directly.
    for intra in [IntraKind::Bus, IntraKind::Xbar] {
        for inter in [InterKind::Mesh, InterKind::Smart(8)] {
            let hier = HierNoc::new(16, 4, intra, inter);
            assert_eq!(hier.lookahead(), Cycles::ONE, "{intra:?}/{inter:?}");
            check_bound_tight(|| HierNoc::new(16, 4, intra, inter));
        }
    }
}

#[test]
fn hier_lookahead_collapses_to_the_overlay_for_single_tile_clusters() {
    // cluster_size=1 leaves no intra-cluster traffic at all: every
    // non-local message rides the overlay, so the composed lookahead is
    // the overlay's (2 for both mesh and SMART) and must stay tight.
    let mesh = HierNoc::new(16, 1, IntraKind::Bus, InterKind::Mesh);
    assert_eq!(mesh.lookahead(), Cycles::new(CYCLES_PER_HOP));
    check_bound_tight(|| HierNoc::new(16, 1, IntraKind::Bus, InterKind::Mesh));
    let smart = HierNoc::new(16, 1, IntraKind::Bus, InterKind::Smart(8));
    assert_eq!(smart.lookahead(), Cycles::new(2));
    check_bound_tight(|| HierNoc::new(16, 1, IntraKind::Bus, InterKind::Smart(8)));
}

#[test]
fn hier_cross_cluster_deliveries_respect_the_composed_bound() {
    // Soundness for the expensive path: a message crossing clusters pays
    // at least the composed floor (intra leg + overlay hops + intra leg),
    // which is far above the advertised lookahead — the bound must still
    // hold from every submit cycle.
    for start in [0u64, 17, 4000] {
        let mut noc = HierNoc::new(16, 4, IntraKind::Bus, InterKind::Mesh);
        let lookahead = noc.lookahead();
        let submit = Cycle::new(start);
        // Core 1 (cluster 0) to core 14 (cluster 3): both endpoints are
        // off-gateway, so all three legs are real.
        let msg = Message::new(start, CoreId::new(1), CoreId::new(14), MsgKind::TlbRequest);
        noc.submit(submit, msg);
        let d = drain_until_idle(&mut noc, submit, 10_000).expect("hier must quiesce");
        assert_eq!(d.len(), 1);
        assert!(
            d[0].at >= submit + lookahead,
            "cross-cluster delivery at {:?} violates lookahead {lookahead:?}",
            d[0].at
        );
        // Three legs: bus (1) + overlay (>= 2) + bus (1).
        assert!(
            d[0].at >= submit + Cycles::new(4),
            "floor too low: {:?}",
            d[0].at
        );
    }
}

#[test]
fn local_messages_are_exempt_from_the_bound() {
    // Same-tile traffic never crosses a domain boundary, so it may (and
    // does) deliver in the submit cycle, faster than the lookahead.
    let mut fabric = CircuitFabric::new(MeshShape::square_for(16), 8, AcquireMode::OneWay);
    let local = Message::new(1, CoreId::new(3), CoreId::new(3), MsgKind::TlbRequest);
    fabric.submit(Cycle::new(5), local);
    let d = fabric.advance(Cycle::new(5));
    assert_eq!(d[0].at, Cycle::new(5));
}
