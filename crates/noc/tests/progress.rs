//! Forward-progress regression tests for `Interconnect::next_activity`.
//!
//! The livelock class fixed in `BusNoc` (queued work reported at its
//! original submit cycle even though the medium is busy until later)
//! can silently return in any fabric: `drain_until_idle` advances to
//! `next_activity()` and expects that cycle to make progress, so a model
//! that reports a cycle where nothing can move spins in place until the
//! iteration bound trips. These tests drive every fabric with an
//! occupied resource — several same-cycle messages contending for one
//! link, output port, or bus — and assert the drain completes well
//! inside a small iteration budget with every message delivered exactly
//! once.

use nocstar_noc::circuit::{AcquireMode, CircuitFabric};
use nocstar_noc::hier::{HierNoc, InterKind, IntraKind};
use nocstar_noc::message::{Message, MsgKind};
use nocstar_noc::{drain_until_idle, BusNoc, Interconnect, MeshNoc, SmartNoc};
use nocstar_types::{CoreId, Cycle, MeshShape};

/// Far more iterations than any healthy fabric needs for a handful of
/// messages, far fewer than a next-activity livelock would consume.
const MAX_ITERS: u64 = 10_000;

/// Submits `n` same-cycle messages that all funnel into the same
/// destination (occupying the same links / output port / medium), then
/// drains the fabric and checks exact delivery.
fn assert_forward_progress(noc: &mut dyn Interconnect, n: u64, label: &str) {
    assert_forward_progress_kind(noc, n, MsgKind::TlbRequest, label);
}

fn assert_forward_progress_kind(noc: &mut dyn Interconnect, n: u64, kind: MsgKind, label: &str) {
    let dst = CoreId::new(0);
    for id in 0..n {
        // All sources differ but every path converges on tile 0, so the
        // final hop (or the shared medium) is contended from cycle 0.
        let src = CoreId::new(1 + id as usize);
        noc.submit(Cycle::ZERO, Message::new(id, src, dst, kind));
    }
    let deliveries = drain_until_idle(noc, Cycle::ZERO, MAX_ITERS)
        .unwrap_or_else(|e| panic!("{label}: next_activity livelock: {e}"));
    assert_eq!(deliveries.len() as u64, n, "{label}: lost deliveries");
    let mut ids: Vec<u64> = deliveries.iter().map(|d| d.msg.id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..n).collect::<Vec<_>>(),
        "{label}: duplicate or missing ids"
    );
    for d in &deliveries {
        assert_eq!(d.msg.dst, dst, "{label}: misrouted message");
    }
    assert!(
        noc.next_activity().is_none(),
        "{label}: idle fabric still reports work"
    );
}

#[test]
fn bus_makes_progress_with_an_occupied_medium() {
    // The original bug: queued messages reported at their submit cycle
    // while the bus was held, so next_activity never advanced.
    let mut noc = BusNoc::new(MeshShape::square_for(16));
    assert_forward_progress(&mut noc, 8, "bus");
}

#[test]
fn contended_mesh_makes_progress_with_an_occupied_link() {
    let mut noc = MeshNoc::contended(MeshShape::square_for(16));
    assert_forward_progress(&mut noc, 8, "mesh");
}

#[test]
fn smart_makes_progress_with_an_occupied_link() {
    let mut noc = SmartNoc::new(MeshShape::square_for(16), 8);
    assert_forward_progress(&mut noc, 8, "smart");
}

#[test]
fn circuit_makes_progress_with_an_occupied_path() {
    let mut noc = CircuitFabric::new(MeshShape::square_for(16), 8, AcquireMode::OneWay);
    assert_forward_progress(&mut noc, 8, "circuit/one-way");
    // Round-trip requests hold their reservation until the slice responds,
    // so the drain helper uses a one-way kind (inserts release on arrival)
    // to contend for the same paths without needing a response protocol.
    let mut noc = CircuitFabric::new(MeshShape::square_for(16), 8, AcquireMode::RoundTrip);
    assert_forward_progress_kind(&mut noc, 8, MsgKind::Insert, "circuit/round-trip");
}

#[test]
fn hier_bus_clusters_make_progress_with_an_occupied_gateway() {
    let mut noc = HierNoc::new(64, 16, IntraKind::Bus, InterKind::Mesh);
    assert_forward_progress(&mut noc, 8, "hier/bus");
}

#[test]
fn hier_xbar_clusters_make_progress_with_an_occupied_output_port() {
    let mut noc = HierNoc::new(64, 16, IntraKind::Xbar, InterKind::Smart(8));
    assert_forward_progress(&mut noc, 8, "hier/xbar");
}
