//! A shared-bus interconnect (Table I's "Bus" row).
//!
//! One transaction owns the whole medium per cycle: latency is excellent
//! at low load (arbitrate, then a single broadcast cycle reaches any
//! destination), but bandwidth is one message per cycle chip-wide and
//! every transfer swings the full bus — the paper's "+/−" latency/bandwidth
//! marks. Included as a measurable baseline for the Table I comparison and
//! for ablation against the NOCSTAR fabric at matching load.

use crate::message::{Delivery, Message};
use crate::{Interconnect, NocStats};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::MeshShape;
use std::collections::VecDeque;

/// The bus network model.
///
/// # Examples
///
/// ```
/// use nocstar_noc::bus::BusNoc;
/// use nocstar_noc::message::{Message, MsgKind};
/// use nocstar_noc::Interconnect;
/// use nocstar_types::{CoreId, Cycle, MeshShape};
///
/// let mut bus = BusNoc::new(MeshShape::square_for(16));
/// bus.submit(Cycle::ZERO, Message::new(1, CoreId::new(0), CoreId::new(15), MsgKind::TlbRequest));
/// bus.advance(Cycle::ZERO);
/// let d = bus.advance(Cycle::new(1));
/// assert_eq!(d[0].at, Cycle::new(1)); // grant at 0, broadcast during 1
/// ```
#[derive(Debug, Clone)]
pub struct BusNoc {
    /// FIFO of (message, submitted_at) awaiting the bus.
    pending: VecDeque<(Message, Cycle)>,
    /// The broadcast in flight, if any: (message, arrival, submitted_at).
    in_flight: Option<(Message, Cycle, Cycle)>,
    /// Local (same-tile) messages, delivered without touching the bus.
    local_ready: Vec<(Message, Cycle)>,
    stats: NocStats,
}

impl BusNoc {
    /// Builds a bus spanning the chip (the shape only scales analytical
    /// energy elsewhere; bus latency is distance-independent).
    pub fn new(_mesh: MeshShape) -> Self {
        Self {
            pending: VecDeque::new(),
            in_flight: None,
            local_ready: Vec::new(),
            // The shared medium is modelled as a single link (index 0).
            stats: NocStats::with_links(1),
        }
    }
}

impl Interconnect for BusNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.local_ready.push((msg, now));
            return;
        }
        self.pending.push_back((msg, now));
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        // Local messages bypass the bus entirely.
        let mut kept = Vec::new();
        for (msg, at) in self.local_ready.drain(..) {
            if at <= cycle {
                self.stats.delivered += 1;
                self.stats.no_contention += 1;
                self.stats.latency.record(Cycles::ZERO);
                out.push(Delivery { msg, at });
            } else {
                kept.push((msg, at));
            }
        }
        self.local_ready = kept;
        // Deliver the completed broadcast.
        if let Some((msg, at, submitted)) = self.in_flight {
            if at <= cycle {
                self.in_flight = None;
                self.stats.delivered += 1;
                self.stats.latency.record(at - submitted);
                if at - submitted <= Cycles::ONE {
                    self.stats.no_contention += 1;
                } else {
                    self.stats.retries += 1;
                }
                out.push(Delivery { msg, at });
            }
        }
        // Grant the bus to the oldest waiter.
        if self.in_flight.is_none() {
            if let Some(&(msg, submitted)) = self.pending.front() {
                if submitted <= cycle {
                    self.pending.pop_front();
                    self.in_flight = Some((msg, cycle + Cycles::ONE, submitted));
                    self.stats.grants += 1;
                    self.stats.link_busy[0] += 1;
                }
            }
        }
        out
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flight = self.in_flight.map(|(_, at, _)| at);
        let queue = self.pending.front().map(|&(_, at)| at);
        let local = self.local_ready.iter().map(|&(_, at)| at).min();
        [flight, queue, local].into_iter().flatten().min()
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn drain(bus: &mut BusNoc, from: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut cycle = from;
        for _ in 0..10_000 {
            match bus.next_activity() {
                None => return out,
                Some(next) => {
                    cycle = cycle.max(next);
                    out.extend(bus.advance(cycle));
                    cycle += Cycles::ONE;
                }
            }
        }
        panic!("bus did not quiesce");
    }

    #[test]
    fn single_message_takes_two_cycles_regardless_of_distance() {
        let mut bus = BusNoc::new(MeshShape::square_for(64));
        bus.submit(Cycle::ZERO, msg(1, 0, 63));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d[0].at, Cycle::new(1));
    }

    #[test]
    fn bandwidth_is_one_message_per_cycle() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        for i in 0..4 {
            bus.submit(Cycle::ZERO, msg(i, i as usize, 15));
        }
        let d = drain(&mut bus, Cycle::ZERO);
        let times: Vec<u64> = d.iter().map(|d| d.at.value()).collect();
        assert_eq!(times, vec![1, 2, 3, 4]);
        assert!(bus.stats().retries > 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.submit(Cycle::new(0), msg(10, 0, 5));
        bus.submit(Cycle::new(0), msg(11, 1, 6));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d[0].msg.id, 10);
        assert_eq!(d[1].msg.id, 11);
    }

    #[test]
    fn stats_count_latency() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.submit(Cycle::ZERO, msg(1, 0, 3));
        bus.submit(Cycle::ZERO, msg(2, 1, 3));
        drain(&mut bus, Cycle::ZERO);
        assert_eq!(bus.stats().delivered, 2);
        assert!(bus.stats().latency.max() >= Cycles::new(2));
    }
}
