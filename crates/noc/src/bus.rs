//! A shared-bus interconnect (Table I's "Bus" row).
//!
//! One transaction owns the whole medium per cycle: latency is excellent
//! at low load (arbitrate, then a single broadcast cycle reaches any
//! destination), but bandwidth is one message per cycle chip-wide and
//! every transfer swings the full bus — the paper's "+/−" latency/bandwidth
//! marks. Included as a measurable baseline for the Table I comparison and
//! for ablation against the NOCSTAR fabric at matching load.

use crate::message::{Delivery, Message};
use crate::{Interconnect, NocStats};
use nocstar_faults::{DiagSnapshot, FaultPlan, FaultStats, LinkState, PendingMessage};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::MeshShape;
use std::collections::VecDeque;

/// The bus network model.
///
/// # Examples
///
/// ```
/// use nocstar_noc::bus::BusNoc;
/// use nocstar_noc::message::{Message, MsgKind};
/// use nocstar_noc::Interconnect;
/// use nocstar_types::{CoreId, Cycle, MeshShape};
///
/// let mut bus = BusNoc::new(MeshShape::square_for(16));
/// bus.submit(Cycle::ZERO, Message::new(1, CoreId::new(0), CoreId::new(15), MsgKind::TlbRequest));
/// bus.advance(Cycle::ZERO);
/// let d = bus.advance(Cycle::new(1));
/// assert_eq!(d[0].at, Cycle::new(1)); // grant at 0, broadcast during 1
/// ```
#[derive(Debug, Clone)]
pub struct BusNoc {
    /// FIFO of (message, submitted_at, fault_attempts) awaiting the bus.
    pending: VecDeque<(Message, Cycle, u64)>,
    /// The broadcast in flight, if any: (message, arrival, submitted_at).
    in_flight: Option<(Message, Cycle, Cycle)>,
    /// Local (same-tile) messages, delivered without touching the bus.
    local_ready: Vec<(Message, Cycle)>,
    /// Messages escaping a faulted bus: (message, arrival, submitted_at).
    escaped: Vec<(Message, Cycle, Cycle)>,
    /// Earliest cycle the arbiter may grant again after a fault block
    /// (keeps time advancing during an outage instead of busy-spinning).
    next_try: Cycle,
    stats: NocStats,
    faults: FaultPlan,
    fstats: FaultStats,
}

impl BusNoc {
    /// Builds a bus spanning the chip (the shape only scales analytical
    /// energy elsewhere; bus latency is distance-independent).
    pub fn new(_mesh: MeshShape) -> Self {
        Self {
            pending: VecDeque::new(),
            in_flight: None,
            local_ready: Vec::new(),
            escaped: Vec::new(),
            next_try: Cycle::ZERO,
            // The shared medium is modelled as a single link (index 0).
            stats: NocStats::with_links(1),
            faults: FaultPlan::default(),
            fstats: FaultStats::default(),
        }
    }
}

impl Interconnect for BusNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.local_ready.push((msg, now));
            return;
        }
        self.pending.push_back((msg, now, 0));
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        // Local messages bypass the bus entirely.
        let mut kept = Vec::new();
        for (msg, at) in self.local_ready.drain(..) {
            if at <= cycle {
                self.stats.delivered += 1;
                self.stats.no_contention += 1;
                self.stats.latency.record(Cycles::ZERO);
                out.push(Delivery { msg, at });
            } else {
                kept.push((msg, at));
            }
        }
        self.local_ready = kept;
        // Deliver the completed broadcast.
        if let Some((msg, at, submitted)) = self.in_flight {
            if at <= cycle {
                self.in_flight = None;
                self.stats.delivered += 1;
                self.stats.latency.record(at - submitted);
                if at - submitted <= Cycles::ONE {
                    self.stats.no_contention += 1;
                } else {
                    self.stats.retries += 1;
                }
                out.push(Delivery { msg, at });
            }
        }
        // Deliver messages that escaped a faulted bus.
        if !self.escaped.is_empty() {
            let mut kept_escapes = Vec::new();
            for (msg, at, submitted) in self.escaped.drain(..) {
                if at <= cycle {
                    self.stats.delivered += 1;
                    self.stats.latency.record(at - submitted);
                    self.stats.retries += 1;
                    out.push(Delivery { msg, at });
                } else {
                    kept_escapes.push((msg, at, submitted));
                }
            }
            self.escaped = kept_escapes;
        }
        // Grant the bus to the oldest waiter.
        if self.in_flight.is_none() && cycle >= self.next_try {
            if let Some(&(msg, submitted, attempts)) = self.pending.front() {
                if submitted <= cycle {
                    if !self.faults.is_empty() && self.faults.link_outage(0, cycle.value()) {
                        // The shared medium is down this cycle: stall the
                        // grant one cycle (so time keeps advancing) and,
                        // past the retry budget, escape over the
                        // point-to-point maintenance wires.
                        self.fstats.link_blocked += 1;
                        self.stats.retries += 1;
                        let attempts = attempts + 1;
                        if let Some(front) = self.pending.front_mut() {
                            front.2 = attempts;
                        }
                        if self
                            .faults
                            .retry
                            .max_attempts
                            .is_some_and(|m| attempts >= u64::from(m))
                        {
                            self.pending.pop_front();
                            self.fstats.fallbacks += 1;
                            self.fstats.retries_per_fallback.record(attempts);
                            self.escaped.push((msg, cycle + Cycles::new(2), submitted));
                        } else {
                            self.next_try = cycle + Cycles::ONE;
                        }
                    } else {
                        self.pending.pop_front();
                        let extra = if self.faults.is_empty() {
                            0
                        } else {
                            self.faults.link_degrade(0, cycle.value())
                        };
                        if extra > 0 {
                            self.fstats.degraded_traversals += 1;
                        }
                        self.in_flight = Some((msg, cycle + Cycles::new(1 + extra), submitted));
                        self.stats.grants += 1;
                        self.stats.link_busy[0] += 1 + extra;
                    }
                }
            }
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // Best case for a non-local message: the bus is granted in the
        // submit cycle T and the broadcast occupies cycle T+1.
        Cycles::ONE
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flight = self.in_flight.map(|(_, at, _)| at);
        // A queued message cannot be granted while a broadcast occupies the
        // bus, so its earliest activity is the in-flight arrival: reporting
        // it at its submit cycle would make an event loop that trusts
        // next_activity() spin without progress.
        let queue = self.pending.front().map(|&(_, at, _)| {
            let at = at.max(self.next_try);
            flight.map_or(at, |f| at.max(f))
        });
        let local = self.local_ready.iter().map(|&(_, at)| at).min();
        let escape = self.escaped.iter().map(|&(_, at, _)| at).min();
        [flight, queue, local, escape].into_iter().flatten().min()
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.fstats.reset();
    }

    fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        Some(&self.fstats)
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let now = cycle.value();
        let mut pending_messages: Vec<PendingMessage> = self
            .pending
            .iter()
            .map(|&(msg, submitted_at, attempts)| PendingMessage {
                id: msg.id,
                src: msg.src.index(),
                dst: msg.dst.index(),
                kind: format!("{:?}", msg.kind),
                submitted_at: submitted_at.value(),
                attempts,
            })
            .collect();
        if let Some((msg, _, submitted_at)) = self.in_flight {
            pending_messages.push(PendingMessage {
                id: msg.id,
                src: msg.src.index(),
                dst: msg.dst.index(),
                kind: format!("{:?}", msg.kind),
                submitted_at: submitted_at.value(),
                attempts: 0,
            });
        }
        let busy_until = self.in_flight.map_or(0, |(_, at, _)| at.value());
        DiagSnapshot {
            cycle: now,
            pending_messages,
            links: vec![LinkState {
                link: 0,
                busy_until,
                reserved_by: None,
                faulted: self.faults.link_outage(0, now),
            }],
            active_faults: self.faults.active_at(now),
            ..DiagSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn drain(bus: &mut BusNoc, from: Cycle) -> Vec<Delivery> {
        crate::drain_until_idle(bus, from, 10_000).expect("bus did not quiesce")
    }

    #[test]
    fn outage_stalls_the_bus_then_traffic_resumes() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.install_faults("link:0@0-30=off; retry=inf".parse().unwrap());
        bus.submit(Cycle::ZERO, msg(1, 0, 5));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert!(d[0].at >= Cycle::new(30));
        assert!(bus.fault_stats().unwrap().link_blocked > 0);
    }

    #[test]
    fn permanent_outage_escapes_after_retry_budget() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.install_faults("link:0@0-1000000=off; retry=5".parse().unwrap());
        bus.submit(Cycle::ZERO, msg(1, 0, 5));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d.len(), 1, "escape path must deliver");
        assert_eq!(bus.fault_stats().unwrap().fallbacks, 1);
    }

    #[test]
    fn single_message_takes_two_cycles_regardless_of_distance() {
        let mut bus = BusNoc::new(MeshShape::square_for(64));
        bus.submit(Cycle::ZERO, msg(1, 0, 63));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d[0].at, Cycle::new(1));
    }

    #[test]
    fn bandwidth_is_one_message_per_cycle() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        for i in 0..4 {
            bus.submit(Cycle::ZERO, msg(i, i as usize, 15));
        }
        let d = drain(&mut bus, Cycle::ZERO);
        let times: Vec<u64> = d.iter().map(|d| d.at.value()).collect();
        assert_eq!(times, vec![1, 2, 3, 4]);
        assert!(bus.stats().retries > 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.submit(Cycle::new(0), msg(10, 0, 5));
        bus.submit(Cycle::new(0), msg(11, 1, 6));
        let d = drain(&mut bus, Cycle::ZERO);
        assert_eq!(d[0].msg.id, 10);
        assert_eq!(d[1].msg.id, 11);
    }

    #[test]
    fn stats_count_latency() {
        let mut bus = BusNoc::new(MeshShape::square_for(16));
        bus.submit(Cycle::ZERO, msg(1, 0, 3));
        bus.submit(Cycle::ZERO, msg(2, 1, 3));
        drain(&mut bus, Cycle::ZERO);
        assert_eq!(bus.stats().delivered, 2);
        assert!(bus.stats().latency.max() >= Cycles::new(2));
    }
}
