//! The hierarchical cluster interconnect (`hier`).
//!
//! NOCSTAR's four flat fabrics all degrade past a few hundred tiles: bus
//! bandwidth is chip-wide-serial, mesh diameter grows as sqrt(N), and
//! SMART/NOCSTAR bypass runs are cut short by contention on long paths.
//! Following TeraNoC-style hybrid designs, [`HierNoc`] composes two of the
//! existing fabric models into a two-level topology:
//!
//! * an **intra-cluster fabric** per cluster of `cluster_size` contiguous
//!   tiles — a shared [`BusNoc`] (1-cycle arbitration + broadcast) or a
//!   non-blocking [`XbarNoc`] (per-output-port arbitration, 1-cycle
//!   traversal);
//! * an **inter-cluster overlay** connecting one gateway tile per cluster
//!   — a contended [`MeshNoc`] or a [`SmartNoc`] bypass mesh over the
//!   cluster grid.
//!
//! A same-cluster message takes one intra-fabric leg. A cross-cluster
//! message takes three store-and-forward legs: source tile to its
//! cluster's gateway, gateway to gateway over the overlay, and gateway to
//! the destination tile. Degenerate legs (the source *is* the gateway)
//! are local messages to the member fabric and cost nothing, so a
//! `cluster_size = 1` configuration collapses exactly to the overlay.
//!
//! Member fabrics see one leg at a time under the original message id
//! (ids are only used for arbitration tie-breaks, and a message occupies
//! one leg at any instant, so ids stay unique per fabric). `HierNoc`
//! tracks leg progress in a route table and reports *end-to-end*
//! statistics: `latency` is submit-to-final-arrival, and `no_contention`
//! counts messages that matched their route's zero-queueing floor.
//!
//! `lookahead` composes as the minimum member lookahead along any
//! cross-tile path: with real clusters the nearest non-local tile is one
//! intra hop away (1 cycle); with single-tile clusters every non-local
//! message rides the overlay, so its bound applies.
//!
//! Fault plans target the overlay: `link:L` clauses index the overlay
//! mesh's directed links (the cluster-local wires are short, wide and
//! assumed reliable). Whole clusters are taken offline via the fault
//! plan's `cluster:K/S@..` clause, which the *simulator* maps to slice
//! offline windows — the network itself keeps routing.

use crate::bus::BusNoc;
use crate::mesh::MeshNoc;
use crate::message::{Delivery, Message};
use crate::smart::SmartNoc;
use crate::{Interconnect, NocStats};
use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, PendingMessage, RecoveryPolicy, RecoveryStats,
};
use nocstar_types::cluster::ClusterMap;
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{CoreId, MeshShape};
use std::collections::BTreeMap;

/// Intra-cluster fabric choice (`--cluster-intra`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraKind {
    /// Shared bus: 1-cycle grant + broadcast, one message per cycle per
    /// cluster.
    Bus,
    /// Non-blocking crossbar: per-output-port arbitration, one message
    /// per output per cycle.
    Xbar,
}

/// Inter-cluster overlay choice (`--cluster-inter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterKind {
    /// Contended multi-hop mesh over the cluster grid.
    Mesh,
    /// SMART bypass mesh with the given HPCmax.
    Smart(usize),
}

/// A non-blocking crossbar: every output port arbitrates independently
/// (oldest message first, ids breaking ties) and a granted message takes
/// one cycle to traverse. Contention only arises when two inputs target
/// the same output. Used as the intra-cluster fabric of [`HierNoc`];
/// injected faults are handled at the overlay level, so this model keeps
/// no fault state.
#[derive(Debug, Clone)]
pub struct XbarNoc {
    /// First core index served by this crossbar (ports are addressed as
    /// `dst - base`).
    base: usize,
    /// Index-addressed output ports — the flat arena replacing per-tile
    /// allocations at 1024-core scale.
    ports: Vec<OutPort>,
    local_ready: Vec<(Message, Cycle)>,
    stats: NocStats,
}

#[derive(Debug, Clone, Default)]
struct OutPort {
    /// Waiting messages: (message, submitted_at).
    pending: Vec<(Message, Cycle)>,
    /// The granted traversal: (message, arrival, submitted_at).
    in_flight: Option<(Message, Cycle, Cycle)>,
}

impl XbarNoc {
    /// A crossbar serving cores `[base, base + ports)`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(base: usize, ports: usize) -> Self {
        assert!(ports > 0, "a crossbar needs at least one port");
        Self {
            base,
            ports: vec![OutPort::default(); ports],
            local_ready: Vec::new(),
            stats: NocStats::with_links(ports),
        }
    }

    fn port_of(&self, dst: CoreId) -> usize {
        dst.index() - self.base
    }
}

impl Interconnect for XbarNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.local_ready.push((msg, now));
            return;
        }
        let port = self.port_of(msg.dst);
        self.ports[port].pending.push((msg, now));
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut kept = Vec::new();
        for (msg, at) in self.local_ready.drain(..) {
            if at <= cycle {
                self.stats.delivered += 1;
                self.stats.no_contention += 1;
                self.stats.latency.record(Cycles::ZERO);
                out.push(Delivery { msg, at });
            } else {
                kept.push((msg, at));
            }
        }
        self.local_ready = kept;
        for (p, port) in self.ports.iter_mut().enumerate() {
            if let Some((msg, at, submitted)) = port.in_flight {
                if at <= cycle {
                    port.in_flight = None;
                    self.stats.delivered += 1;
                    self.stats.latency.record(at - submitted);
                    if at - submitted <= Cycles::ONE {
                        self.stats.no_contention += 1;
                    } else {
                        self.stats.retries += 1;
                    }
                    out.push(Delivery { msg, at });
                }
            }
            if port.in_flight.is_none() {
                // Oldest waiter wins the output port, ids breaking ties.
                let next = port
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, at))| at <= cycle)
                    .min_by_key(|(_, &(msg, at))| (at, msg.id))
                    .map(|(i, _)| i);
                if let Some(i) = next {
                    let (msg, submitted) = port.pending.remove(i);
                    port.in_flight = Some((msg, cycle + Cycles::ONE, submitted));
                    self.stats.grants += 1;
                    self.stats.link_busy[p] += 1;
                }
            }
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // Uncontended: granted in the submit cycle, one traversal cycle.
        Cycles::ONE
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flights = self
            .ports
            .iter()
            .filter_map(|p| p.in_flight.map(|(_, at, _)| at));
        // A queued message behind an occupied output port cannot win
        // arbitration until the in-flight transfer lands, so clamp its
        // reported activity to that arrival (see BusNoc::next_activity).
        let queued = self.ports.iter().flat_map(|p| {
            let busy = p.in_flight.map(|(_, at, _)| at);
            p.pending
                .iter()
                .map(move |&(_, at)| busy.map_or(at, |b| at.max(b)))
        });
        let local = self.local_ready.iter().map(|&(_, at)| at);
        flights.chain(queued).chain(local).min()
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let pending_messages = self
            .ports
            .iter()
            .flat_map(|p| p.pending.iter())
            .map(|&(msg, submitted_at)| PendingMessage {
                id: msg.id,
                src: msg.src.index(),
                dst: msg.dst.index(),
                kind: format!("{:?}", msg.kind),
                submitted_at: submitted_at.value(),
                attempts: 0,
            })
            .collect();
        DiagSnapshot {
            cycle: cycle.value(),
            pending_messages,
            ..DiagSnapshot::default()
        }
    }
}

/// One cluster's intra fabric.
// The size skew is real (BusNoc carries fault state the crossbar skips)
// but boxing would put an allocation and a pointer chase on every
// per-cluster advance; a HierNoc holds cores/cluster_size of these, so
// the footprint stays small either way.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Intra {
    Bus(BusNoc),
    Xbar(XbarNoc),
}

impl Intra {
    fn as_dyn(&mut self) -> &mut dyn Interconnect {
        match self {
            Intra::Bus(n) => n,
            Intra::Xbar(n) => n,
        }
    }

    fn next_activity(&self) -> Option<Cycle> {
        match self {
            Intra::Bus(n) => n.next_activity(),
            Intra::Xbar(n) => n.next_activity(),
        }
    }

    fn lookahead(&self) -> Cycles {
        match self {
            Intra::Bus(n) => n.lookahead(),
            Intra::Xbar(n) => n.lookahead(),
        }
    }
}

/// The overlay fabric between cluster gateways.
#[derive(Debug)]
enum Inter {
    Mesh(MeshNoc),
    Smart(SmartNoc),
}

impl Inter {
    fn as_dyn(&mut self) -> &mut dyn Interconnect {
        match self {
            Inter::Mesh(n) => n,
            Inter::Smart(n) => n,
        }
    }

    fn next_activity(&self) -> Option<Cycle> {
        match self {
            Inter::Mesh(n) => n.next_activity(),
            Inter::Smart(n) => n.next_activity(),
        }
    }

    fn lookahead(&self) -> Cycles {
        match self {
            Inter::Mesh(n) => n.lookahead(),
            Inter::Smart(n) => n.lookahead(),
        }
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        match self {
            Inter::Mesh(n) => n.fault_stats(),
            Inter::Smart(n) => n.fault_stats(),
        }
    }

    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        match self {
            Inter::Mesh(n) => n.recovery_stats(),
            Inter::Smart(n) => n.recovery_stats(),
        }
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        match self {
            Inter::Mesh(n) => n.diagnostics(cycle),
            Inter::Smart(n) => n.diagnostics(cycle),
        }
    }
}

/// Which leg of its route a message is riding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Single intra-cluster leg; delivery is final.
    Direct,
    /// Source tile -> source-cluster gateway.
    IntraSrc,
    /// Gateway -> gateway over the overlay.
    Overlay,
    /// Destination-cluster gateway -> destination tile; final.
    IntraDst,
}

/// Leg-progress record for one in-flight message.
#[derive(Debug, Clone, Copy)]
struct Route {
    /// The original end-to-end message.
    msg: Message,
    stage: Stage,
    submitted_at: Cycle,
    /// Zero-queueing end-to-end latency for this route (the
    /// `no_contention` threshold).
    floor: Cycles,
}

/// The composed hierarchical fabric. See the module docs for the model.
#[derive(Debug)]
pub struct HierNoc {
    map: ClusterMap,
    overlay_shape: MeshShape,
    inter_kind: InterKind,
    /// Index-addressed per-cluster fabrics.
    intra: Vec<Intra>,
    inter: Inter,
    routes: BTreeMap<u64, Route>,
    stats: NocStats,
    faults: FaultPlan,
    recovery: RecoveryPolicy,
    /// Gateway-failover actions taken at this level (overlay re-routing
    /// and escalation live in the inter fabric's own stats).
    rstats: RecoveryStats,
}

impl HierNoc {
    /// Builds the fabric for `cores` tiles in clusters of `cluster_size`.
    ///
    /// # Panics
    ///
    /// Panics unless `cluster_size` evenly partitions `cores` (see
    /// [`ClusterMap::new`]), or if a SMART overlay is given `HPCmax = 0`.
    pub fn new(cores: usize, cluster_size: usize, intra: IntraKind, inter: InterKind) -> Self {
        let map = ClusterMap::new(cores, cluster_size);
        let overlay_shape = MeshShape::square_for(map.clusters());
        let intra = (0..map.clusters())
            .map(|k| match intra {
                IntraKind::Bus => Intra::Bus(BusNoc::new(overlay_shape)),
                IntraKind::Xbar => Intra::Xbar(XbarNoc::new(map.base(k), cluster_size)),
            })
            .collect();
        let inter = match inter {
            InterKind::Mesh => Inter::Mesh(MeshNoc::contended(overlay_shape)),
            InterKind::Smart(hpc) => Inter::Smart(SmartNoc::new(overlay_shape, hpc)),
        };
        Self {
            map,
            overlay_shape,
            inter_kind: inter_kind_of(&inter),
            intra,
            inter,
            routes: BTreeMap::new(),
            stats: NocStats::with_links(0),
            faults: FaultPlan::default(),
            recovery: RecoveryPolicy::default(),
            rstats: RecoveryStats::default(),
        }
    }

    /// The cluster partition this fabric routes over.
    pub fn cluster_map(&self) -> &ClusterMap {
        &self.map
    }

    /// The overlay grid (one tile per cluster).
    pub fn overlay_shape(&self) -> MeshShape {
        self.overlay_shape
    }

    /// The gateway tile serving cluster `k` at `cycle`. Statically this
    /// is the cluster base; with gateway failover armed and the static
    /// gateway's tile offline (a `slice:`/`cluster:` window covering it),
    /// the lowest-indexed surviving cluster member is elected instead.
    /// Election is a pure function of `(plan, policy, cycle)`, so every
    /// leg of a message — and every repeat of the run — agrees on it;
    /// the static gateway resumes as soon as its window ends. With no
    /// survivor (the whole cluster is down) the static gateway stands,
    /// and the simulator's slice re-homing redirects traffic instead.
    fn gateway_at(&mut self, k: usize, cycle: Cycle) -> CoreId {
        let gw = self.map.gateway(k);
        if !self.recovery.failover
            || self.faults.is_empty()
            || !self.faults.slice_offline(gw.index(), cycle.value())
        {
            return gw;
        }
        let base = self.map.base(k);
        for member in base..base + self.map.cluster_size() {
            if !self.faults.slice_offline(member, cycle.value()) {
                self.rstats.gateway_failovers += 1;
                return CoreId::new(member);
            }
        }
        gw
    }

    /// This fabric's recovery actions merged with its overlay's (gateway
    /// failovers here, re-routes/escalations in the inter fabric).
    pub fn recovery_stats_merged(&self) -> RecoveryStats {
        let mut merged = self.rstats.clone();
        if let Some(inner) = self.inter.recovery_stats() {
            merged.merge(inner);
        }
        merged
    }

    /// Zero-queueing end-to-end latency of the `src -> dst` route: one
    /// cycle per non-degenerate intra leg plus the overlay's uncontended
    /// traversal of the gateway-to-gateway path.
    fn route_floor(&self, src: CoreId, dst: CoreId) -> Cycles {
        let (cs, cd) = (self.map.cluster_of(src), self.map.cluster_of(dst));
        if cs == cd {
            return if src == dst {
                Cycles::ZERO
            } else {
                Cycles::ONE
            };
        }
        let hops = self.overlay_shape.hops(CoreId::new(cs), CoreId::new(cd)) as u64;
        let overlay = match self.inter_kind {
            InterKind::Mesh => crate::mesh::CYCLES_PER_HOP * hops,
            // SA-G setup, then ceil(hops / HPCmax) bypass cycles.
            InterKind::Smart(hpc) => 1 + hops.div_ceil(hpc as u64),
        };
        let leg1 = u64::from(src != self.map.gateway(cs));
        let leg3 = u64::from(dst != self.map.gateway(cd));
        Cycles::new(leg1 + overlay + leg3)
    }

    /// Routes one member-fabric delivery: forwards the next leg (true) or
    /// emits the final end-to-end delivery into `out` (false).
    fn step_route(&mut self, d: Delivery, out: &mut Vec<Delivery>) -> bool {
        let Some(route) = self.routes.get(&d.msg.id).copied() else {
            debug_assert!(false, "delivery for unrouted message {}", d.msg.id);
            return false;
        };
        match route.stage {
            Stage::Direct | Stage::IntraDst => {
                self.routes.remove(&d.msg.id);
                let lat = d.at - route.submitted_at;
                self.stats.delivered += 1;
                self.stats.latency.record(lat);
                if lat <= route.floor {
                    self.stats.no_contention += 1;
                } else {
                    self.stats.retries += 1;
                }
                out.push(Delivery {
                    msg: route.msg,
                    at: d.at,
                });
                false
            }
            Stage::IntraSrc => {
                // At the source gateway: hop onto the overlay, addressed
                // by cluster ids.
                let cs = self.map.cluster_of(route.msg.src);
                let cd = self.map.cluster_of(route.msg.dst);
                self.routes.insert(
                    d.msg.id,
                    Route {
                        stage: Stage::Overlay,
                        ..route
                    },
                );
                self.stats.grants += 1;
                self.inter.as_dyn().submit(
                    d.at,
                    Message::new(
                        route.msg.id,
                        CoreId::new(cs),
                        CoreId::new(cd),
                        route.msg.kind,
                    ),
                );
                true
            }
            Stage::Overlay => {
                // At the destination gateway: final intra leg.
                let cd = self.map.cluster_of(route.msg.dst);
                self.routes.insert(
                    d.msg.id,
                    Route {
                        stage: Stage::IntraDst,
                        ..route
                    },
                );
                self.stats.grants += 1;
                let gw = self.gateway_at(cd, d.at);
                self.intra[cd].as_dyn().submit(
                    d.at,
                    Message::new(route.msg.id, gw, route.msg.dst, route.msg.kind),
                );
                true
            }
        }
    }
}

fn inter_kind_of(inter: &Inter) -> InterKind {
    match inter {
        Inter::Mesh(_) => InterKind::Mesh,
        Inter::Smart(n) => InterKind::Smart(n.hpc_max()),
    }
}

impl Interconnect for HierNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        let floor = self.route_floor(msg.src, msg.dst);
        let cs = self.map.cluster_of(msg.src);
        let cd = self.map.cluster_of(msg.dst);
        if cs == cd {
            self.routes.insert(
                msg.id,
                Route {
                    msg,
                    stage: Stage::Direct,
                    submitted_at: now,
                    floor,
                },
            );
            self.intra[cs].as_dyn().submit(now, msg);
        } else {
            self.routes.insert(
                msg.id,
                Route {
                    msg,
                    stage: Stage::IntraSrc,
                    submitted_at: now,
                    floor,
                },
            );
            // First leg: source tile to its gateway (a free local message
            // when the source *is* the gateway).
            let gw = self.gateway_at(cs, now);
            self.intra[cs]
                .as_dyn()
                .submit(now, Message::new(msg.id, msg.src, gw, msg.kind));
        }
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        // A leg completing this cycle may hand off to a member fabric
        // that was already advanced, so cascade: re-advance until no leg
        // was forwarded. Member fabrics tolerate repeated same-cycle
        // advances (flights are gated on `ready_at`), and a message has
        // at most three legs, so this terminates quickly.
        loop {
            let mut legs: Vec<Delivery> = Vec::new();
            for f in &mut self.intra {
                legs.extend(f.as_dyn().advance(cycle));
            }
            legs.extend(self.inter.as_dyn().advance(cycle));
            let mut forwarded = false;
            for d in legs {
                forwarded |= self.step_route(d, &mut out);
            }
            if !forwarded {
                break;
            }
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // Minimum member lookahead along any cross-tile path: the
        // cheapest non-local message is one intra hop, unless clusters
        // are single tiles and everything rides the overlay.
        let inter = self.inter.lookahead();
        if self.map.cluster_size() > 1 {
            self.intra[0].lookahead().min(inter)
        } else {
            inter
        }
    }

    fn next_activity(&self) -> Option<Cycle> {
        self.intra
            .iter()
            .filter_map(Intra::next_activity)
            .chain(self.inter.next_activity())
            .min()
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.rstats.reset();
        for f in &mut self.intra {
            f.as_dyn().reset_stats();
        }
        self.inter.as_dyn().reset_stats();
    }

    fn install_faults(&mut self, plan: FaultPlan) {
        // Link faults target the overlay; cluster-local wires are assumed
        // reliable (cluster outages are modelled as slice-offline windows
        // by the simulator, not the network).
        self.faults = plan.clone();
        self.inter.as_dyn().install_faults(plan);
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.inter.fault_stats()
    }

    fn install_recovery(&mut self, policy: RecoveryPolicy) {
        // Failover is handled here; re-routing and escalation act on the
        // overlay's links, so the policy is forwarded down as well.
        self.recovery = policy;
        self.inter.as_dyn().install_recovery(policy);
    }

    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        // This level's own actions (gateway failovers). Use
        // [`HierNoc::recovery_stats_merged`] for the overlay-inclusive
        // aggregate.
        Some(&self.rstats)
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let now = cycle.value();
        let pending_messages = self
            .routes
            .values()
            .map(|r| PendingMessage {
                id: r.msg.id,
                src: r.msg.src.index(),
                dst: r.msg.dst.index(),
                kind: format!("{:?}", r.msg.kind),
                submitted_at: r.submitted_at.value(),
                attempts: 0,
            })
            .collect();
        DiagSnapshot {
            cycle: now,
            pending_messages,
            links: self.inter.diagnostics(cycle).links,
            active_faults: self.faults.active_at(now),
            ..DiagSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drain_until_idle;
    use crate::message::MsgKind;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn hier(cores: usize, cluster: usize) -> HierNoc {
        HierNoc::new(cores, cluster, IntraKind::Bus, InterKind::Mesh)
    }

    fn drain(noc: &mut HierNoc, from: Cycle) -> Vec<Delivery> {
        drain_until_idle(noc, from, 100_000).expect("hier fabric must quiesce")
    }

    #[test]
    fn same_cluster_messages_never_touch_the_overlay() {
        let mut noc = hier(64, 16);
        noc.submit(Cycle::ZERO, msg(1, 1, 14));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        // Bus: grant at 0, broadcast during 1.
        assert_eq!(d[0].at, Cycle::new(1));
        assert_eq!(d[0].msg.dst, CoreId::new(14));
        assert_eq!(noc.stats().delivered, 1);
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn cross_cluster_messages_take_three_legs() {
        let mut noc = hier(64, 16);
        // Core 5 (cluster 0) to core 50 (cluster 3): intra leg (1 cycle),
        // overlay 0->3 on the 2x2 cluster grid (2 hops, 2 cycles each),
        // intra leg (1 cycle).
        noc.submit(Cycle::ZERO, msg(1, 5, 50));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].msg.src, CoreId::new(5));
        assert_eq!(d[0].msg.dst, CoreId::new(50));
        let floor = noc.route_floor(CoreId::new(5), CoreId::new(50));
        assert_eq!(floor, Cycles::new(1 + 4 + 1));
        assert_eq!(d[0].at, Cycle::ZERO + floor);
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn gateway_to_gateway_skips_degenerate_legs() {
        let mut noc = hier(64, 16);
        // Gateways are cores 0/16/32/48; 0 -> 16 is one overlay hop.
        noc.submit(Cycle::ZERO, msg(1, 0, 16));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Cycle::new(2));
    }

    #[test]
    fn local_messages_deliver_in_the_submit_cycle() {
        let mut noc = hier(64, 16);
        noc.submit(Cycle::new(7), msg(1, 9, 9));
        let d = drain(&mut noc, Cycle::new(7));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Cycle::new(7));
    }

    #[test]
    fn clusters_have_independent_bandwidth() {
        // One message per cluster, all at once: every cluster's bus grants
        // in the same cycle (a flat bus would serialize all four).
        let mut noc = hier(64, 16);
        for k in 0..4 {
            noc.submit(Cycle::ZERO, msg(k as u64, k * 16 + 1, k * 16 + 9));
        }
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|d| d.at == Cycle::new(1)));
    }

    #[test]
    fn xbar_outputs_arbitrate_independently() {
        let mut noc = HierNoc::new(32, 8, IntraKind::Xbar, InterKind::Mesh);
        // Two messages to *different* outputs: both traverse in parallel.
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        noc.submit(Cycle::ZERO, msg(2, 1, 4));
        // Two messages to the *same* output: serialized.
        noc.submit(Cycle::ZERO, msg(3, 2, 5));
        noc.submit(Cycle::ZERO, msg(4, 6, 5));
        let d = drain(&mut noc, Cycle::ZERO);
        let at = |id: u64| d.iter().find(|d| d.msg.id == id).expect("delivered").at;
        assert_eq!(at(1), Cycle::new(1));
        assert_eq!(at(2), Cycle::new(1));
        assert_eq!(at(3), Cycle::new(1));
        assert_eq!(at(4), Cycle::new(2));
    }

    #[test]
    fn smart_overlay_bypasses_multiple_cluster_hops() {
        let mut noc = HierNoc::new(256, 16, IntraKind::Bus, InterKind::Smart(8));
        // Cluster grid is 4x4; corner to corner is 6 overlay hops, all
        // bypassed in one cycle after setup.
        noc.submit(Cycle::ZERO, msg(1, 1, 255));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        // 1 intra + (1 setup + 1 bypass) + 1 intra.
        assert_eq!(d[0].at, Cycle::new(4));
    }

    #[test]
    fn single_tile_clusters_collapse_to_the_overlay() {
        let noc = HierNoc::new(16, 1, IntraKind::Bus, InterKind::Mesh);
        assert_eq!(noc.lookahead(), Cycles::new(crate::mesh::CYCLES_PER_HOP));
        let mut noc = noc;
        noc.submit(Cycle::ZERO, msg(1, 0, 1));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d[0].at, Cycle::new(2));
    }

    #[test]
    fn overlay_outage_blocks_only_cross_cluster_traffic() {
        let mut noc = hier(64, 16);
        noc.install_faults("link:*@0-50=off; retry=inf".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 1, 9)); // same cluster
        noc.submit(Cycle::ZERO, msg(2, 1, 50)); // cross cluster
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 2);
        let at = |id: u64| d.iter().find(|d| d.msg.id == id).expect("delivered").at;
        assert_eq!(at(1), Cycle::new(1), "intra traffic unaffected");
        assert!(at(2) >= Cycle::new(50), "overlay leg waits out the outage");
        assert!(
            noc.fault_stats()
                .expect("overlay tracks faults")
                .link_blocked
                > 0
        );
    }

    #[test]
    fn gateway_failover_elects_a_surviving_member_and_reverts() {
        let mut noc = hier(64, 16);
        // Gateway tile 48 (cluster 3's base) offline for [0, 100).
        noc.install_faults("slice:48@0-100".parse().unwrap());
        noc.install_recovery("failover".parse().unwrap());
        // Cross-cluster message into cluster 3 during the outage: the
        // final leg runs through elected gateway 49, not 48.
        noc.submit(Cycle::ZERO, msg(1, 5, 50));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].msg.dst, CoreId::new(50));
        assert!(noc.recovery_stats().unwrap().gateway_failovers > 0);
        let merged = noc.recovery_stats_merged();
        assert!(merged.gateway_failovers > 0);
        // After the window the static gateway is re-elected.
        assert_eq!(noc.gateway_at(3, Cycle::new(100)), CoreId::new(48));
        assert_eq!(noc.gateway_at(3, Cycle::new(50)), CoreId::new(49));
    }

    #[test]
    fn whole_cluster_outage_leaves_the_static_gateway() {
        let mut noc = hier(64, 16);
        noc.install_faults("cluster:3/16@0-100".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        // No surviving member: the static gateway stands (the simulator's
        // re-homing layer redirects traffic away from the cluster).
        assert_eq!(noc.gateway_at(3, Cycle::new(50)), CoreId::new(48));
    }

    #[test]
    fn overlay_recovery_flows_through_the_installed_policy() {
        let mut noc = hier(64, 16);
        noc.install_faults("link:*@0-100000=off".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        noc.submit(Cycle::ZERO, msg(1, 1, 50));
        let d = drain(&mut noc, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].at < Cycle::new(100000),
            "overlay must escalate, not wait"
        );
        let merged = noc.recovery_stats_merged();
        assert!(merged.escalations > 0 || merged.reroutes > 0);
    }

    #[test]
    fn end_to_end_latency_is_recorded_once_per_message() {
        let mut noc = hier(64, 16);
        noc.submit(Cycle::ZERO, msg(1, 5, 50));
        noc.submit(Cycle::ZERO, msg(2, 1, 2));
        drain(&mut noc, Cycle::ZERO);
        assert_eq!(noc.stats().delivered, 2);
        assert_eq!(noc.stats().latency.count(), 2);
    }

    #[test]
    fn reset_stats_clears_members_too() {
        let mut noc = hier(64, 16);
        noc.submit(Cycle::ZERO, msg(1, 5, 50));
        drain(&mut noc, Cycle::ZERO);
        noc.reset_stats();
        assert_eq!(noc.stats().delivered, 0);
        noc.submit(Cycle::new(100), msg(2, 5, 50));
        let d = drain(&mut noc, Cycle::new(100));
        assert_eq!(d.len(), 1);
        assert_eq!(noc.stats().delivered, 1);
    }
}
