//! NOCSTAR's per-link arbiters (paper §III-B2).
//!
//! Each data link has an arbiter that grants the link to at most one
//! requesting core per cycle. To avoid livelock when two requests each
//! acquire only part of their path, arbiters share a *static priority
//! order* over cores — the globally highest-priority requester is
//! guaranteed to win every link it asks for. To avoid starvation, the
//! static order rotates round-robin every 1000 cycles.

use nocstar_types::time::Cycle;
use nocstar_types::CoreId;

/// The chip-wide rotating static priority order.
///
/// # Examples
///
/// ```
/// use nocstar_noc::arbiter::PriorityRotation;
/// use nocstar_types::{CoreId, Cycle};
///
/// let prio = PriorityRotation::new(4, 1000);
/// // In the first epoch core0 has top priority (rank 0).
/// assert_eq!(prio.rank(CoreId::new(0), Cycle::new(0)), 0);
/// // One epoch later the order has rotated: core1 is on top.
/// assert_eq!(prio.rank(CoreId::new(1), Cycle::new(1000)), 0);
/// assert_eq!(prio.rank(CoreId::new(0), Cycle::new(1000)), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityRotation {
    cores: usize,
    period: u64,
}

impl PriorityRotation {
    /// The paper's rotation period.
    pub const PAPER_PERIOD: u64 = 1000;

    /// A rotation over `cores` cores, rotating every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `period` is zero.
    pub fn new(cores: usize, period: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(period > 0, "rotation period must be nonzero");
        Self { cores, period }
    }

    /// The rotation epoch containing `now` (increments every `period`
    /// cycles; each increment shifts the whole priority order by one).
    pub fn epoch(&self, now: Cycle) -> u64 {
        now.value() / self.period
    }

    /// The priority rank of `core` at time `now` — 0 is highest.
    pub fn rank(&self, core: CoreId, now: Cycle) -> usize {
        let rotation = (now.value() / self.period) as usize % self.cores;
        (core.index() + self.cores - rotation) % self.cores
    }

    /// The highest-priority core among `candidates` at time `now`, or
    /// `None` when empty.
    pub fn winner<'a, I>(&self, candidates: I, now: Cycle) -> Option<CoreId>
    where
        I: IntoIterator<Item = &'a CoreId>,
    {
        candidates
            .into_iter()
            .copied()
            .min_by_key(|c| self.rank(*c, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranks_are_a_permutation_each_epoch() {
        let prio = PriorityRotation::new(8, 1000);
        for epoch in [0u64, 1, 7, 8, 123] {
            let now = Cycle::new(epoch * 1000);
            let mut ranks: Vec<usize> = (0..8).map(|i| prio.rank(CoreId::new(i), now)).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_core_eventually_gets_top_priority() {
        let prio = PriorityRotation::new(4, 1000);
        let mut topped = vec![false; 4];
        for epoch in 0..4u64 {
            let now = Cycle::new(epoch * 1000);
            for (i, top) in topped.iter_mut().enumerate() {
                if prio.rank(CoreId::new(i), now) == 0 {
                    *top = true;
                }
            }
        }
        assert!(topped.iter().all(|&t| t), "starvation: {topped:?}");
    }

    #[test]
    fn rank_is_stable_within_an_epoch() {
        let prio = PriorityRotation::new(4, 1000);
        let r0 = prio.rank(CoreId::new(2), Cycle::new(0));
        let r999 = prio.rank(CoreId::new(2), Cycle::new(999));
        assert_eq!(r0, r999);
        assert_ne!(r0, prio.rank(CoreId::new(2), Cycle::new(1000)));
    }

    #[test]
    fn winner_picks_minimum_rank() {
        let prio = PriorityRotation::new(4, 1000);
        let candidates = [CoreId::new(3), CoreId::new(1)];
        assert_eq!(
            prio.winner(&candidates, Cycle::new(0)),
            Some(CoreId::new(1))
        );
        // After one rotation, core1 has rank 0 and still wins; after two,
        // core2 tops but isn't a candidate — core3 (rank 1) beats core1
        // (rank 3).
        assert_eq!(
            prio.winner(&candidates, Cycle::new(2000)),
            Some(CoreId::new(3))
        );
        assert_eq!(prio.winner(&[], Cycle::new(0)), None);
    }

    proptest! {
        /// Exactly one core holds rank 0 at any time, and the mapping
        /// rank→core is a rotation of the identity.
        #[test]
        fn prop_single_top_priority(cores in 1usize..128, t in 0u64..1_000_000) {
            let prio = PriorityRotation::new(cores, PriorityRotation::PAPER_PERIOD);
            let now = Cycle::new(t);
            let tops: Vec<usize> = (0..cores)
                .filter(|&i| prio.rank(CoreId::new(i), now) == 0)
                .collect();
            prop_assert_eq!(tops.len(), 1);
        }
    }
}
