//! Messages on the TLB interconnect.
//!
//! Translation traffic is tiny: a request carries a virtual page number and
//! slice id, a response carries a physical frame. Both fit in a single flit
//! on a 64-bit datapath, so the network models treat every message as one
//! flit (no serialization delay; the paper's narrow-FBFly serialization
//! penalty is modelled analytically in [`crate::latency`]).

use nocstar_types::time::Cycle;
use nocstar_types::CoreId;
use std::fmt;

/// What a message is carrying (used for statistics and for the simulator's
/// dispatch; the network treats all kinds identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// L1-TLB-miss lookup request to a shared L2 slice/bank.
    TlbRequest,
    /// Translation (or miss notification) back to the requester.
    TlbResponse,
    /// Shootdown invalidation towards a slice or a leader core.
    Invalidation,
    /// Insert of a freshly walked translation into a remote slice
    /// (walk-at-requester policy, Fig 17).
    Insert,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgKind::TlbRequest => write!(f, "req"),
            MsgKind::TlbResponse => write!(f, "resp"),
            MsgKind::Invalidation => write!(f, "inval"),
            MsgKind::Insert => write!(f, "insert"),
        }
    }
}

/// A single-flit message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// Caller-chosen id used to match deliveries back to transactions.
    pub id: u64,
    /// Source tile.
    pub src: CoreId,
    /// Destination tile.
    pub dst: CoreId,
    /// Payload kind.
    pub kind: MsgKind,
}

impl Message {
    /// Builds a message.
    pub fn new(id: u64, src: CoreId, dst: CoreId, kind: MsgKind) -> Self {
        Self { id, src, dst, kind }
    }

    /// True when source and destination share a tile (no network traversal).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{} {}->{}", self.kind, self.id, self.src, self.dst)
    }
}

/// A message arriving at its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered message.
    pub msg: Message,
    /// Arrival cycle.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_is_src_eq_dst() {
        let local = Message::new(1, CoreId::new(3), CoreId::new(3), MsgKind::TlbRequest);
        assert!(local.is_local());
        let remote = Message::new(2, CoreId::new(3), CoreId::new(4), MsgKind::TlbResponse);
        assert!(!remote.is_local());
    }

    #[test]
    fn display_shows_route() {
        let m = Message::new(7, CoreId::new(0), CoreId::new(5), MsgKind::Invalidation);
        assert_eq!(m.to_string(), "inval#7 core0->core5");
    }
}
