//! The NOCSTAR circuit-switched interconnect (paper §III-B).
//!
//! Datapath: latchless mux switches let a flit traverse up to `HPCmax`
//! hops in a single cycle; a message is latched only at its destination.
//! Control path: before traversing, a core requests *every* link arbiter on
//! its XY path in the same cycle; the per-link grants are ANDed, and on any
//! partial failure the whole path is retried next cycle, so no packet ever
//! occupies a partial path. Arbiters share a static priority that rotates
//! every 1000 cycles ([`crate::arbiter::PriorityRotation`]), which makes
//! the fabric livelock-free (the top-priority requester wins all its links)
//! and starvation-free (everyone is eventually top priority).
//!
//! Fig 16 (left) compares two link-reservation modes, both implemented
//! here: [`AcquireMode::OneWay`] arbitrates request and response
//! separately; [`AcquireMode::RoundTrip`] acquires the forward *and*
//! reverse paths at request time and holds them until the response lands.

use crate::arbiter::PriorityRotation;
use crate::message::{Delivery, Message, MsgKind};
use crate::topology::{LinkId, Links};
use crate::{Interconnect, NocStats};
use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, LinkState, PendingMessage, RecoveryPolicy, RecoveryStats,
    SimError,
};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::MeshShape;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Link-reservation policy (Fig 16 left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcquireMode {
    /// Each message (request *and* response) arbitrates for its own
    /// one-way path. The paper finds this performs better.
    #[default]
    OneWay,
    /// The request acquires forward and reverse paths together and holds
    /// them until the response completes; the response needs no setup.
    RoundTrip,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: Message,
    path: Vec<LinkId>,
    reverse_path: Vec<LinkId>,
    depart_at: Cycle,
    submitted_at: Cycle,
    attempts: u64,
    /// Retries caused by an injected fault (setup denial or link outage),
    /// counted against the plan's [`nocstar_faults::RetryPolicy`].
    fault_attempts: u64,
}

#[derive(Debug, Clone)]
struct Reservation {
    links: Vec<LinkId>,
    reverse_hops: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Cycle,
    seq: u64,
    msg: Message,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (at, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The NOCSTAR fabric.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct CircuitFabric {
    links: Links,
    hpc_max: usize,
    mode: AcquireMode,
    prio: PriorityRotation,
    /// Per link: last cycle in which it carries a flit (inclusive).
    busy_until: Vec<Cycle>,
    /// Per link: message id holding a round-trip reservation, if any.
    reserved_by: Vec<Option<u64>>,
    reservations: BTreeMap<u64, Reservation>,
    pending: Vec<Pending>,
    scheduled: BinaryHeap<Scheduled>,
    seq: u64,
    stats: NocStats,
    /// Last priority-rotation epoch seen by `advance` (for the rotation
    /// counter in [`NocStats`]).
    last_epoch: u64,
    /// When true, arbitration always succeeds (the `NOCSTAR (ideal)`
    /// series of Fig 15: zero contention, real setup + traversal cycles).
    contention_free: bool,
    /// Injected fault schedule (empty by default: zero perturbation).
    faults: FaultPlan,
    /// Fault/recovery actions taken so far.
    fstats: FaultStats,
    /// Closed-loop recovery policy (disabled by default).
    recovery: RecoveryPolicy,
    /// Recovery actions taken so far.
    rstats: RecoveryStats,
}

impl CircuitFabric {
    /// Builds a fabric over `mesh` with the given maximum hops per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `hpc_max` is zero.
    pub fn new(mesh: MeshShape, hpc_max: usize, mode: AcquireMode) -> Self {
        Self::with_rotation_period(mesh, hpc_max, mode, PriorityRotation::PAPER_PERIOD)
    }

    /// [`new`](Self::new) with an explicit priority-rotation period
    /// (ablation of the paper's 1000-cycle choice).
    ///
    /// # Panics
    ///
    /// Panics if `hpc_max` or `rotation_period` is zero.
    pub fn with_rotation_period(
        mesh: MeshShape,
        hpc_max: usize,
        mode: AcquireMode,
        rotation_period: u64,
    ) -> Self {
        assert!(hpc_max > 0, "HPCmax must be at least 1");
        let links = Links::new(mesh);
        let n = links.count().max(1);
        Self {
            prio: PriorityRotation::new(mesh.tiles(), rotation_period),
            stats: NocStats::with_links(links.count()),
            links,
            hpc_max,
            mode,
            busy_until: vec![Cycle::ZERO; n],
            reserved_by: vec![None; n],
            reservations: BTreeMap::new(),
            pending: Vec::new(),
            scheduled: BinaryHeap::new(),
            seq: 0,
            last_epoch: 0,
            contention_free: false,
            faults: FaultPlan::default(),
            fstats: FaultStats::default(),
            recovery: RecoveryPolicy::default(),
            rstats: RecoveryStats::default(),
        }
    }

    /// A contention-free variant: the `NOCSTAR (ideal)` bars of Fig 15.
    pub fn ideal(mesh: MeshShape, hpc_max: usize) -> Self {
        let mut fabric = Self::new(mesh, hpc_max, AcquireMode::OneWay);
        fabric.contention_free = true;
        fabric
    }

    /// The configured maximum hops per cycle.
    pub fn hpc_max(&self) -> usize {
        self.hpc_max
    }

    /// The configured acquire mode.
    pub fn mode(&self) -> AcquireMode {
        self.mode
    }

    /// Cycles a granted flit needs to traverse `hops` hops.
    pub fn traversal_cycles(&self, hops: usize) -> Cycles {
        Cycles::new(hops.div_ceil(self.hpc_max) as u64)
    }

    fn schedule(&mut self, msg: Message, at: Cycle) {
        self.seq += 1;
        self.scheduled.push(Scheduled {
            at,
            seq: self.seq,
            msg,
        });
    }

    fn link_free(&self, link: LinkId, now: Cycle) -> bool {
        self.busy_until[link.index()] <= now && self.reserved_by[link.index()].is_none()
    }

    /// Sends the response of a round-trip transaction over its reserved
    /// path: no arbitration, departs at `depart_at`, and releases the
    /// reservation when it lands.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `msg.id` holds no reservation (the
    /// request must have been submitted in [`AcquireMode::RoundTrip`] and
    /// already delivered).
    pub fn send_response(&mut self, msg: Message, depart_at: Cycle) -> Result<(), Box<SimError>> {
        let Some(reservation) = self.reservations.remove(&msg.id) else {
            return Err(Box::new(SimError::Protocol {
                context: format!("no round-trip reservation for message {}", msg.id),
                snapshot: self.diagnostics(depart_at),
            }));
        };
        let arrival = depart_at + self.traversal_cycles(reservation.reverse_hops);
        self.stats.latency.record(arrival - depart_at);
        let held = (arrival - depart_at).value();
        for link in &reservation.links {
            self.reserved_by[link.index()] = None;
            self.busy_until[link.index()] = arrival;
            self.stats.link_busy[link.index()] += held;
        }
        self.schedule(msg, arrival);
        Ok(())
    }

    /// True when a round-trip reservation for `id` is outstanding.
    pub fn has_reservation(&self, id: u64) -> bool {
        self.reservations.contains_key(&id)
    }

    /// How many waiting path requests arbitrate in one cycle. Hardware
    /// exposes only a bounded number of simultaneous requesters to the
    /// link arbiters (each core holds a handful of MSHR-like slots);
    /// bounding the window also keeps deeply-saturated synthetic runs
    /// (far beyond TLB-like load) from degenerating into quadratic work.
    /// Requests beyond the window wait in FIFO order.
    const ARBITRATION_WINDOW: usize = 1024;

    fn arbitrate(&mut self, cycle: Cycle) {
        if self.pending.is_empty() {
            return;
        }
        let now = cycle.value();
        let denied = self.faults.setup_denied(now);
        // Per-link grants: each requested arbiter grants its
        // highest-priority requester, provided the link is free this cycle.
        // Ties (one core with several outstanding messages) break by
        // message id, oldest first.
        let mut grants: BTreeMap<LinkId, (usize, u64, usize)> = BTreeMap::new();
        let mut active: Vec<usize> = Vec::new();
        // Messages whose setup failed because of an injected fault this
        // cycle (setup denial or an outaged link on their path) rather
        // than ordinary contention.
        let mut fault_blocked: BTreeSet<usize> = BTreeSet::new();
        for (i, p) in self.pending.iter().enumerate() {
            if p.depart_at > cycle {
                continue;
            }
            if active.len() >= Self::ARBITRATION_WINDOW {
                break;
            }
            active.push(i);
            let outaged = !self.faults.is_empty()
                && p.path
                    .iter()
                    .chain(&p.reverse_path)
                    .any(|l| self.faults.link_outage(l.index(), now));
            if denied || outaged {
                // A fault-blocked message does not even reach the link
                // arbiters, so it cannot deny grants to healthy traffic.
                fault_blocked.insert(i);
                if denied {
                    self.fstats.denied_setups += 1;
                } else {
                    self.fstats.link_blocked += 1;
                }
                continue;
            }
            if self.contention_free {
                continue;
            }
            let rank = self.prio.rank(p.msg.src, cycle);
            for link in p.path.iter().chain(&p.reverse_path) {
                if !self.link_free(*link, cycle) {
                    continue;
                }
                let key = (rank, p.msg.id, i);
                grants
                    .entry(*link)
                    .and_modify(|g| {
                        if (key.0, key.1) < (g.0, g.1) {
                            *g = key;
                        }
                    })
                    .or_insert(key);
            }
        }

        let mut proceeded: Vec<usize> = Vec::new();
        for &i in &active {
            if fault_blocked.contains(&i) {
                continue;
            }
            let p = &self.pending[i];
            let all_granted = self.contention_free
                || p.path
                    .iter()
                    .chain(&p.reverse_path)
                    .all(|l| grants.get(l).is_some_and(|g| g.2 == i));
            if all_granted {
                proceeded.push(i);
            }
        }

        for &i in &proceeded {
            let p = &self.pending[i];
            let hops = p.path.len();
            // Injected link degradation stretches the traversal.
            let degrade: u64 = if self.faults.is_empty() {
                0
            } else {
                p.path
                    .iter()
                    .map(|l| self.faults.link_degrade(l.index(), now))
                    .sum()
            };
            let arrival = cycle + self.traversal_cycles(hops) + Cycles::new(degrade);
            let msg = p.msg;
            let first_try = p.attempts == 0;
            self.stats.latency.record(arrival - p.submitted_at);
            let path = p.path.clone();
            let reverse_path = p.reverse_path.clone();
            let traversal = (arrival - cycle).value();
            if degrade > 0 {
                self.fstats.degraded_traversals += 1;
            }
            for link in &path {
                self.busy_until[link.index()] = arrival;
                self.stats.link_busy[link.index()] += traversal;
            }
            self.stats.grants += 1;
            if self.mode == AcquireMode::RoundTrip && !reverse_path.is_empty() {
                let mut all: Vec<LinkId> = path;
                all.extend(reverse_path.iter().copied());
                for link in &all {
                    self.reserved_by[link.index()] = Some(msg.id);
                }
                self.reservations.insert(
                    msg.id,
                    Reservation {
                        links: all,
                        reverse_hops: hops,
                    },
                );
            }
            if first_try {
                self.stats.no_contention += 1;
            }
            self.schedule(msg, arrival);
        }

        // Remove proceeded messages; bump the rest to retry. Contention
        // losers retry next cycle (the paper's behavior); fault-blocked
        // messages back off deterministically and, once they exhaust the
        // retry budget — the plan's, or the tighter escalation threshold
        // when a recovery policy is armed — escape over the buffered
        // multi-hop service path so no translation is ever lost.
        let proceeded_set: BTreeSet<usize> = proceeded.into_iter().collect();
        let active_set: BTreeSet<usize> = active.into_iter().collect();
        let max_fault_attempts = self.recovery.effective_max_attempts(self.faults.retry);
        let plan_attempts = self.faults.retry.max_attempts;
        let mut escapes: Vec<(Message, Cycle, Cycle, u64)> = Vec::new();
        let mut kept = Vec::with_capacity(self.pending.len());
        for (i, mut p) in std::mem::take(&mut self.pending).into_iter().enumerate() {
            if proceeded_set.contains(&i) {
                continue;
            }
            if p.depart_at <= cycle && active_set.contains(&i) {
                p.attempts += 1;
                self.stats.retries += 1;
                if fault_blocked.contains(&i) {
                    p.fault_attempts += 1;
                    if max_fault_attempts.is_some_and(|m| p.fault_attempts >= m) {
                        if plan_attempts.is_none_or(|pm| p.fault_attempts < u64::from(pm)) {
                            // The escalation threshold, not the plan's
                            // budget, triggered this escape.
                            self.rstats.escalations += 1;
                        }
                        // Escape: deliver over the (slow) buffered fallback
                        // at ~2 cycles/hop, releasing the fast fabric. No
                        // reservation is made, so round-trip responses to
                        // an escaped request arbitrate as one-way traffic.
                        let hops = p.path.len() as u64;
                        let arrival = cycle + Cycles::new(2 * hops + 1);
                        escapes.push((p.msg, arrival, p.submitted_at, p.fault_attempts));
                        continue;
                    }
                    let wait = self.faults.backoff(p.fault_attempts, p.msg.id);
                    p.depart_at = cycle + Cycles::new(wait);
                    self.fstats.backoff_cycles += wait;
                } else {
                    p.depart_at = cycle + Cycles::ONE;
                }
            }
            kept.push(p);
        }
        self.pending = kept;
        for (msg, arrival, submitted_at, attempts) in escapes {
            self.fstats.fallbacks += 1;
            self.fstats.retries_per_fallback.record(attempts);
            self.stats.latency.record(arrival - submitted_at);
            self.schedule(msg, arrival);
        }
    }
}

impl Interconnect for CircuitFabric {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.schedule(msg, now);
            self.stats.no_contention += 1;
            return;
        }
        let path = self.links.path(msg.src, msg.dst);
        // Only lookup requests reserve a round trip: they are the only
        // messages with a guaranteed response. One-way traffic (inserts,
        // invalidations, one-way-mode responses) must not hold links open.
        let reverse_path = if self.mode == AcquireMode::RoundTrip && msg.kind == MsgKind::TlbRequest
        {
            self.links.path(msg.dst, msg.src)
        } else {
            Vec::new()
        };
        self.pending.push(Pending {
            msg,
            path,
            reverse_path,
            depart_at: now,
            submitted_at: now,
            attempts: 0,
            fault_attempts: 0,
        });
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        let epoch = self.prio.epoch(cycle);
        if epoch > self.last_epoch {
            self.stats.rotations += epoch - self.last_epoch;
            self.last_epoch = epoch;
        }
        self.arbitrate(cycle);
        let mut out = Vec::new();
        while self.scheduled.peek().is_some_and(|top| top.at <= cycle) {
            let Some(s) = self.scheduled.pop() else { break };
            self.stats.delivered += 1;
            out.push(Delivery {
                msg: s.msg,
                at: s.at,
            });
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // Full-path acquisition happens in the submit cycle T; even a
        // fully granted path traverses during T+1 at the earliest
        // (`traversal_cycles` is at least one for any non-local hop count).
        Cycles::ONE
    }

    fn next_activity(&self) -> Option<Cycle> {
        let pending_min = self.pending.iter().map(|p| p.depart_at).min();
        let sched_min = self.scheduled.peek().map(|s| s.at);
        match (pending_min, sched_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn install_recovery(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        Some(&self.rstats)
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.fstats.reset();
        self.rstats.reset();
    }

    fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        Some(&self.fstats)
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let now = cycle.value();
        let pending_messages = self
            .pending
            .iter()
            .map(|p| PendingMessage {
                id: p.msg.id,
                src: p.msg.src.index(),
                dst: p.msg.dst.index(),
                kind: format!("{:?}", p.msg.kind),
                submitted_at: p.submitted_at.value(),
                attempts: p.fault_attempts,
            })
            .collect();
        let links = (0..self.links.count())
            .map(|l| LinkState {
                link: l,
                busy_until: self.busy_until[l].value(),
                reserved_by: self.reserved_by[l],
                faulted: self.faults.link_outage(l, now),
            })
            .collect();
        DiagSnapshot {
            cycle: now,
            pending_messages,
            links,
            active_faults: self.faults.active_at(now),
            ..DiagSnapshot::default()
        }
    }
}

impl CircuitFabric {
    /// Records the end-to-end latency of a completed transaction into the
    /// fabric's statistics (called by the simulator, which knows when the
    /// transaction began).
    pub fn record_latency(&mut self, latency: Cycles) {
        self.stats.latency.record(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;
    use proptest::prelude::*;

    fn fabric(tiles: usize, hpc: usize) -> CircuitFabric {
        CircuitFabric::new(MeshShape::square_for(tiles), hpc, AcquireMode::OneWay)
    }

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    /// Drives the fabric until quiescent; returns deliveries in order.
    fn run_until_idle(fabric: &mut CircuitFabric, from: Cycle) -> Vec<Delivery> {
        crate::drain_until_idle(fabric, from, 10_000).expect("fabric did not quiesce")
    }

    #[test]
    fn uncontended_remote_access_takes_setup_plus_one_cycle() {
        let mut f = fabric(16, 16);
        f.submit(Cycle::new(5), msg(1, 0, 15));
        let d = run_until_idle(&mut f, Cycle::new(5));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Cycle::new(6)); // setup at 5, traverse during 6
        assert_eq!(f.stats().no_contention, 1);
        assert_eq!(f.stats().retries, 0);
    }

    #[test]
    fn local_messages_skip_the_network() {
        let mut f = fabric(16, 16);
        f.submit(Cycle::new(3), msg(1, 4, 4));
        let d = f.advance(Cycle::new(3));
        assert_eq!(d[0].at, Cycle::new(3));
    }

    #[test]
    fn hpc_max_pipelines_long_paths() {
        // 64 tiles = 8x8: corner-to-corner is 14 hops.
        let mut f = fabric(64, 4);
        f.submit(Cycle::new(0), msg(1, 0, 63));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        // ceil(14/4) = 4 traversal cycles after the cycle-0 setup.
        assert_eq!(d[0].at, Cycle::new(4));
        assert_eq!(f.traversal_cycles(14), Cycles::new(4));
    }

    #[test]
    fn conflicting_paths_serialize_by_priority() {
        // Cores 0 and 1 both target core 3 on a 4x1 chain: paths share
        // the link 1->2 (and 2->3).
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        f.submit(Cycle::ZERO, msg(1, 0, 3));
        f.submit(Cycle::ZERO, msg(2, 1, 3));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert_eq!(d.len(), 2);
        // Core 0 has top priority in epoch 0: it wins cycle 0 (arrives 1);
        // core 1 retries and wins cycle 1 (arrives 2).
        assert_eq!(d[0].msg.id, 1);
        assert_eq!(d[0].at, Cycle::new(1));
        assert_eq!(d[1].msg.id, 2);
        assert_eq!(d[1].at, Cycle::new(2));
        assert_eq!(f.stats().retries, 1);
        assert_eq!(f.stats().no_contention, 1);
    }

    #[test]
    fn disjoint_paths_proceed_in_the_same_cycle() {
        let mesh = MeshShape::new(4, 4);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        f.submit(Cycle::ZERO, msg(1, 0, 3)); // top row, eastbound
        f.submit(Cycle::ZERO, msg(2, 12, 15)); // bottom row, eastbound
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert!(d.iter().all(|d| d.at == Cycle::new(1)));
        assert_eq!(f.stats().retries, 0);
    }

    #[test]
    fn partial_grants_never_traverse() {
        // A(0->2) needs links 0->1,1->2; B(1->3) needs 1->2,2->3. They
        // share 1->2, so exactly one proceeds per cycle even though B's
        // link 2->3 is free.
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        f.submit(Cycle::ZERO, msg(1, 0, 2));
        f.submit(Cycle::ZERO, msg(2, 1, 3));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        let by_id: std::collections::HashMap<u64, Cycle> =
            d.iter().map(|d| (d.msg.id, d.at)).collect();
        assert_eq!(by_id[&1], Cycle::new(1));
        assert_eq!(by_id[&2], Cycle::new(2));
    }

    #[test]
    fn priority_rotation_prevents_starvation() {
        // Core 1's path is a strict subset of core 0's; core 0 (top
        // priority in epoch 0) re-submits every cycle. In epoch 0 core 1
        // loses, but after rotation at cycle 1000 it wins.
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let mut victim_delivery = None;
        f.submit(Cycle::new(998), msg(1_000_000, 1, 3));
        let mut id = 0u64;
        for t in 998..1003u64 {
            id += 1;
            f.submit(Cycle::new(t), msg(id, 0, 3));
            for d in f.advance(Cycle::new(t)) {
                if d.msg.id == 1_000_000 {
                    victim_delivery = Some(d.at);
                }
            }
        }
        let _ = run_until_idle(&mut f, Cycle::new(1003));
        let delivered_at = victim_delivery.expect("victim starved");
        assert!(
            delivered_at >= Cycle::new(1000),
            "victim should lose the pre-rotation cycles"
        );
        assert!(delivered_at <= Cycle::new(1002));
    }

    #[test]
    fn round_trip_reserves_and_releases_links() {
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::RoundTrip);
        f.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = f.advance(Cycle::ZERO);
        assert!(d.is_empty());
        let d = f.advance(Cycle::new(1));
        assert_eq!(d[0].at, Cycle::new(1));
        assert!(f.has_reservation(1));

        // While reserved, another core cannot use the shared links.
        f.submit(Cycle::new(2), msg(2, 1, 3));
        assert!(f.advance(Cycle::new(2)).is_empty());
        assert!(f.advance(Cycle::new(3)).is_empty());

        // Slice answers at cycle 10; response needs no arbitration.
        let resp = Message::new(1, CoreId::new(3), CoreId::new(0), MsgKind::TlbResponse);
        f.send_response(resp, Cycle::new(10)).unwrap();
        assert!(!f.has_reservation(1));
        let d = run_until_idle(&mut f, Cycle::new(4));
        let resp_at = d
            .iter()
            .find(|d| d.msg.kind == MsgKind::TlbResponse)
            .unwrap()
            .at;
        assert_eq!(resp_at, Cycle::new(11));
        // The blocked message finally proceeds after the response lands.
        let late = d.iter().find(|d| d.msg.id == 2).unwrap();
        assert!(late.at > Cycle::new(10));
    }

    #[test]
    fn one_way_kinds_never_reserve_in_round_trip_mode() {
        // Regression test: inserts and invalidations have no response, so
        // they must not hold a round-trip reservation open (that deadlocks
        // the fabric: the links would never be released).
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::RoundTrip);
        for (id, kind) in [(1u64, MsgKind::Insert), (2, MsgKind::Invalidation)] {
            f.submit(
                Cycle::ZERO,
                Message::new(id, CoreId::new(0), CoreId::new(3), kind),
            );
        }
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert_eq!(d.len(), 2, "one-way messages must deliver and release");
        assert!(!f.has_reservation(1));
        assert!(!f.has_reservation(2));
        // The links are free again: a fresh request proceeds immediately.
        f.submit(Cycle::new(100), msg(3, 0, 3));
        let d = run_until_idle(&mut f, Cycle::new(100));
        assert_eq!(d[0].at, Cycle::new(101));
    }

    #[test]
    fn response_without_reservation_is_a_protocol_error() {
        let mut f = fabric(16, 16);
        let err = f
            .send_response(msg(9, 1, 0), Cycle::new(5))
            .expect_err("must reject a response with no reservation");
        assert_eq!(err.kind(), "protocol");
        assert!(err.to_string().contains("no round-trip reservation"));
        assert_eq!(err.snapshot().cycle, 5);
        // The fabric stays usable after the rejected call.
        f.submit(Cycle::new(6), msg(10, 0, 5));
        let d = run_until_idle(&mut f, Cycle::new(6));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ideal_fabric_never_retries() {
        let mesh = MeshShape::new(4, 1);
        let mut f = CircuitFabric::ideal(mesh, 16);
        for i in 0..8 {
            f.submit(Cycle::ZERO, msg(i, 0, 3));
        }
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert_eq!(d.len(), 8);
        assert!(d.iter().all(|d| d.at == Cycle::new(1)));
        assert_eq!(f.stats().retries, 0);
    }

    #[test]
    fn next_activity_tracks_pending_and_scheduled() {
        let mut f = fabric(16, 16);
        assert_eq!(f.next_activity(), None);
        f.submit(Cycle::new(7), msg(1, 0, 5));
        assert_eq!(f.next_activity(), Some(Cycle::new(7)));
        f.advance(Cycle::new(7));
        assert_eq!(f.next_activity(), Some(Cycle::new(8))); // delivery
        f.advance(Cycle::new(8));
        assert_eq!(f.next_activity(), None);
    }

    #[test]
    fn setup_denial_delays_but_never_loses_messages() {
        let mut f = fabric(16, 16);
        f.install_faults("deny@0-20".parse().unwrap());
        f.submit(Cycle::ZERO, msg(1, 0, 15));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert_eq!(d.len(), 1);
        assert!(d[0].at >= Cycle::new(20), "denied setups cannot proceed");
        let fs = f.fault_stats().unwrap();
        assert!(fs.denied_setups > 0);
        assert!(fs.backoff_cycles > 0);
    }

    #[test]
    fn degraded_links_stretch_traversal() {
        let mut f = fabric(16, 16);
        f.install_faults("link:*@0-100=+3".parse().unwrap());
        f.submit(Cycle::ZERO, msg(1, 0, 1)); // 1 hop
        let d = run_until_idle(&mut f, Cycle::ZERO);
        // 1 traversal cycle + 3 extra on the single degraded link.
        assert_eq!(d[0].at, Cycle::new(4));
        assert_eq!(f.fault_stats().unwrap().degraded_traversals, 1);
    }

    #[test]
    fn permanent_outage_escapes_after_retry_budget() {
        let mut f = fabric(16, 16);
        f.install_faults("link:*@0-1000000=off; retry=4".parse().unwrap());
        f.submit(Cycle::ZERO, msg(1, 0, 15));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert_eq!(d.len(), 1, "escape path must deliver the message");
        let fs = f.fault_stats().unwrap();
        assert_eq!(fs.fallbacks, 1);
        assert_eq!(fs.retries_per_fallback.count(), 1);
        assert!(fs.link_blocked >= 4);
    }

    #[test]
    fn escalation_clamps_setup_retry_and_unwedges_unbounded_plans() {
        // Escalation escapes after 3 attempts instead of the plan's 16.
        let open = {
            let mut f = fabric(16, 16);
            f.install_faults("link:*@0-1000000=off".parse().unwrap());
            f.submit(Cycle::ZERO, msg(1, 0, 15));
            run_until_idle(&mut f, Cycle::ZERO)[0].at
        };
        let mut f = fabric(16, 16);
        f.install_faults("link:*@0-1000000=off".parse().unwrap());
        f.install_recovery(RecoveryPolicy::all());
        f.submit(Cycle::ZERO, msg(1, 0, 15));
        let d = run_until_idle(&mut f, Cycle::ZERO);
        assert!(d[0].at < open, "{:?} vs {open:?}", d[0].at);
        assert_eq!(f.recovery_stats().unwrap().escalations, 1);
        assert_eq!(f.fault_stats().unwrap().fallbacks, 1);

        // Even `retry=inf` cannot wedge an escalating fabric.
        let mut f = fabric(16, 16);
        f.install_faults("link:*@0-1000000000=off; retry=inf".parse().unwrap());
        f.install_recovery(RecoveryPolicy::all());
        f.submit(Cycle::ZERO, msg(1, 0, 15));
        let d = crate::drain_until_idle(&mut f, Cycle::ZERO, 2_000)
            .expect("escalation must bound the retry ladder");
        assert_eq!(d.len(), 1);
        assert_eq!(f.recovery_stats().unwrap().escalations, 1);
    }

    #[test]
    fn unbounded_retry_under_permanent_outage_livelocks_with_diagnostics() {
        let mut f = fabric(16, 16);
        f.install_faults("link:*@0-1000000000=off; retry=inf".parse().unwrap());
        f.submit(Cycle::ZERO, msg(1, 0, 15));
        let err = crate::drain_until_idle(&mut f, Cycle::ZERO, 2_000)
            .expect_err("a wedged fabric must report livelock, not hang");
        assert_eq!(err.kind(), "livelock");
        let snap = err.snapshot();
        assert_eq!(snap.pending_messages.len(), 1);
        assert_eq!(snap.pending_messages[0].id, 1);
        assert!(snap.pending_messages[0].attempts > 0);
        assert!(snap.links.iter().all(|l| l.faulted));
        assert!(!snap.active_faults.is_empty());
    }

    #[test]
    fn empty_plan_is_identical_to_no_plan() {
        let mut plain = fabric(16, 8);
        let mut planned = fabric(16, 8);
        planned.install_faults(FaultPlan::default());
        for f in [&mut plain, &mut planned] {
            for i in 0..12u64 {
                f.submit(
                    Cycle::new(i / 3),
                    msg(i, (i % 7) as usize, (11 - i % 5) as usize),
                );
            }
        }
        let a = run_until_idle(&mut plain, Cycle::ZERO);
        let b = run_until_idle(&mut planned, Cycle::ZERO);
        let key = |d: &Delivery| (d.at, d.msg.id);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>()
        );
        assert!(planned.fault_stats().unwrap().is_quiet());
    }

    use nocstar_faults::FaultPlan;

    proptest! {
        /// No message is ever lost or deadlocked: every submission is
        /// delivered exactly once, regardless of traffic pattern, in both
        /// acquire modes (responses are fired immediately for round-trip).
        #[test]
        fn prop_all_messages_delivered(
            sends in prop::collection::vec((0usize..16, 0usize..16, 0u64..20), 1..60),
            one_way in any::<bool>(),
        ) {
            let mode = if one_way { AcquireMode::OneWay } else { AcquireMode::RoundTrip };
            let mut f = CircuitFabric::new(MeshShape::square_for(16), 8, mode);
            for (i, &(src, dst, at)) in sends.iter().enumerate() {
                f.submit(Cycle::new(at), msg(i as u64, src, dst));
            }
            let mut delivered = std::collections::HashSet::new();
            let mut cycle = Cycle::ZERO;
            for _ in 0..100_000 {
                match f.next_activity() {
                    None => break,
                    Some(next) => {
                        cycle = cycle.max(next);
                        for d in f.advance(cycle) {
                            if d.msg.kind == MsgKind::TlbRequest {
                                prop_assert!(delivered.insert(d.msg.id), "duplicate delivery");
                                if mode == AcquireMode::RoundTrip && !d.msg.is_local() {
                                    // Answer instantly so reservations drain.
                                    let resp = Message::new(
                                        d.msg.id, d.msg.dst, d.msg.src, MsgKind::TlbResponse,
                                    );
                                    if f.has_reservation(d.msg.id) {
                                        f.send_response(resp, d.at + Cycles::ONE).unwrap();
                                    } else {
                                        // The request escaped the fast fabric
                                        // (fault fallback): answer one-way.
                                        f.submit(d.at + Cycles::ONE, resp);
                                    }
                                }
                            }
                        }
                        cycle += Cycles::ONE;
                    }
                }
            }
            prop_assert_eq!(delivered.len() as u64, sends.len() as u64);
            prop_assert_eq!(f.next_activity(), None, "fabric must quiesce");
        }
    }
}
