//! The SMART NoC baseline (Krishna et al., HPCA 2013; paper Table I).
//!
//! SMART lets a flit dynamically construct a multi-hop bypass over a mesh:
//! after a one-cycle setup (SA-G), the flit covers up to `HPCmax` hops per
//! cycle as long as the routers along the run are not claimed by another
//! flit that cycle; on contention it latches at the blocking router and
//! continues next cycle. Unlike NOCSTAR, bypass runs are opportunistic —
//! partial progress is made rather than retrying the whole path.

use crate::message::{Delivery, Message};
use crate::topology::Links;
use crate::{Interconnect, NocStats};
use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, LinkState, PendingMessage, RecoveryPolicy, RecoveryStats,
};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Coord, MeshShape};
use std::collections::{BTreeSet, BinaryHeap};

#[derive(Debug, Clone)]
struct Flight {
    msg: Message,
    tiles: Vec<Coord>,
    pos: usize,
    ready_at: Cycle,
    submitted_at: Cycle,
    injected: bool,
    stalled: bool,
    fault_attempts: u64,
    // First cycle an outage blocked this flit (recovery's detect time);
    // cleared once a detour departs.
    blocked_at: Option<Cycle>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Cycle,
    seq: u64,
    msg: Message,
    submitted_at: Cycle,
    stalled: bool,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The SMART network model.
///
/// # Examples
///
/// ```
/// use nocstar_noc::smart::SmartNoc;
/// use nocstar_noc::message::{Message, MsgKind};
/// use nocstar_noc::Interconnect;
/// use nocstar_types::{CoreId, Cycle, MeshShape};
///
/// let mut smart = SmartNoc::new(MeshShape::new(8, 8), 8);
/// smart.submit(Cycle::ZERO, Message::new(1, CoreId::new(0), CoreId::new(63), MsgKind::TlbRequest));
/// let mut d = Vec::new();
/// for c in 0..4 {
///     d.extend(smart.advance(Cycle::new(c)));
/// }
/// // 14 hops at HPCmax=8: 1 setup + 2 bypass cycles.
/// assert_eq!(d[0].at, Cycle::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct SmartNoc {
    links: Links,
    hpc_max: usize,
    flights: Vec<Flight>,
    scheduled: BinaryHeap<Scheduled>,
    seq: u64,
    stats: NocStats,
    faults: FaultPlan,
    fstats: FaultStats,
    recovery: RecoveryPolicy,
    rstats: RecoveryStats,
}

impl SmartNoc {
    /// Builds a SMART network with the given maximum hops per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `hpc_max` is zero.
    pub fn new(mesh: MeshShape, hpc_max: usize) -> Self {
        assert!(hpc_max > 0, "HPCmax must be at least 1");
        let links = Links::new(mesh);
        Self {
            stats: NocStats::with_links(links.count()),
            links,
            hpc_max,
            flights: Vec::new(),
            scheduled: BinaryHeap::new(),
            seq: 0,
            faults: FaultPlan::default(),
            fstats: FaultStats::default(),
            recovery: RecoveryPolicy::default(),
            rstats: RecoveryStats::default(),
        }
    }

    /// The configured maximum hops per cycle.
    pub fn hpc_max(&self) -> usize {
        self.hpc_max
    }

    fn schedule(&mut self, msg: Message, at: Cycle, submitted_at: Cycle, stalled: bool) {
        self.seq += 1;
        self.scheduled.push(Scheduled {
            at,
            seq: self.seq,
            msg,
            submitted_at,
            stalled,
        });
    }

    fn step_flights(&mut self, cycle: Cycle) {
        if self.flights.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..self.flights.len())
            .filter(|&i| self.flights[i].ready_at <= cycle)
            .collect();
        // Oldest flit wins bypass arbitration.
        order.sort_by_key(|&i| (self.flights[i].submitted_at, self.flights[i].msg.id));

        let mut claimed: BTreeSet<usize> = BTreeSet::new();
        let mut done: Vec<usize> = Vec::new();
        for &i in &order {
            if !self.flights[i].injected {
                // SA-G: the setup request propagates this cycle.
                let f = &mut self.flights[i];
                f.injected = true;
                f.ready_at = cycle + Cycles::ONE;
                continue;
            }
            // Claim as many consecutive free, non-outaged links as
            // possible, up to HPCmax. Degraded links stay claimable but
            // add their penalty to this cycle's run.
            let now = cycle.value();
            let (run, links_to_claim, penalty, first_outaged) = {
                let f = &self.flights[i];
                let remaining = f.tiles.len() - 1 - f.pos;
                let mut run = 0usize;
                let mut to_claim = Vec::new();
                let mut penalty = 0u64;
                let mut first_outaged = false;
                while run < remaining && run < self.hpc_max {
                    let from = f.tiles[f.pos + run];
                    let to = f.tiles[f.pos + run + 1];
                    let link = self.links.link_between(from, to).index();
                    if claimed.contains(&link) {
                        break;
                    }
                    if !self.faults.is_empty() && self.faults.link_outage(link, now) {
                        first_outaged = run == 0;
                        break;
                    }
                    if !self.faults.is_empty() {
                        penalty += self.faults.link_degrade(link, now);
                    }
                    to_claim.push(link);
                    run += 1;
                }
                (run, to_claim, penalty, first_outaged)
            };
            if run == 0 && first_outaged {
                // Blocked by an injected outage, not by traffic: with a
                // re-routing policy, detour around the dead link; else
                // back off deterministically, and once the (possibly
                // escalation-clamped) retry budget is spent escape over
                // the buffered service path so the flit is never lost.
                {
                    let f = &mut self.flights[i];
                    f.fault_attempts += 1;
                    f.stalled = true;
                    if f.blocked_at.is_none() {
                        f.blocked_at = Some(cycle);
                    }
                }
                self.stats.retries += 1;
                self.fstats.link_blocked += 1;
                if self.recovery.reroute {
                    let (pos, cur, dst, old_remaining) = {
                        let f = &self.flights[i];
                        let last = f.tiles[f.tiles.len() - 1];
                        (f.pos, f.tiles[f.pos], last, f.tiles.len() - 1 - f.pos)
                    };
                    let detour = self
                        .links
                        .detour(cur, dst, |l| self.faults.link_outage(l.index(), now));
                    if let Some(path) = detour {
                        self.rstats.reroutes += 1;
                        self.rstats.detour_extra_hops +=
                            (path.len() - 1).saturating_sub(old_remaining) as u64;
                        let f = &mut self.flights[i];
                        f.tiles.truncate(pos + 1);
                        f.tiles.extend(path.into_iter().skip(1));
                        // Picking the detour costs one decision cycle.
                        f.ready_at = cycle + Cycles::ONE;
                        if let Some(b) = f.blocked_at.take() {
                            self.rstats
                                .detect_to_reroute
                                .record((f.ready_at - b).value());
                        }
                        continue;
                    }
                    self.rstats.reroute_failed += 1;
                }
                let max = self.recovery.effective_max_attempts(self.faults.retry);
                let f = &mut self.flights[i];
                if max.is_some_and(|m| f.fault_attempts >= m) {
                    let remaining = (f.tiles.len() - 1 - f.pos) as u64;
                    let arrival = cycle + Cycles::new(2 * remaining + 1);
                    let (msg, submitted_at, attempts) = (f.msg, f.submitted_at, f.fault_attempts);
                    done.push(i);
                    self.fstats.fallbacks += 1;
                    self.fstats.retries_per_fallback.record(attempts);
                    if self
                        .faults
                        .retry
                        .max_attempts
                        .is_none_or(|pm| attempts < u64::from(pm))
                    {
                        self.rstats.escalations += 1;
                    }
                    self.schedule(msg, arrival, submitted_at, true);
                } else {
                    let wait = self.faults.backoff(f.fault_attempts, f.msg.id);
                    f.ready_at = cycle + Cycles::new(wait);
                    self.fstats.backoff_cycles += wait;
                }
                continue;
            }
            if run == 0 {
                let f = &mut self.flights[i];
                f.ready_at = cycle + Cycles::ONE;
                f.stalled = true;
                self.stats.retries += 1;
                continue;
            }
            for &link in &links_to_claim {
                self.stats.link_busy[link] += 1;
            }
            self.stats.grants += run as u64;
            claimed.extend(links_to_claim);
            if penalty > 0 {
                self.fstats.degraded_traversals += 1;
            }
            let f = &mut self.flights[i];
            f.pos += run;
            if f.pos + 1 == f.tiles.len() {
                let arrival = cycle + Cycles::ONE + Cycles::new(penalty);
                let (msg, submitted_at, stalled) = (f.msg, f.submitted_at, f.stalled);
                done.push(i);
                self.schedule(msg, arrival, submitted_at, stalled);
            } else {
                f.stalled = true; // latched mid-path
                f.ready_at = cycle + Cycles::ONE + Cycles::new(penalty);
            }
        }
        let mut index = 0usize;
        self.flights.retain(|_| {
            let keep = !done.contains(&index);
            index += 1;
            keep
        });
    }
}

impl Interconnect for SmartNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.schedule(msg, now, now, false);
            return;
        }
        let tiles: Vec<Coord> = self.links.mesh().xy_path(msg.src, msg.dst).collect();
        self.flights.push(Flight {
            msg,
            tiles,
            pos: 0,
            ready_at: now,
            submitted_at: now,
            injected: false,
            stalled: false,
            fault_attempts: 0,
            blocked_at: None,
        });
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        self.step_flights(cycle);
        let mut out = Vec::new();
        while self.scheduled.peek().is_some_and(|top| top.at <= cycle) {
            let Some(s) = self.scheduled.pop() else { break };
            self.stats.delivered += 1;
            self.stats.latency.record(s.at - s.submitted_at);
            if !s.stalled {
                self.stats.no_contention += 1;
            }
            out.push(Delivery {
                msg: s.msg,
                at: s.at,
            });
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // A non-local flit spends one SA-G setup cycle, then at least one
        // bypass cycle, however short the path and however large HPCmax.
        Cycles::new(2)
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flight_min = self.flights.iter().map(|f| f.ready_at).min();
        let sched_min = self.scheduled.peek().map(|s| s.at);
        match (flight_min, sched_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.fstats.reset();
        self.rstats.reset();
    }

    fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        Some(&self.fstats)
    }

    fn install_recovery(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        Some(&self.rstats)
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let now = cycle.value();
        let pending_messages = self
            .flights
            .iter()
            .map(|f| PendingMessage {
                id: f.msg.id,
                src: f.msg.src.index(),
                dst: f.msg.dst.index(),
                kind: format!("{:?}", f.msg.kind),
                submitted_at: f.submitted_at.value(),
                attempts: f.fault_attempts,
            })
            .collect();
        let links = (0..self.links.count())
            .map(|l| LinkState {
                link: l,
                busy_until: 0,
                reserved_by: None,
                faulted: self.faults.link_outage(l, now),
            })
            .collect();
        DiagSnapshot {
            cycle: now,
            pending_messages,
            links,
            active_faults: self.faults.active_at(now),
            ..DiagSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn drain(noc: &mut SmartNoc) -> Vec<Delivery> {
        crate::drain_until_idle(noc, Cycle::ZERO, 100_000).expect("smart did not quiesce")
    }

    #[test]
    fn outage_blocks_then_recovers_without_losing_the_flit() {
        let mut noc = SmartNoc::new(MeshShape::new(4, 1), 8);
        noc.install_faults("link:*@0-50=off".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 1);
        assert!(d[0].at >= Cycle::new(50));
        assert!(noc.fault_stats().unwrap().link_blocked > 0);
    }

    #[test]
    fn permanent_outage_escapes_after_retry_budget() {
        let mut noc = SmartNoc::new(MeshShape::new(4, 1), 8);
        noc.install_faults("link:*@0-1000000=off; retry=3".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 1, "escape path must deliver the flit");
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 1);
    }

    #[test]
    fn reroute_detours_around_a_partial_outage() {
        // 4x4 mesh, first east link dead: the flit detours through the
        // next row instead of backing off.
        let mut noc = SmartNoc::new(MeshShape::new(4, 4), 8);
        noc.install_faults("link:0@0-1000000=off".parse().unwrap());
        noc.install_recovery("reroute".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 1);
        let rs = noc.recovery_stats().unwrap();
        assert_eq!(rs.reroutes, 1);
        assert_eq!(rs.detour_extra_hops, 2);
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 0);
        // Setup (1) + blocked detect (1) + 5-hop bypass run (1).
        assert_eq!(d[0].at, Cycle::new(3));
    }

    #[test]
    fn escalation_escapes_faster_than_the_plan_budget() {
        let shape = MeshShape::new(4, 1);
        let open = {
            let mut noc = SmartNoc::new(shape, 8);
            noc.install_faults("link:*@0-1000000=off".parse().unwrap());
            noc.submit(Cycle::ZERO, msg(1, 0, 3));
            drain(&mut noc)[0].at
        };
        let mut noc = SmartNoc::new(shape, 8);
        noc.install_faults("link:*@0-1000000=off".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let closed = drain(&mut noc)[0].at;
        assert!(closed < open, "{closed:?} vs {open:?}");
        assert_eq!(noc.recovery_stats().unwrap().escalations, 1);
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 1);
    }

    #[test]
    fn uncontended_latency_is_setup_plus_bypass_runs() {
        // 6 hops at HPCmax=8: 1 setup + 1 bypass cycle.
        let mut noc = SmartNoc::new(MeshShape::new(4, 4), 8);
        noc.submit(Cycle::ZERO, msg(1, 0, 15));
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(2));
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn hpc_limits_bypass_length() {
        // 14 hops at HPCmax=4: 1 setup + ceil(14/4)=4 cycles.
        let mut noc = SmartNoc::new(MeshShape::new(8, 8), 4);
        noc.submit(Cycle::ZERO, msg(1, 0, 63));
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(5));
    }

    #[test]
    fn contention_latches_the_younger_flit_mid_path() {
        let mut noc = SmartNoc::new(MeshShape::new(4, 1), 8);
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        noc.submit(Cycle::ZERO, msg(2, 1, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 2);
        let first = d.iter().find(|d| d.msg.id == 1).unwrap();
        let second = d.iter().find(|d| d.msg.id == 2).unwrap();
        assert_eq!(first.at, Cycle::new(2));
        assert!(second.at > first.at);
        assert!(noc.stats().retries > 0);
    }

    #[test]
    fn partial_progress_beats_full_retry() {
        // Unlike NOCSTAR, a SMART flit blocked ahead still advances up to
        // the blocked router. Message 2's first link (1->2) conflicts with
        // message 1's run, but 2 advances as soon as 1's claim expires.
        let mut noc = SmartNoc::new(MeshShape::new(8, 1), 8);
        noc.submit(Cycle::ZERO, msg(1, 0, 7));
        noc.submit(Cycle::ZERO, msg(2, 1, 7));
        let d = drain(&mut noc);
        let second = d.iter().find(|d| d.msg.id == 2).unwrap();
        assert_eq!(second.at, Cycle::new(3)); // setup, blocked cycle 1, bypass cycle 2
    }

    #[test]
    fn local_messages_skip_setup() {
        let mut noc = SmartNoc::new(MeshShape::new(4, 4), 8);
        noc.submit(Cycle::new(9), msg(1, 2, 2));
        let d = noc.advance(Cycle::new(9));
        assert_eq!(d[0].at, Cycle::new(9));
    }

    proptest::proptest! {
        /// No message is lost or duplicated under arbitrary traffic.
        #[test]
        fn prop_smart_delivers_everything(
            sends in proptest::collection::vec((0usize..16, 0usize..16, 0u64..30), 1..50),
            contended in proptest::prelude::any::<bool>(),
        ) {
            let shape = MeshShape::square_for(16);
            let hpc = if contended { 2 } else { 8 };
            let mut noc = SmartNoc::new(shape, hpc);
            for (i, &(src, dst, at)) in sends.iter().enumerate() {
                noc.submit(Cycle::new(at), msg(i as u64, src, dst));
            }
            let mut seen = std::collections::HashSet::new();
            let mut cycle = Cycle::ZERO;
            for _ in 0..100_000 {
                match noc.next_activity() {
                    None => break,
                    Some(next) => {
                        cycle = cycle.max(next);
                        for d in noc.advance(cycle) {
                            proptest::prop_assert!(seen.insert(d.msg.id), "duplicate");
                        }
                        cycle += Cycles::ONE;
                    }
                }
            }
            proptest::prop_assert_eq!(seen.len(), sends.len());
            proptest::prop_assert_eq!(noc.next_activity(), None);
        }
    }
}
