//! On-chip networks for the NOCSTAR simulator.
//!
//! The paper's contribution is a TLB-specialized interconnect; this crate
//! implements it and the baselines it is compared against (Table I):
//!
//! * [`message`] — single-flit TLB request/response/invalidation messages.
//! * [`topology`] — directed mesh links and XY path-to-link mapping.
//! * [`bus`] — a shared-bus baseline (latency-friendly, bandwidth-starved).
//! * [`mesh`] — a traditional multi-hop mesh (1-cycle router + 1-cycle
//!   link per hop), with per-link contention or the paper's generous
//!   contention-free variant used for the `distributed` baseline.
//! * [`smart`] — the SMART NoC \[48\]: dynamic multi-hop bypass up to
//!   `HPCmax` hops per cycle, falling back to latching under contention.
//! * [`arbiter`] — NOCSTAR's per-link arbiters: static priority, rotated
//!   round-robin every 1000 cycles to prevent starvation (§III-B2).
//! * [`hier`] — a two-level hierarchical fabric for 1000+ tiles: per-cluster
//!   bus/crossbar fabrics stitched together by a mesh or SMART overlay
//!   between cluster gateways.
//! * [`circuit`] — the NOCSTAR fabric itself: latchless switches,
//!   same-cycle full-path acquisition (AND of per-link grants), retry on
//!   partial failure, single-cycle traversal up to `HPCmax` hops, and
//!   one-way vs. round-trip acquire modes (Fig 16 left).
//! * [`traffic`] — the uniform-random synthetic-traffic harness of Fig 11(c).
//! * [`latency`] — the analytical per-hop latency model behind Fig 11(a).
//!
//! All network models implement [`Interconnect`], a cycle-batch API: the
//! simulator submits messages, then advances the network one active cycle
//! at a time, collecting deliveries. Same-cycle arbitration is resolved for
//! all competing messages together, which is what makes NOCSTAR's
//! "all links in one cycle or retry" semantics exact.
//!
//! # Examples
//!
//! ```
//! use nocstar_noc::circuit::{AcquireMode, CircuitFabric};
//! use nocstar_noc::message::{Message, MsgKind};
//! use nocstar_noc::Interconnect;
//! use nocstar_types::{CoreId, Cycle, MeshShape};
//!
//! let mut fabric = CircuitFabric::new(MeshShape::square_for(16), 16, AcquireMode::OneWay);
//! let msg = Message::new(1, CoreId::new(0), CoreId::new(15), MsgKind::TlbRequest);
//! fabric.submit(Cycle::new(10), msg);
//! assert!(fabric.advance(Cycle::new(10)).is_empty()); // path setup at cycle 10
//! let deliveries = fabric.advance(Cycle::new(11));
//! // 1 cycle of path setup + 1 cycle traversal: arrives at cycle 11.
//! assert_eq!(deliveries[0].at, Cycle::new(11));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod bus;
pub mod circuit;
pub mod hier;
pub mod latency;
pub mod mesh;
pub mod message;
pub mod smart;
pub mod topology;
pub mod traffic;

pub use bus::BusNoc;
pub use circuit::CircuitFabric;
pub use hier::{HierNoc, InterKind, IntraKind, XbarNoc};
pub use mesh::MeshNoc;
pub use message::{Delivery, Message, MsgKind};
pub use smart::SmartNoc;

use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, RecoveryPolicy, RecoveryStats, SimError,
};
use nocstar_stats::latency::LatencyRecorder;
use nocstar_types::time::{Cycle, Cycles};

/// Cycle-batch interface shared by every network model.
///
/// Contract: `advance(c)` must be called with non-decreasing cycles, and a
/// message must be submitted with `now` no later than the next `advance`
/// cycle. `next_activity` tells the event-driven simulator the earliest
/// cycle at which calling `advance` can make progress, so idle stretches
/// are skipped.
pub trait Interconnect {
    /// Submits a message that wants to depart at `now` (or as soon after
    /// as arbitration allows).
    fn submit(&mut self, now: Cycle, msg: Message);

    /// Resolves one cycle of network activity; returns messages delivered
    /// at or before `cycle` (local messages deliver in the same cycle).
    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery>;

    /// The earliest cycle at which the network has work to do, if any.
    fn next_activity(&self) -> Option<Cycle>;

    /// Conservative cross-tile lookahead: a *non-local* message submitted
    /// at cycle `T` can never be delivered before `T + lookahead()`. This
    /// is the fabric's minimum cross-tile link latency, the bound the
    /// epoch-parallel driver uses to size a domain's safe run-ahead
    /// horizon (no other domain can affect it sooner). Local (same-tile)
    /// messages deliver in the submit cycle, but they never cross a
    /// domain boundary, so they do not constrain the lookahead.
    fn lookahead(&self) -> Cycles;

    /// Aggregate network statistics.
    fn stats(&self) -> &NocStats;

    /// Clears aggregate statistics (e.g. after simulation warmup).
    fn reset_stats(&mut self);

    /// Installs a deterministic fault plan. Models that do not support
    /// injection silently ignore the plan (the default).
    fn install_faults(&mut self, _plan: FaultPlan) {}

    /// Fault/recovery statistics, if this model tracks them.
    fn fault_stats(&self) -> Option<&FaultStats> {
        None
    }

    /// Installs a closed-loop recovery policy to act on the installed
    /// fault plan (detour re-routing, escalating retry, gateway
    /// failover). Models with no recovery hooks ignore it (the default) —
    /// a policy without a non-empty plan never changes behaviour.
    fn install_recovery(&mut self, _policy: RecoveryPolicy) {}

    /// Recovery-action statistics, if this model tracks them.
    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        None
    }

    /// A diagnostic snapshot of the network's internal state at `cycle`
    /// (pending messages, per-link occupancy). The default reports only
    /// the cycle; fault-aware models override with full state.
    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        DiagSnapshot {
            cycle: cycle.value(),
            ..DiagSnapshot::default()
        }
    }
}

/// Drives a network until it quiesces, collecting deliveries in arrival
/// order. Returns [`SimError::Livelock`] with the model's diagnostic
/// snapshot if the network is still active after `max_iters` advance
/// calls — the structured replacement for the old
/// `panic!("... did not quiesce")` test helpers.
///
/// # Errors
///
/// [`SimError::Livelock`] when the network does not quiesce in time.
pub fn drain_until_idle<N: Interconnect + ?Sized>(
    noc: &mut N,
    from: Cycle,
    max_iters: u64,
) -> Result<Vec<Delivery>, Box<SimError>> {
    let mut out = Vec::new();
    let mut cycle = from;
    for _ in 0..max_iters {
        match noc.next_activity() {
            None => return Ok(out),
            Some(next) => {
                cycle = cycle.max(next);
                out.extend(noc.advance(cycle));
                cycle += Cycles::ONE;
            }
        }
    }
    let mut snapshot = noc.diagnostics(cycle);
    snapshot.pending_messages.truncate(32);
    Err(Box::new(SimError::Livelock {
        stalled_for: cycle.value().saturating_sub(from.value()),
        snapshot,
    }))
}

/// Statistics common to all network models.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// End-to-end network latency per delivered message (submit → arrival).
    pub latency: LatencyRecorder,
    /// Messages that were granted their full path on the first attempt
    /// with no buffering anywhere (NOCSTAR / SMART) or that never stalled
    /// (mesh).
    pub no_contention: u64,
    /// Total delivered messages.
    pub delivered: u64,
    /// Path-setup retries (NOCSTAR) or per-hop stalls (mesh / SMART).
    pub retries: u64,
    /// Arbitration grants: full-path acquisitions (NOCSTAR), claimed hops
    /// (mesh / SMART), or bus ownership grants.
    pub grants: u64,
    /// Priority-rotation epochs crossed while advancing (NOCSTAR only).
    pub rotations: u64,
    /// Busy cycles per directed link, indexed by `LinkId` (the bus models
    /// its single shared medium as link 0). A link's utilization over a
    /// measurement window is `link_busy[l] / window`.
    pub link_busy: Vec<u64>,
}

impl NocStats {
    /// Stats for a network with `links` directed links, all counters zero.
    pub fn with_links(links: usize) -> Self {
        Self {
            link_busy: vec![0; links],
            ..Self::default()
        }
    }

    /// Zeroes every counter while keeping the per-link vector's length
    /// (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        let links = self.link_busy.len();
        *self = Self::with_links(links);
    }

    /// Accumulates another window's counters into this one (used when
    /// sampled replay merges per-window network statistics,
    /// `SAMPLING.md §4`). Link-busy vectors are summed elementwise; if
    /// the lengths differ (e.g. one side defaulted to zero links) the
    /// longer vector wins and the shorter one is added into its prefix.
    pub fn merge(&mut self, other: &Self) {
        self.latency.merge(&other.latency);
        self.no_contention += other.no_contention;
        self.delivered += other.delivered;
        self.retries += other.retries;
        self.grants += other.grants;
        self.rotations += other.rotations;
        if self.link_busy.len() < other.link_busy.len() {
            self.link_busy.resize(other.link_busy.len(), 0);
        }
        for (mine, theirs) in self.link_busy.iter_mut().zip(&other.link_busy) {
            *mine += theirs;
        }
    }

    /// Fraction of messages that experienced no contention at all.
    pub fn no_contention_fraction(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.no_contention as f64 / self.delivered as f64
        }
    }

    /// Per-link utilization over a measurement window of `window` cycles
    /// (empty when the window is zero).
    pub fn link_utilization(&self, window: u64) -> Vec<f64> {
        if window == 0 {
            return Vec::new();
        }
        self.link_busy
            .iter()
            .map(|&b| b as f64 / window as f64)
            .collect()
    }
}
