//! Synthetic uniform-random traffic (paper Fig 11(c)).
//!
//! The paper stresses the NOCSTAR fabric on a 64-core system with random
//! traffic at increasing injection rates, showing that even at 0.1
//! messages/core/cycle ("high for TLB traffic") the average latency stays
//! within ~3 cycles, and reports the fraction of messages that acquire
//! their path with no contention.

use crate::message::{Message, MsgKind};
use crate::Interconnect;
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{CoreId, MeshShape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Results of one synthetic-traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Offered injection rate (messages per core per cycle).
    pub injection_rate: f64,
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered (equals injected when the run drains).
    pub delivered: u64,
    /// Mean end-to-end network latency in cycles.
    pub mean_latency: f64,
    /// Fraction of messages that saw no contention.
    pub no_contention_fraction: f64,
}

/// Drives `noc` with uniform-random traffic: every cycle, each core
/// injects a message to a uniformly random *other* core with probability
/// `injection_rate`, for `cycles` cycles, then drains the network.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `injection_rate` is outside `[0, 1]`, if the mesh has fewer
/// than two tiles, or if the network fails to drain (a deadlock — never
/// expected from the models in this crate).
pub fn run_uniform_random<I: Interconnect>(
    noc: &mut I,
    mesh: MeshShape,
    injection_rate: f64,
    cycles: u64,
    seed: u64,
) -> TrafficReport {
    assert!(
        (0.0..=1.0).contains(&injection_rate),
        "injection rate must be a probability, got {injection_rate}"
    );
    let n = mesh.tiles();
    assert!(n >= 2, "uniform-random traffic needs at least two tiles");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut injected = 0u64;
    let mut next_id = 0u64;

    for c in 0..cycles {
        let now = Cycle::new(c);
        for src in 0..n {
            if rng.gen::<f64>() < injection_rate {
                let mut dst = rng.gen_range(0..n - 1);
                if dst >= src {
                    dst += 1;
                }
                next_id += 1;
                noc.submit(
                    now,
                    Message::new(
                        next_id,
                        CoreId::new(src),
                        CoreId::new(dst),
                        MsgKind::TlbRequest,
                    ),
                );
                injected += 1;
            }
        }
        noc.advance(now);
    }

    // Drain: keep advancing until the network is quiescent.
    let mut now = Cycle::new(cycles);
    let drain_limit = Cycle::new(cycles + 1_000_000);
    while let Some(next) = noc.next_activity() {
        now = now.max(next);
        assert!(now < drain_limit, "network failed to drain: deadlock?");
        noc.advance(now);
        now += Cycles::ONE;
    }

    let stats = noc.stats();
    TrafficReport {
        injection_rate,
        injected,
        delivered: stats.delivered,
        mean_latency: stats.latency.mean(),
        no_contention_fraction: stats.no_contention_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{AcquireMode, CircuitFabric};
    use crate::mesh::MeshNoc;

    #[test]
    fn all_injected_messages_are_delivered() {
        let mesh = MeshShape::square_for(16);
        let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let report = run_uniform_random(&mut fabric, mesh, 0.1, 500, 42);
        assert!(report.injected > 0);
        assert_eq!(report.delivered, report.injected);
    }

    #[test]
    fn low_load_latency_is_near_two_cycles() {
        let mesh = MeshShape::square_for(64);
        let mut fabric = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        let report = run_uniform_random(&mut fabric, mesh, 0.01, 2000, 7);
        assert!(
            report.mean_latency < 3.0,
            "latency {} too high at low load",
            report.mean_latency
        );
        assert!(report.no_contention_fraction > 0.8);
    }

    #[test]
    fn latency_grows_with_injection_rate() {
        let mesh = MeshShape::square_for(64);
        let low = {
            let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            run_uniform_random(&mut f, mesh, 0.01, 1500, 3).mean_latency
        };
        let high = {
            let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            run_uniform_random(&mut f, mesh, 0.2, 1500, 3).mean_latency
        };
        assert!(
            high > low,
            "contention must raise latency ({low} vs {high})"
        );
    }

    #[test]
    fn nocstar_beats_the_multi_hop_mesh_on_latency() {
        let mesh = MeshShape::square_for(64);
        let fabric_lat = {
            let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            run_uniform_random(&mut f, mesh, 0.05, 1500, 11).mean_latency
        };
        let mesh_lat = {
            let mut m = MeshNoc::contended(mesh);
            run_uniform_random(&mut m, mesh, 0.05, 1500, 11).mean_latency
        };
        assert!(
            fabric_lat < mesh_lat / 2.0,
            "NOCSTAR ({fabric_lat}) should be far below the mesh ({mesh_lat})"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mesh = MeshShape::square_for(16);
        let a = {
            let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            run_uniform_random(&mut f, mesh, 0.1, 300, 5)
        };
        let b = {
            let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
            run_uniform_random(&mut f, mesh, 0.1, 300, 5)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_injection_rate_rejected() {
        let mesh = MeshShape::square_for(4);
        let mut f = CircuitFabric::new(mesh, 16, AcquireMode::OneWay);
        run_uniform_random(&mut f, mesh, 1.5, 10, 0);
    }
}
