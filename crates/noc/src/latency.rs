//! Analytical per-message latency model behind Fig 11(a).
//!
//! For each shared-TLB design, a message's latency splits into the SRAM
//! access component (from [`nocstar_tlb::sram`]) and the network component
//! as a function of hop count:
//!
//! * monolithic / distributed over a multi-hop mesh: `2 x hops`
//!   (1-cycle router + 1-cycle link per hop);
//! * NOCSTAR: 1 cycle of path setup + `ceil(hops / HPCmax)` traversal
//!   cycles (0 network cycles for a local slice).

use nocstar_tlb::sram;
use nocstar_types::time::Cycles;
use std::fmt;

/// A shared-L2-TLB design point of Fig 11(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedTlbDesign {
    /// Monolithic banked SRAM reached over a multi-hop mesh.
    Monolithic {
        /// Total entries of the monolithic structure.
        total_entries: usize,
    },
    /// Per-core slices reached over a multi-hop mesh.
    Distributed {
        /// Entries per slice.
        slice_entries: usize,
    },
    /// Per-core slices reached over the NOCSTAR circuit-switched fabric.
    Nocstar {
        /// Entries per slice.
        slice_entries: usize,
        /// Maximum hops per traversal cycle.
        hpc_max: usize,
    },
}

impl fmt::Display for SharedTlbDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharedTlbDesign::Monolithic { .. } => write!(f, "Monolithic"),
            SharedTlbDesign::Distributed { .. } => write!(f, "Distributed"),
            SharedTlbDesign::Nocstar { hpc_max, .. } => write!(f, "NOCSTAR HPCmax={hpc_max}"),
        }
    }
}

/// The two stacked components Fig 11(a) plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageLatency {
    /// SRAM lookup component.
    pub access: Cycles,
    /// Interconnect component (one way).
    pub network: Cycles,
}

impl MessageLatency {
    /// Total message latency.
    pub fn total(&self) -> Cycles {
        self.access + self.network
    }
}

/// The contention-free latency of one shared-L2 access at `hops` distance.
///
/// # Examples
///
/// ```
/// use nocstar_noc::latency::{message_latency, SharedTlbDesign};
///
/// let nocstar = SharedTlbDesign::Nocstar { slice_entries: 920, hpc_max: 16 };
/// let far = message_latency(nocstar, 12);
/// assert_eq!(far.network.value(), 2); // 1 setup + 1 traversal
/// let mesh = SharedTlbDesign::Distributed { slice_entries: 1024 };
/// assert_eq!(message_latency(mesh, 12).network.value(), 24);
/// ```
pub fn message_latency(design: SharedTlbDesign, hops: usize) -> MessageLatency {
    match design {
        SharedTlbDesign::Monolithic { total_entries } => MessageLatency {
            access: sram::lookup_cycles(total_entries),
            network: Cycles::new(2 * hops as u64),
        },
        SharedTlbDesign::Distributed { slice_entries } => MessageLatency {
            access: sram::lookup_cycles(slice_entries),
            network: Cycles::new(2 * hops as u64),
        },
        SharedTlbDesign::Nocstar {
            slice_entries,
            hpc_max,
        } => {
            assert!(hpc_max > 0, "HPCmax must be at least 1");
            let network = if hops == 0 {
                0
            } else {
                1 + hops.div_ceil(hpc_max) as u64
            };
            MessageLatency {
                access: sram::lookup_cycles(slice_entries),
                network: Cycles::new(network),
            }
        }
    }
}

/// The hop counts Fig 11(a) sweeps.
pub const FIG11A_HOPS: [usize; 8] = [0, 1, 2, 4, 6, 8, 10, 12];

/// The five Fig 11(a) series for a 32-core chip (32x1536-entry monolithic,
/// 1024-entry distributed slices, 920-entry NOCSTAR slices at HPCmax 4/8/16).
pub fn fig11a_designs() -> Vec<SharedTlbDesign> {
    vec![
        SharedTlbDesign::Monolithic {
            total_entries: 32 * 1536,
        },
        SharedTlbDesign::Distributed {
            slice_entries: 1024,
        },
        SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 4,
        },
        SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 8,
        },
        SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_pays_big_sram_plus_mesh() {
        let m = SharedTlbDesign::Monolithic {
            total_entries: 32 * 1536,
        };
        let l = message_latency(m, 12);
        assert_eq!(l.access.value(), 15);
        assert_eq!(l.network.value(), 24);
        assert_eq!(l.total().value(), 39); // the top of Fig 11(a)
    }

    #[test]
    fn nocstar_network_is_flat_in_hops_at_high_hpc() {
        let n = SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 16,
        };
        for hops in [1, 4, 8, 12, 16] {
            assert_eq!(message_latency(n, hops).network.value(), 2);
        }
        assert_eq!(message_latency(n, 0).network.value(), 0);
    }

    #[test]
    fn lower_hpc_adds_pipeline_cycles() {
        let n4 = SharedTlbDesign::Nocstar {
            slice_entries: 920,
            hpc_max: 4,
        };
        assert_eq!(message_latency(n4, 12).network.value(), 1 + 3);
    }

    #[test]
    fn ordering_matches_the_paper() {
        // NOCSTAR <= distributed < monolithic everywhere, with NOCSTAR
        // strictly ahead once the mesh needs more than one hop.
        for hops in [1, 2, 4, 6, 8, 10, 12] {
            let designs = fig11a_designs();
            let mono = message_latency(designs[0], hops).total();
            let dist = message_latency(designs[1], hops).total();
            let nocstar = message_latency(designs[4], hops).total();
            assert!(nocstar <= dist, "hops={hops}");
            if hops >= 2 {
                assert!(nocstar < dist, "hops={hops}");
            }
            assert!(dist < mono, "hops={hops}");
        }
    }

    #[test]
    fn fig11a_has_five_series_and_eight_points() {
        assert_eq!(fig11a_designs().len(), 5);
        assert_eq!(FIG11A_HOPS.len(), 8);
    }
}
