//! Directed mesh links and XY path-to-link mapping.
//!
//! Every adjacent tile pair is joined by two directed links (one per
//! direction). Links are identified by dense [`LinkId`]s so per-link state
//! (arbiters, busy-until times, per-cycle claims) lives in flat vectors.

use nocstar_types::{Coord, CoreId, MeshShape};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A dense identifier for one directed mesh link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(usize);

impl LinkId {
    /// The dense index (valid for arrays sized by [`Links::count`]).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The directed-link namespace of a mesh.
///
/// # Examples
///
/// ```
/// use nocstar_noc::topology::Links;
/// use nocstar_types::{CoreId, MeshShape};
///
/// let links = Links::new(MeshShape::new(4, 4));
/// assert_eq!(links.count(), 2 * (3 * 4 + 4 * 3)); // 48 directed links
/// let path = links.path(CoreId::new(0), CoreId::new(15));
/// assert_eq!(path.len(), 6); // 3 east + 3 south hops
/// ```
#[derive(Debug, Clone)]
pub struct Links {
    mesh: MeshShape,
}

impl Links {
    /// Builds the link namespace for a mesh.
    pub fn new(mesh: MeshShape) -> Self {
        Self { mesh }
    }

    /// The underlying mesh shape.
    pub fn mesh(&self) -> MeshShape {
        self.mesh
    }

    /// Total number of directed links.
    pub fn count(&self) -> usize {
        let (c, r) = (self.mesh.cols(), self.mesh.rows());
        2 * ((c - 1) * r + c * (r - 1))
    }

    /// The id of the directed link from `from` to the adjacent tile `to`.
    ///
    /// # Panics
    ///
    /// Panics if the tiles are not mesh neighbours.
    pub fn link_between(&self, from: Coord, to: Coord) -> LinkId {
        let (c, r) = (self.mesh.cols(), self.mesh.rows());
        let east_count = (c - 1) * r;
        let vert_count = c * (r - 1);
        assert_eq!(from.manhattan(to), 1, "{from} and {to} are not neighbours");
        let id = if to.x == from.x + 1 {
            // East: indexed by (row, west column).
            from.y * (c - 1) + from.x
        } else if from.x == to.x + 1 {
            // West.
            east_count + from.y * (c - 1) + to.x
        } else if to.y == from.y + 1 {
            // South: indexed by (north row, column).
            2 * east_count + from.y * c + from.x
        } else {
            // North.
            2 * east_count + vert_count + to.y * c + from.x
        };
        LinkId(id)
    }

    /// A shortest usable detour from `from` to `dst`: a breadth-first
    /// search over tiles that never crosses a link for which `blocked`
    /// returns true. Neighbours are explored in a fixed east, west,
    /// south, north order, so ties break deterministically — the same
    /// blocked set always yields the same detour. Returns the inclusive
    /// tile path (`from` first, `dst` last), or `None` when the blocked
    /// links disconnect the pair.
    ///
    /// This is the recovery re-router's path oracle: `blocked` is "link
    /// in outage at this cycle", and the static XY route is restored
    /// implicitly because healthy paths are themselves shortest.
    pub fn detour(
        &self,
        from: Coord,
        dst: Coord,
        blocked: impl Fn(LinkId) -> bool,
    ) -> Option<Vec<Coord>> {
        if from == dst {
            return Some(vec![from]);
        }
        let (c, r) = (self.mesh.cols(), self.mesh.rows());
        let mut parent: BTreeMap<Coord, Coord> = BTreeMap::new();
        let mut queue = VecDeque::new();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let mut neighbours = [None; 4];
            if cur.x + 1 < c {
                neighbours[0] = Some(Coord::new(cur.x + 1, cur.y));
            }
            if cur.x > 0 {
                neighbours[1] = Some(Coord::new(cur.x - 1, cur.y));
            }
            if cur.y + 1 < r {
                neighbours[2] = Some(Coord::new(cur.x, cur.y + 1));
            }
            if cur.y > 0 {
                neighbours[3] = Some(Coord::new(cur.x, cur.y - 1));
            }
            for next in neighbours.into_iter().flatten() {
                if parent.contains_key(&next) || blocked(self.link_between(cur, next)) {
                    continue;
                }
                parent.insert(next, cur);
                if next == dst {
                    let mut path = vec![next];
                    let mut at = cur;
                    while at != from {
                        path.push(at);
                        at = parent[&at];
                    }
                    path.push(from);
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// The directed links along the XY route from `src` to `dst`
    /// (empty when `src == dst`).
    pub fn path(&self, src: CoreId, dst: CoreId) -> Vec<LinkId> {
        let tiles: Vec<Coord> = self.mesh.xy_path(src, dst).collect();
        tiles
            .windows(2)
            .map(|w| self.link_between(w[0], w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn link_count_matches_formula() {
        let links = Links::new(MeshShape::new(8, 4));
        assert_eq!(links.count(), 2 * (7 * 4 + 8 * 3));
        let chain = Links::new(MeshShape::new(5, 1));
        assert_eq!(chain.count(), 8); // 4 east + 4 west
    }

    #[test]
    fn opposite_directions_are_distinct_links() {
        let links = Links::new(MeshShape::new(4, 4));
        let a = Coord::new(1, 1);
        let b = Coord::new(2, 1);
        assert_ne!(links.link_between(a, b), links.link_between(b, a));
    }

    #[test]
    fn local_path_is_empty() {
        let links = Links::new(MeshShape::new(4, 4));
        assert!(links.path(CoreId::new(5), CoreId::new(5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn non_adjacent_tiles_have_no_link() {
        let links = Links::new(MeshShape::new(4, 4));
        links.link_between(Coord::new(0, 0), Coord::new(2, 0));
    }

    #[test]
    fn detour_routes_around_a_dead_link() {
        let links = Links::new(MeshShape::new(4, 4));
        let from = Coord::new(0, 0);
        let dst = Coord::new(3, 0);
        // Healthy mesh: the detour IS the shortest (static) path.
        let clear = links.detour(from, dst, |_| false).unwrap();
        assert_eq!(clear.len(), 4);
        // Kill the first east hop: the detour drops a row and comes back,
        // exactly two hops longer, and never crosses the dead link.
        let dead = links.link_between(from, Coord::new(1, 0));
        let path = links.detour(from, dst, |l| l == dead).unwrap();
        assert_eq!(path[0], from);
        assert_eq!(path[path.len() - 1], dst);
        assert_eq!(path.len(), 6);
        for pair in path.windows(2) {
            assert_ne!(links.link_between(pair[0], pair[1]), dead);
        }
        // Deterministic: the same blocked set yields the same path.
        assert_eq!(path, links.detour(from, dst, |l| l == dead).unwrap());
    }

    #[test]
    fn detour_reports_disconnection_and_trivial_paths() {
        let links = Links::new(MeshShape::new(4, 1));
        let from = Coord::new(0, 0);
        let dst = Coord::new(3, 0);
        // A 1-row chain has no alternative: blocking any east link on the
        // route disconnects the pair.
        let dead = links.link_between(Coord::new(1, 0), Coord::new(2, 0));
        assert!(links.detour(from, dst, |l| l == dead).is_none());
        assert_eq!(links.detour(from, from, |_| true).unwrap(), vec![from]);
    }

    proptest! {
        /// Every directed link id is unique and within bounds.
        #[test]
        fn prop_link_ids_are_a_bijection(cols in 1usize..9, rows in 1usize..9) {
            prop_assume!(cols * rows > 1);
            let mesh = MeshShape::new(cols, rows);
            let links = Links::new(mesh);
            let mut seen = std::collections::HashSet::new();
            for y in 0..rows {
                for x in 0..cols {
                    let here = Coord::new(x, y);
                    let mut neighbours = Vec::new();
                    if x + 1 < cols { neighbours.push(Coord::new(x + 1, y)); }
                    if x > 0 { neighbours.push(Coord::new(x - 1, y)); }
                    if y + 1 < rows { neighbours.push(Coord::new(x, y + 1)); }
                    if y > 0 { neighbours.push(Coord::new(x, y - 1)); }
                    for n in neighbours {
                        let id = links.link_between(here, n);
                        prop_assert!(id.index() < links.count());
                        prop_assert!(seen.insert(id), "duplicate {id}");
                    }
                }
            }
            prop_assert_eq!(seen.len(), links.count());
        }

        /// Paths use exactly hops-many links and never repeat a link.
        #[test]
        fn prop_paths_have_hop_many_unique_links(
            tiles in 2usize..=64,
            a in 0usize..64,
            b in 0usize..64,
        ) {
            let mesh = MeshShape::square_for(tiles);
            let links = Links::new(mesh);
            let a = CoreId::new(a % tiles);
            let b = CoreId::new(b % tiles);
            let path = links.path(a, b);
            prop_assert_eq!(path.len(), mesh.hops(a, b));
            let unique: std::collections::HashSet<_> = path.iter().collect();
            prop_assert_eq!(unique.len(), path.len());
        }
    }
}
