//! A traditional multi-hop mesh NoC (Table I's "Mesh" row).
//!
//! Each hop costs one router cycle plus one link cycle. In `contended`
//! mode, flits arbitrate per directed link each cycle (oldest first) and
//! stall on loss — this is the mesh that Fig 11(c) loads with synthetic
//! traffic. In `contention_free` mode every message sails through at
//! 2 cycles/hop, which is the generous baseline the paper grants the
//! `distributed` configuration ("we place enough buffers and links in the
//! system to prevent link contention", §IV).

use crate::message::{Delivery, Message};
use crate::topology::Links;
use crate::{Interconnect, NocStats};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Coord, MeshShape};
use std::collections::{BinaryHeap, HashMap};

/// Cycles per hop: one for the router, one for the link.
pub const CYCLES_PER_HOP: u64 = 2;

#[derive(Debug, Clone)]
struct Flight {
    msg: Message,
    tiles: Vec<Coord>,
    pos: usize,
    ready_at: Cycle,
    submitted_at: Cycle,
    stalled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Cycle,
    seq: u64,
    msg: Message,
    submitted_at: Cycle,
    stalled: bool,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The mesh network model.
///
/// # Examples
///
/// ```
/// use nocstar_noc::mesh::{MeshNoc, CYCLES_PER_HOP};
/// use nocstar_noc::message::{Message, MsgKind};
/// use nocstar_noc::Interconnect;
/// use nocstar_types::{CoreId, Cycle, MeshShape};
///
/// let mut mesh = MeshNoc::contention_free(MeshShape::new(4, 4));
/// mesh.submit(Cycle::ZERO, Message::new(1, CoreId::new(0), CoreId::new(15), MsgKind::TlbRequest));
/// let d = mesh.advance(Cycle::new(12));
/// assert_eq!(d[0].at, Cycle::new(6 * CYCLES_PER_HOP)); // 6 hops
/// ```
#[derive(Debug, Clone)]
pub struct MeshNoc {
    links: Links,
    contention_free: bool,
    flights: Vec<Flight>,
    scheduled: BinaryHeap<Scheduled>,
    seq: u64,
    stats: NocStats,
}

impl MeshNoc {
    /// A mesh with per-link contention (used under synthetic load).
    pub fn contended(mesh: MeshShape) -> Self {
        let links = Links::new(mesh);
        Self {
            stats: NocStats::with_links(links.count()),
            links,
            contention_free: false,
            flights: Vec::new(),
            scheduled: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The paper's idealized mesh: enough buffering that no message ever
    /// stalls; latency is purely `2 x hops`.
    pub fn contention_free(mesh: MeshShape) -> Self {
        let mut noc = Self::contended(mesh);
        noc.contention_free = true;
        noc
    }

    /// The mesh shape this network spans.
    pub fn mesh(&self) -> MeshShape {
        self.links.mesh()
    }

    fn schedule(&mut self, msg: Message, at: Cycle, submitted_at: Cycle, stalled: bool) {
        self.seq += 1;
        self.scheduled.push(Scheduled {
            at,
            seq: self.seq,
            msg,
            submitted_at,
            stalled,
        });
    }

    fn step_flights(&mut self, cycle: Cycle) {
        if self.flights.is_empty() {
            return;
        }
        // Oldest-first arbitration per directed link.
        let mut order: Vec<usize> = (0..self.flights.len())
            .filter(|&i| self.flights[i].ready_at <= cycle)
            .collect();
        order.sort_by_key(|&i| (self.flights[i].submitted_at, self.flights[i].msg.id));

        let mut claimed: HashMap<usize, ()> = HashMap::new();
        let mut done: Vec<usize> = Vec::new();
        for &i in &order {
            let (from, to) = {
                let f = &self.flights[i];
                (f.tiles[f.pos], f.tiles[f.pos + 1])
            };
            let link = self.links.link_between(from, to).index();
            if claimed.contains_key(&link) {
                let f = &mut self.flights[i];
                f.ready_at = cycle + Cycles::ONE;
                f.stalled = true;
                self.stats.retries += 1;
                continue;
            }
            claimed.insert(link, ());
            self.stats.grants += 1;
            self.stats.link_busy[link] += CYCLES_PER_HOP;
            let f = &mut self.flights[i];
            f.pos += 1;
            if f.pos + 1 == f.tiles.len() {
                let arrival = cycle + Cycles::new(CYCLES_PER_HOP);
                let (msg, submitted_at, stalled) = (f.msg, f.submitted_at, f.stalled);
                done.push(i);
                self.schedule(msg, arrival, submitted_at, stalled);
            } else {
                f.ready_at = cycle + Cycles::new(CYCLES_PER_HOP);
            }
        }
        let mut index = 0usize;
        self.flights.retain(|_| {
            let keep = !done.contains(&index);
            index += 1;
            keep
        });
    }
}

impl Interconnect for MeshNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.schedule(msg, now, now, false);
            return;
        }
        if self.contention_free {
            let hops = self.links.mesh().hops(msg.src, msg.dst) as u64;
            self.schedule(msg, now + Cycles::new(hops * CYCLES_PER_HOP), now, false);
            return;
        }
        let tiles: Vec<Coord> = self.links.mesh().xy_path(msg.src, msg.dst).collect();
        self.flights.push(Flight {
            msg,
            tiles,
            pos: 0,
            ready_at: now,
            submitted_at: now,
            stalled: false,
        });
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        self.step_flights(cycle);
        let mut out = Vec::new();
        while let Some(top) = self.scheduled.peek() {
            if top.at > cycle {
                break;
            }
            let s = self.scheduled.pop().expect("peeked");
            self.stats.delivered += 1;
            self.stats.latency.record(s.at - s.submitted_at);
            if !s.stalled {
                self.stats.no_contention += 1;
            }
            out.push(Delivery {
                msg: s.msg,
                at: s.at,
            });
        }
        out
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flight_min = self.flights.iter().map(|f| f.ready_at).min();
        let sched_min = self.scheduled.peek().map(|s| s.at);
        match (flight_min, sched_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn drain(noc: &mut MeshNoc) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut cycle = Cycle::ZERO;
        for _ in 0..100_000 {
            match noc.next_activity() {
                None => return out,
                Some(next) => {
                    cycle = cycle.max(next);
                    out.extend(noc.advance(cycle));
                    cycle += Cycles::ONE;
                }
            }
        }
        panic!("mesh did not quiesce");
    }

    #[test]
    fn contention_free_latency_is_two_cycles_per_hop() {
        let mut noc = MeshNoc::contention_free(MeshShape::new(8, 4));
        noc.submit(Cycle::new(10), msg(1, 0, 31)); // 7 + 3 = 10 hops
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(10 + 20));
    }

    #[test]
    fn contended_uncongested_matches_contention_free() {
        let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(6)); // 3 hops x 2 cycles
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn shared_link_causes_a_stall() {
        // Both messages start by crossing link 1->2 in the same cycle.
        let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
        noc.submit(Cycle::ZERO, msg(1, 1, 3));
        noc.submit(Cycle::ZERO, msg(2, 1, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].at, Cycle::new(4)); // 2 hops * 2
        assert!(d[1].at > d[0].at);
        assert!(noc.stats().retries > 0);
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn local_messages_deliver_immediately() {
        let mut noc = MeshNoc::contended(MeshShape::new(4, 4));
        noc.submit(Cycle::new(2), msg(1, 5, 5));
        let d = noc.advance(Cycle::new(2));
        assert_eq!(d[0].at, Cycle::new(2));
    }

    #[test]
    fn stats_record_latency() {
        let mut noc = MeshNoc::contention_free(MeshShape::new(4, 4));
        noc.submit(Cycle::ZERO, msg(1, 0, 1));
        drain(&mut noc);
        assert_eq!(noc.stats().latency.mean(), 2.0);
        assert_eq!(noc.stats().delivered, 1);
    }

    proptest::proptest! {
        /// No message is lost or duplicated under arbitrary traffic.
        #[test]
        fn prop_mesh_delivers_everything(
            sends in proptest::collection::vec((0usize..16, 0usize..16, 0u64..30), 1..50),
            contended in proptest::prelude::any::<bool>(),
        ) {
            let shape = MeshShape::square_for(16);
            let mut noc = if contended {
                MeshNoc::contended(shape)
            } else {
                MeshNoc::contention_free(shape)
            };
            for (i, &(src, dst, at)) in sends.iter().enumerate() {
                noc.submit(Cycle::new(at), msg(i as u64, src, dst));
            }
            let mut seen = std::collections::HashSet::new();
            let mut cycle = Cycle::ZERO;
            for _ in 0..100_000 {
                match noc.next_activity() {
                    None => break,
                    Some(next) => {
                        cycle = cycle.max(next);
                        for d in noc.advance(cycle) {
                            proptest::prop_assert!(seen.insert(d.msg.id), "duplicate");
                        }
                        cycle += Cycles::ONE;
                    }
                }
            }
            proptest::prop_assert_eq!(seen.len(), sends.len());
            proptest::prop_assert_eq!(noc.next_activity(), None);
        }
    }
}
