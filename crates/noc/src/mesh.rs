//! A traditional multi-hop mesh NoC (Table I's "Mesh" row).
//!
//! Each hop costs one router cycle plus one link cycle. In `contended`
//! mode, flits arbitrate per directed link each cycle (oldest first) and
//! stall on loss — this is the mesh that Fig 11(c) loads with synthetic
//! traffic. In `contention_free` mode every message sails through at
//! 2 cycles/hop, which is the generous baseline the paper grants the
//! `distributed` configuration ("we place enough buffers and links in the
//! system to prevent link contention", §IV).

use crate::message::{Delivery, Message};
use crate::topology::Links;
use crate::{Interconnect, NocStats};
use nocstar_faults::{
    DiagSnapshot, FaultPlan, FaultStats, LinkState, PendingMessage, RecoveryPolicy, RecoveryStats,
};
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Coord, MeshShape};
use std::collections::{BTreeSet, BinaryHeap};

/// Cycles per hop: one for the router, one for the link.
pub const CYCLES_PER_HOP: u64 = 2;

#[derive(Debug, Clone)]
struct Flight {
    msg: Message,
    tiles: Vec<Coord>,
    pos: usize,
    ready_at: Cycle,
    submitted_at: Cycle,
    stalled: bool,
    fault_attempts: u64,
    // First cycle an outage blocked this flight (recovery's detect time);
    // cleared once a detour departs.
    blocked_at: Option<Cycle>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Cycle,
    seq: u64,
    msg: Message,
    submitted_at: Cycle,
    stalled: bool,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The mesh network model.
///
/// # Examples
///
/// ```
/// use nocstar_noc::mesh::{MeshNoc, CYCLES_PER_HOP};
/// use nocstar_noc::message::{Message, MsgKind};
/// use nocstar_noc::Interconnect;
/// use nocstar_types::{CoreId, Cycle, MeshShape};
///
/// let mut mesh = MeshNoc::contention_free(MeshShape::new(4, 4));
/// mesh.submit(Cycle::ZERO, Message::new(1, CoreId::new(0), CoreId::new(15), MsgKind::TlbRequest));
/// let d = mesh.advance(Cycle::new(12));
/// assert_eq!(d[0].at, Cycle::new(6 * CYCLES_PER_HOP)); // 6 hops
/// ```
#[derive(Debug, Clone)]
pub struct MeshNoc {
    links: Links,
    contention_free: bool,
    flights: Vec<Flight>,
    scheduled: BinaryHeap<Scheduled>,
    seq: u64,
    stats: NocStats,
    faults: FaultPlan,
    fstats: FaultStats,
    recovery: RecoveryPolicy,
    rstats: RecoveryStats,
}

impl MeshNoc {
    /// A mesh with per-link contention (used under synthetic load).
    pub fn contended(mesh: MeshShape) -> Self {
        let links = Links::new(mesh);
        Self {
            stats: NocStats::with_links(links.count()),
            links,
            contention_free: false,
            flights: Vec::new(),
            scheduled: BinaryHeap::new(),
            seq: 0,
            faults: FaultPlan::default(),
            fstats: FaultStats::default(),
            recovery: RecoveryPolicy::default(),
            rstats: RecoveryStats::default(),
        }
    }

    /// The paper's idealized mesh: enough buffering that no message ever
    /// stalls; latency is purely `2 x hops`.
    pub fn contention_free(mesh: MeshShape) -> Self {
        let mut noc = Self::contended(mesh);
        noc.contention_free = true;
        noc
    }

    /// The mesh shape this network spans.
    pub fn mesh(&self) -> MeshShape {
        self.links.mesh()
    }

    fn schedule(&mut self, msg: Message, at: Cycle, submitted_at: Cycle, stalled: bool) {
        self.seq += 1;
        self.scheduled.push(Scheduled {
            at,
            seq: self.seq,
            msg,
            submitted_at,
            stalled,
        });
    }

    fn step_flights(&mut self, cycle: Cycle) {
        if self.flights.is_empty() {
            return;
        }
        // Oldest-first arbitration per directed link.
        let mut order: Vec<usize> = (0..self.flights.len())
            .filter(|&i| self.flights[i].ready_at <= cycle)
            .collect();
        order.sort_by_key(|&i| (self.flights[i].submitted_at, self.flights[i].msg.id));

        let mut claimed: BTreeSet<usize> = BTreeSet::new();
        let mut done: Vec<usize> = Vec::new();
        let now = cycle.value();
        for &i in &order {
            let (from, to) = {
                let f = &self.flights[i];
                (f.tiles[f.pos], f.tiles[f.pos + 1])
            };
            let link = self.links.link_between(from, to).index();
            if !self.faults.is_empty() && self.faults.link_outage(link, now) {
                // The next hop is down: with a re-routing policy, detour
                // around the outage; otherwise back off, then escape over
                // the maintenance path once the retry budget is spent.
                {
                    let f = &mut self.flights[i];
                    f.fault_attempts += 1;
                    f.stalled = true;
                    if f.blocked_at.is_none() {
                        f.blocked_at = Some(cycle);
                    }
                }
                self.stats.retries += 1;
                self.fstats.link_blocked += 1;
                if self.recovery.reroute {
                    let (pos, cur, dst, old_remaining) = {
                        let f = &self.flights[i];
                        let last = f.tiles[f.tiles.len() - 1];
                        (f.pos, f.tiles[f.pos], last, f.tiles.len() - 1 - f.pos)
                    };
                    let detour = self
                        .links
                        .detour(cur, dst, |l| self.faults.link_outage(l.index(), now));
                    if let Some(path) = detour {
                        self.rstats.reroutes += 1;
                        self.rstats.detour_extra_hops +=
                            (path.len() - 1).saturating_sub(old_remaining) as u64;
                        let f = &mut self.flights[i];
                        f.tiles.truncate(pos + 1);
                        f.tiles.extend(path.into_iter().skip(1));
                        // Picking the detour costs one decision cycle.
                        f.ready_at = cycle + Cycles::ONE;
                        if let Some(b) = f.blocked_at.take() {
                            self.rstats
                                .detect_to_reroute
                                .record((f.ready_at - b).value());
                        }
                        continue;
                    }
                    self.rstats.reroute_failed += 1;
                }
                let max = self.recovery.effective_max_attempts(self.faults.retry);
                let f = &mut self.flights[i];
                if max.is_some_and(|m| f.fault_attempts >= m) {
                    let remaining = (f.tiles.len() - 1 - f.pos) as u64;
                    let arrival = cycle + Cycles::new(CYCLES_PER_HOP * remaining + 1);
                    let (msg, submitted_at, attempts) = (f.msg, f.submitted_at, f.fault_attempts);
                    done.push(i);
                    self.fstats.fallbacks += 1;
                    self.fstats.retries_per_fallback.record(attempts);
                    if self
                        .faults
                        .retry
                        .max_attempts
                        .is_none_or(|pm| attempts < u64::from(pm))
                    {
                        // The policy's threshold, not the plan's budget,
                        // triggered the escape.
                        self.rstats.escalations += 1;
                    }
                    self.schedule(msg, arrival, submitted_at, true);
                } else {
                    let wait = self.faults.backoff(f.fault_attempts, f.msg.id);
                    f.ready_at = cycle + Cycles::new(wait);
                    self.fstats.backoff_cycles += wait;
                }
                continue;
            }
            if claimed.contains(&link) {
                let f = &mut self.flights[i];
                f.ready_at = cycle + Cycles::ONE;
                f.stalled = true;
                self.stats.retries += 1;
                continue;
            }
            claimed.insert(link);
            let extra = if self.faults.is_empty() {
                0
            } else {
                self.faults.link_degrade(link, now)
            };
            if extra > 0 {
                self.fstats.degraded_traversals += 1;
            }
            self.stats.grants += 1;
            self.stats.link_busy[link] += CYCLES_PER_HOP + extra;
            let f = &mut self.flights[i];
            f.pos += 1;
            if f.pos + 1 == f.tiles.len() {
                let arrival = cycle + Cycles::new(CYCLES_PER_HOP + extra);
                let (msg, submitted_at, stalled) = (f.msg, f.submitted_at, f.stalled);
                done.push(i);
                self.schedule(msg, arrival, submitted_at, stalled);
            } else {
                f.ready_at = cycle + Cycles::new(CYCLES_PER_HOP + extra);
            }
        }
        let mut index = 0usize;
        self.flights.retain(|_| {
            let keep = !done.contains(&index);
            index += 1;
            keep
        });
    }
}

impl Interconnect for MeshNoc {
    fn submit(&mut self, now: Cycle, msg: Message) {
        if msg.is_local() {
            self.schedule(msg, now, now, false);
            return;
        }
        if self.contention_free {
            if self.faults.is_empty() {
                let hops = self.links.mesh().hops(msg.src, msg.dst) as u64;
                self.schedule(msg, now + Cycles::new(hops * CYCLES_PER_HOP), now, false);
                return;
            }
            // Even the idealized mesh honors injected faults: departure
            // waits out any outage on the path, and degraded links add
            // their per-traversal penalty.
            let tiles: Vec<Coord> = self.links.mesh().xy_path(msg.src, msg.dst).collect();
            let now_v = now.value();
            let statically_blocked = (self.recovery.reroute || self.recovery.escalate.is_some())
                && tiles.windows(2).any(|pair| {
                    let link = self.links.link_between(pair[0], pair[1]).index();
                    self.faults.link_outage(link, now_v)
                });
            if statically_blocked {
                // Closed loop: instead of waiting out the outage window,
                // detour around it (one decision cycle), or escalate to
                // the buffered escape path after a bounded backoff.
                let static_hops = tiles.len() - 1;
                if self.recovery.reroute {
                    let detour = self.links.detour(tiles[0], tiles[static_hops], |l| {
                        self.faults.link_outage(l.index(), now_v)
                    });
                    if let Some(path) = detour {
                        let hops = path.len() - 1;
                        let mut extra = 0u64;
                        let mut degraded = false;
                        for pair in path.windows(2) {
                            let link = self.links.link_between(pair[0], pair[1]).index();
                            let d = self.faults.link_degrade(link, now_v + 1);
                            degraded |= d > 0;
                            extra += d;
                        }
                        if degraded {
                            self.fstats.degraded_traversals += 1;
                        }
                        self.fstats.link_blocked += 1;
                        self.rstats.reroutes += 1;
                        self.rstats.detour_extra_hops += (hops - static_hops) as u64;
                        self.rstats.detect_to_reroute.record(1);
                        let arrival = now + Cycles::new(1 + hops as u64 * CYCLES_PER_HOP + extra);
                        self.schedule(msg, arrival, now, true);
                        return;
                    }
                    self.rstats.reroute_failed += 1;
                }
                if self.recovery.escalate.is_some() {
                    // No fault-free path exists: emulate the bounded retry
                    // ladder, then deliver over the buffered escape path.
                    let k = self
                        .recovery
                        .effective_max_attempts(self.faults.retry)
                        .unwrap_or(1);
                    let mut wait = 0u64;
                    for attempt in 1..=k {
                        wait += self.faults.backoff(attempt, msg.id);
                    }
                    self.fstats.link_blocked += 1;
                    self.fstats.backoff_cycles += wait;
                    self.fstats.fallbacks += 1;
                    self.fstats.retries_per_fallback.record(k);
                    self.rstats.escalations += 1;
                    let arrival = now + Cycles::new(wait + static_hops as u64 * CYCLES_PER_HOP + 1);
                    self.schedule(msg, arrival, now, true);
                    return;
                }
                // Re-routing armed but the mesh is disconnected and no
                // escalation: fall through to the open-loop wait.
            }
            let hops = tiles.len().saturating_sub(1) as u64;
            let mut start = now.value();
            let mut extra = 0u64;
            let mut blocked = false;
            let mut degraded = false;
            for pair in tiles.windows(2) {
                let link = self.links.link_between(pair[0], pair[1]).index();
                let clear = self.faults.outage_clear_at(link, start);
                if clear > start {
                    blocked = true;
                    start = clear;
                }
                let d = self.faults.link_degrade(link, start);
                degraded |= d > 0;
                extra += d;
            }
            if blocked {
                self.fstats.link_blocked += 1;
            }
            if degraded {
                self.fstats.degraded_traversals += 1;
            }
            let arrival = Cycle::new(start) + Cycles::new(hops * CYCLES_PER_HOP + extra);
            self.schedule(msg, arrival, now, blocked);
            return;
        }
        let tiles: Vec<Coord> = self.links.mesh().xy_path(msg.src, msg.dst).collect();
        self.flights.push(Flight {
            msg,
            tiles,
            pos: 0,
            ready_at: now,
            submitted_at: now,
            stalled: false,
            fault_attempts: 0,
            blocked_at: None,
        });
    }

    fn advance(&mut self, cycle: Cycle) -> Vec<Delivery> {
        self.step_flights(cycle);
        let mut out = Vec::new();
        while self.scheduled.peek().is_some_and(|top| top.at <= cycle) {
            let Some(s) = self.scheduled.pop() else { break };
            self.stats.delivered += 1;
            self.stats.latency.record(s.at - s.submitted_at);
            if !s.stalled {
                self.stats.no_contention += 1;
            }
            out.push(Delivery {
                msg: s.msg,
                at: s.at,
            });
        }
        out
    }

    fn lookahead(&self) -> Cycles {
        // One router + one link cycle per hop: the closest non-local
        // destination (one hop) is CYCLES_PER_HOP cycles away.
        Cycles::new(CYCLES_PER_HOP)
    }

    fn next_activity(&self) -> Option<Cycle> {
        let flight_min = self.flights.iter().map(|f| f.ready_at).min();
        let sched_min = self.scheduled.peek().map(|s| s.at);
        match (flight_min, sched_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.fstats.reset();
        self.rstats.reset();
    }

    fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        Some(&self.fstats)
    }

    fn install_recovery(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    fn recovery_stats(&self) -> Option<&RecoveryStats> {
        Some(&self.rstats)
    }

    fn diagnostics(&self, cycle: Cycle) -> DiagSnapshot {
        let now = cycle.value();
        let pending_messages = self
            .flights
            .iter()
            .map(|f| PendingMessage {
                id: f.msg.id,
                src: f.msg.src.index(),
                dst: f.msg.dst.index(),
                kind: format!("{:?}", f.msg.kind),
                submitted_at: f.submitted_at.value(),
                attempts: f.fault_attempts,
            })
            .collect();
        let links = (0..self.links.count())
            .map(|l| LinkState {
                link: l,
                busy_until: 0,
                reserved_by: None,
                faulted: self.faults.link_outage(l, now),
            })
            .collect();
        DiagSnapshot {
            cycle: now,
            pending_messages,
            links,
            active_faults: self.faults.active_at(now),
            ..DiagSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use nocstar_types::CoreId;

    fn msg(id: u64, src: usize, dst: usize) -> Message {
        Message::new(id, CoreId::new(src), CoreId::new(dst), MsgKind::TlbRequest)
    }

    fn drain(noc: &mut MeshNoc) -> Vec<Delivery> {
        crate::drain_until_idle(noc, Cycle::ZERO, 100_000).expect("mesh did not quiesce")
    }

    #[test]
    fn contended_outage_delays_and_escape_delivers() {
        let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
        noc.install_faults("link:*@0-1000000=off; retry=3".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 1, "escape path must deliver");
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 1);
    }

    #[test]
    fn contention_free_waits_out_outages_and_pays_degradation() {
        let mut noc = MeshNoc::contention_free(MeshShape::new(4, 1));
        noc.install_faults("link:*@0-40=off; link:*@0-100=+1".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3)); // 3 hops
        let d = drain(&mut noc);
        // Departs at 40 (outage clear), 3 hops x 2 cycles + 3 x 1 extra.
        assert_eq!(d[0].at, Cycle::new(40 + 6 + 3));
        let fs = noc.fault_stats().unwrap();
        assert_eq!(fs.link_blocked, 1);
        assert_eq!(fs.degraded_traversals, 1);
    }

    #[test]
    fn reroute_detours_a_contended_flight_around_an_outage() {
        // 4x4 mesh, single dead link on the XY route: the detour adds two
        // hops instead of burning the whole retry budget.
        let mut noc = MeshNoc::contended(MeshShape::new(4, 4));
        noc.install_faults("link:0@0-1000000=off".parse().unwrap());
        noc.install_recovery("reroute".parse().unwrap());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 1);
        let rs = noc.recovery_stats().unwrap();
        assert_eq!(rs.reroutes, 1);
        assert_eq!(rs.detour_extra_hops, 2);
        assert_eq!(rs.detect_to_reroute.count(), 1);
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 0);
        // 1 detect cycle + 5 detour hops x 2 cycles.
        assert_eq!(d[0].at, Cycle::new(1 + 10));
    }

    #[test]
    fn escalation_beats_the_full_retry_ladder_when_disconnected() {
        // Whole-fabric outage: no detour exists, so recovery escalates to
        // the escape path after 3 attempts instead of 16.
        let shape = MeshShape::new(4, 1);
        let open = {
            let mut noc = MeshNoc::contended(shape);
            noc.install_faults("link:*@0-1000000=off".parse().unwrap());
            noc.submit(Cycle::ZERO, msg(1, 0, 3));
            drain(&mut noc)[0].at
        };
        let mut noc = MeshNoc::contended(shape);
        noc.install_faults("link:*@0-1000000=off".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let closed = drain(&mut noc)[0].at;
        assert!(
            closed < open,
            "escalation must beat the open loop: {closed:?} vs {open:?}"
        );
        let rs = noc.recovery_stats().unwrap();
        assert_eq!(rs.escalations, 1);
        assert_eq!(rs.reroutes, 0);
        assert!(rs.reroute_failed > 0);
        assert_eq!(noc.fault_stats().unwrap().fallbacks, 1);
    }

    #[test]
    fn contention_free_recovery_avoids_waiting_out_the_window() {
        // The faultsweep plan: every link down for a long window. Open
        // loop waits until cycle 1000; escalation escapes in tens of
        // cycles; with a partial outage, the detour wins instead.
        let shape = MeshShape::new(4, 4);
        let mut noc = MeshNoc::contention_free(shape);
        noc.install_faults("link:*@0-1000=off".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert!(d[0].at < Cycle::new(1000), "must not wait out the outage");
        assert_eq!(noc.recovery_stats().unwrap().escalations, 1);

        let mut noc = MeshNoc::contention_free(shape);
        noc.install_faults("link:0@0-1000=off".parse().unwrap());
        noc.install_recovery(RecoveryPolicy::all());
        noc.submit(Cycle::ZERO, msg(2, 0, 3));
        let d = drain(&mut noc);
        // 1 detect cycle + 5-hop detour x 2 cycles.
        assert_eq!(d[0].at, Cycle::new(1 + 10));
        assert_eq!(noc.recovery_stats().unwrap().reroutes, 1);
    }

    #[test]
    fn disabled_recovery_changes_nothing() {
        let run = |recover: bool| {
            let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
            noc.install_faults("link:*@0-40=off".parse().unwrap());
            if recover {
                noc.install_recovery(RecoveryPolicy::default());
            }
            noc.submit(Cycle::ZERO, msg(1, 0, 3));
            drain(&mut noc)[0].at
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn contention_free_latency_is_two_cycles_per_hop() {
        let mut noc = MeshNoc::contention_free(MeshShape::new(8, 4));
        noc.submit(Cycle::new(10), msg(1, 0, 31)); // 7 + 3 = 10 hops
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(10 + 20));
    }

    #[test]
    fn contended_uncongested_matches_contention_free() {
        let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
        noc.submit(Cycle::ZERO, msg(1, 0, 3));
        let d = drain(&mut noc);
        assert_eq!(d[0].at, Cycle::new(6)); // 3 hops x 2 cycles
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn shared_link_causes_a_stall() {
        // Both messages start by crossing link 1->2 in the same cycle.
        let mut noc = MeshNoc::contended(MeshShape::new(4, 1));
        noc.submit(Cycle::ZERO, msg(1, 1, 3));
        noc.submit(Cycle::ZERO, msg(2, 1, 3));
        let d = drain(&mut noc);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].at, Cycle::new(4)); // 2 hops * 2
        assert!(d[1].at > d[0].at);
        assert!(noc.stats().retries > 0);
        assert_eq!(noc.stats().no_contention, 1);
    }

    #[test]
    fn local_messages_deliver_immediately() {
        let mut noc = MeshNoc::contended(MeshShape::new(4, 4));
        noc.submit(Cycle::new(2), msg(1, 5, 5));
        let d = noc.advance(Cycle::new(2));
        assert_eq!(d[0].at, Cycle::new(2));
    }

    #[test]
    fn stats_record_latency() {
        let mut noc = MeshNoc::contention_free(MeshShape::new(4, 4));
        noc.submit(Cycle::ZERO, msg(1, 0, 1));
        drain(&mut noc);
        assert_eq!(noc.stats().latency.mean(), 2.0);
        assert_eq!(noc.stats().delivered, 1);
    }

    proptest::proptest! {
        /// No message is lost or duplicated under arbitrary traffic.
        #[test]
        fn prop_mesh_delivers_everything(
            sends in proptest::collection::vec((0usize..16, 0usize..16, 0u64..30), 1..50),
            contended in proptest::prelude::any::<bool>(),
        ) {
            let shape = MeshShape::square_for(16);
            let mut noc = if contended {
                MeshNoc::contended(shape)
            } else {
                MeshNoc::contention_free(shape)
            };
            for (i, &(src, dst, at)) in sends.iter().enumerate() {
                noc.submit(Cycle::new(at), msg(i as u64, src, dst));
            }
            let mut seen = std::collections::HashSet::new();
            let mut cycle = Cycle::ZERO;
            for _ in 0..100_000 {
                match noc.next_activity() {
                    None => break,
                    Some(next) => {
                        cycle = cycle.max(next);
                        for d in noc.advance(cycle) {
                            proptest::prop_assert!(seen.insert(d.msg.id), "duplicate");
                        }
                        cycle += Cycles::ONE;
                    }
                }
            }
            proptest::prop_assert_eq!(seen.len(), sends.len());
            proptest::prop_assert_eq!(noc.next_activity(), None);
        }
    }
}
