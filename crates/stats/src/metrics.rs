//! The metrics registry: named counters, gauges and log2 histograms with
//! cheap interned handles, harvested into deterministic snapshots.
//!
//! Simulator components register metrics once at construction and then
//! update them through copyable integer handles ([`CounterId`],
//! [`GaugeId`], [`HistogramId`]) — no string lookups or allocation on the
//! hot path. A disabled registry ([`MetricsRegistry::disabled`]) allocates
//! nothing and turns every update into a branch on one bool, so the
//! default (metrics off) costs effectively zero.
//!
//! [`MetricsRegistry::snapshot`] freezes the current values into a
//! [`MetricsSnapshot`] sorted by metric name, giving byte-identical JSON
//! for identical runs. Snapshots [`merge`](MetricsSnapshot::merge)
//! associatively and commutatively: counters and histograms add, gauges
//! take the maximum.

use std::fmt;

/// Number of buckets in a [`Log2Histogram`]: one for zero plus one per
/// power of two up to `2^63`.
pub const LOG2_BUCKETS: usize = 65;

/// An allocation-free power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts zero-valued samples; bucket `k` (for `k >= 1`)
/// counts samples in `[2^(k-1), 2^k)`. The bucket array is a fixed-size
/// inline array, so recording is a couple of arithmetic ops and one
/// indexed increment.
///
/// # Examples
///
/// ```
/// use nocstar_stats::metrics::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(5); // bucket [4, 8)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.buckets()[0], 1);
/// assert_eq!(h.buckets()[1], 1);
/// assert_eq!(h.buckets()[3], 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls into.
    #[inline]
    pub const fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by a bucket (`hi` is
    /// `u64::MAX` for the last bucket, whose true bound overflows).
    pub const fn bucket_range(bucket: usize) -> (u64, u64) {
        match bucket {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), 1 << k),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub const fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` if empty.
    pub const fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Mean sample value, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// An approximate `p`-th percentile (`p` in `[0, 100]`), or `None` if
    /// empty. Walks the buckets to the one holding the rank-`ceil(p/100 ·
    /// count)` sample and reports that bucket's lower bound, clamped to
    /// the exact recorded min/max — so p0 is exactly `min()`, p100 is at
    /// most `max()`, and the answer is always a value the bucketing
    /// cannot place above the true percentile by more than one power of
    /// two. Deterministic: a pure fold over the bucket counts.
    pub fn approx_percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the percentile sample, 1-based (nearest-rank method).
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, _) = Self::bucket_range(bucket);
                return Some(lo.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one (bucketwise addition).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named metrics with interned handles.
///
/// Registration happens once, at component construction; updates go
/// through the returned ids. When built with
/// [`MetricsRegistry::disabled`], registration returns dummy handles and
/// every update is a single predictable branch.
///
/// # Examples
///
/// ```
/// use nocstar_stats::metrics::MetricsRegistry;
/// let mut reg = MetricsRegistry::enabled();
/// let hits = reg.counter("tlb.slice0.hits");
/// reg.add(hits, 3);
/// reg.incr(hits);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("tlb.slice0.hits"), Some(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<u64>,
    histogram_names: Vec<String>,
    histograms: Vec<Log2Histogram>,
}

impl MetricsRegistry {
    /// A live registry that stores every update.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A no-op registry: registration hands out dummy ids, updates do
    /// nothing, snapshots are empty. Allocates nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether updates are being recorded.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-resolves) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId(0);
        }
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-resolves) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if !self.enabled {
            return GaugeId(0);
        }
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or re-resolves) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if !self.enabled {
            return HistogramId(0);
        }
        if let Some(i) = self.histogram_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.histogram_names.push(name.to_string());
        self.histograms.push(Log2Histogram::new());
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0] += n;
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge to its current level.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        if self.enabled {
            self.gauges[id.0] = value;
        }
    }

    /// Raises a gauge to `value` if it is higher than the current value
    /// (high-water-mark semantics).
    #[inline]
    pub fn raise_gauge(&mut self, id: GaugeId, value: u64) {
        if self.enabled && value > self.gauges[id.0] {
            self.gauges[id.0] = value;
        }
    }

    /// Records one histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if self.enabled {
            self.histograms[id.0].record(value);
        }
    }

    /// Folds an externally accumulated histogram into a registered one.
    /// Components that keep their own [`Log2Histogram`] on the hot path
    /// use this to publish it at harvest time.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &Log2Histogram) {
        if self.enabled {
            self.histograms[id.0].merge(other);
        }
    }

    /// Clears all values (names and handles stay valid). Used at the
    /// warmup/measurement boundary.
    pub fn reset_values(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.gauges.iter_mut().for_each(|g| *g = 0);
        self.histograms
            .iter_mut()
            .for_each(|h| *h = Log2Histogram::new());
    }

    /// Freezes the current values, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples: Vec<MetricSample> =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, &value) in self.counter_names.iter().zip(&self.counters) {
            samples.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Counter(value),
            });
        }
        for (name, &value) in self.gauge_names.iter().zip(&self.gauges) {
            samples.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Gauge(value),
            });
        }
        for (name, &hist) in self.histogram_names.iter().zip(&self.histograms) {
            samples.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Histogram(hist),
            });
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }
}

/// A frozen metric value.
// Histogram inlines its 65 buckets; boxing it would cost `Copy` and an
// allocation per snapshot entry for a cold, snapshot-only type.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-set (or high-water) level.
    Gauge(u64),
    /// Distribution of samples.
    Histogram(Log2Histogram),
}

/// One named, frozen metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Dotted metric path, e.g. `noc.link3.busy_cycles`.
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A sorted, immutable set of metric samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// All samples, sorted by name.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Looks up a sample by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into this snapshot. Shared names combine per kind —
    /// counters and histograms add, gauges take the max — and names unique
    /// to either side are kept. The operation is associative and
    /// commutative, so per-shard snapshots can fold in any order.
    ///
    /// # Panics
    ///
    /// Panics if the same name holds different metric kinds.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for sample in &other.samples {
            match self
                .samples
                .binary_search_by(|s| s.name.as_str().cmp(&sample.name))
            {
                Ok(i) => {
                    let mine = &mut self.samples[i].value;
                    match (mine, &sample.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => panic!("metric {:?} merged across kinds", sample.name),
                    }
                }
                Err(i) => self.samples.insert(i, sample.clone()),
            }
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for sample in &self.samples {
            match &sample.value {
                MetricValue::Counter(v) => writeln!(f, "{} = {v}", sample.name)?,
                MetricValue::Gauge(v) => writeln!(f, "{} = {v} (gauge)", sample.name)?,
                MetricValue::Histogram(h) => writeln!(
                    f,
                    "{} = n={} sum={} min={:?} max={:?}",
                    sample.name,
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_edges_are_exact() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for bucket in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(bucket);
            assert_eq!(Log2Histogram::bucket_of(lo), bucket);
            assert!(lo < hi || bucket == 0);
        }
    }

    #[test]
    fn disabled_registry_is_inert_and_unallocated() {
        let mut reg = MetricsRegistry::disabled();
        let c = reg.counter("a");
        let g = reg.gauge("b");
        let h = reg.histogram("c");
        reg.add(c, 10);
        reg.set_gauge(g, 5);
        reg.observe(h, 7);
        assert!(reg.snapshot().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn registration_is_idempotent_per_name() {
        let mut reg = MetricsRegistry::enabled();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.incr(a);
        reg.incr(b);
        assert_eq!(reg.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn snapshots_are_sorted_and_queryable() {
        let mut reg = MetricsRegistry::enabled();
        let z = reg.counter("z.last");
        let a = reg.gauge("a.first");
        let m = reg.histogram("m.mid");
        reg.add(z, 4);
        reg.raise_gauge(a, 9);
        reg.raise_gauge(a, 3); // lower: ignored
        reg.observe(m, 100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.samples().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.gauge("a.first"), Some(9));
        assert_eq!(snap.counter("z.last"), Some(4));
        assert_eq!(snap.histogram("m.mid").unwrap().count(), 1);
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn reset_clears_values_but_keeps_handles() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("c");
        reg.add(c, 7);
        reg.reset_values();
        assert_eq!(reg.snapshot().counter("c"), Some(0));
        reg.incr(c);
        assert_eq!(reg.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn approx_percentiles_walk_buckets_and_clamp_to_extremes() {
        assert_eq!(Log2Histogram::new().approx_percentile(50.0), None);
        let mut h = Log2Histogram::new();
        for v in [3u64, 5, 9, 17, 33, 1000] {
            h.record(v);
        }
        // p0 is exactly the min; p100 never exceeds the max.
        assert_eq!(h.approx_percentile(0.0), Some(3));
        assert_eq!(h.approx_percentile(100.0), Some(512)); // bucket floor of 1000
                                                           // The median's rank-3 sample (9) lives in bucket [8, 16).
        assert_eq!(h.approx_percentile(50.0), Some(8));
        // A single-sample histogram answers that sample at every p.
        let mut one = Log2Histogram::new();
        one.record(42);
        assert_eq!(one.approx_percentile(0.0), Some(42));
        assert_eq!(one.approx_percentile(99.0), Some(42));
    }

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, u64)]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::enabled();
        for (name, v) in counters {
            let id = reg.counter(name);
            reg.add(id, *v);
        }
        for (name, v) in gauges {
            let id = reg.gauge(name);
            reg.set_gauge(id, *v);
        }
        reg.snapshot()
    }

    #[test]
    fn merge_combines_by_kind_and_keeps_unique_names() {
        let mut a = snap(&[("c", 1), ("only_a", 5)], &[("g", 3)]);
        let b = snap(&[("c", 2)], &[("g", 7), ("only_b", 1)]);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.counter("only_a"), Some(5));
        assert_eq!(a.gauge("g"), Some(7));
        assert_eq!(a.gauge("only_b"), Some(1));
    }

    #[test]
    #[should_panic(expected = "merged across kinds")]
    fn merge_rejects_kind_conflicts() {
        let mut a = snap(&[("x", 1)], &[]);
        let b = snap(&[], &[("x", 1)]);
        a.merge(&b);
    }

    proptest! {
        /// Histogram bucket totals always equal the observation count.
        #[test]
        fn prop_bucket_totals_match_count(values in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
            let mut h = Log2Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
            prop_assert_eq!(h.count(), values.len() as u64);
            if let (Some(min), Some(max)) = (h.min(), h.max()) {
                prop_assert_eq!(min, *values.iter().min().unwrap());
                prop_assert_eq!(max, *values.iter().max().unwrap());
            } else {
                prop_assert!(values.is_empty());
            }
        }

        /// Every sample lands in the bucket whose range contains it.
        #[test]
        fn prop_samples_land_in_their_range(v in 0u64..=u64::MAX) {
            let bucket = Log2Histogram::bucket_of(v);
            let (lo, hi) = Log2Histogram::bucket_range(bucket);
            prop_assert!(v >= lo);
            // The last bucket's upper bound saturates at u64::MAX (inclusive).
            prop_assert!(v < hi || bucket == 64);
        }

        /// Histogram merge is commutative and preserves totals.
        #[test]
        fn prop_histogram_merge_commutes(
            xs in prop::collection::vec(0u64..1_000_000, 0..50),
            ys in prop::collection::vec(0u64..1_000_000, 0..50),
        ) {
            let mut hx = Log2Histogram::new();
            xs.iter().for_each(|&v| hx.record(v));
            let mut hy = Log2Histogram::new();
            ys.iter().for_each(|&v| hy.record(v));

            let mut xy = hx;
            xy.merge(&hy);
            let mut yx = hy;
            yx.merge(&hx);
            prop_assert_eq!(xy, yx);
            prop_assert_eq!(xy.count(), (xs.len() + ys.len()) as u64);
        }

        /// Snapshot merge is associative and commutative.
        #[test]
        fn prop_snapshot_merge_assoc_comm(
            a in 0u64..1000, b in 0u64..1000, c in 0u64..1000,
            ga in 0u64..1000, gb in 0u64..1000, gc in 0u64..1000,
        ) {
            let sa = snap(&[("n", a)], &[("g", ga)]);
            let sb = snap(&[("n", b)], &[("g", gb)]);
            let sc = snap(&[("n", c)], &[("g", gc)]);

            // (a + b) + c
            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);
            // a + (b + c)
            let mut right_inner = sb.clone();
            right_inner.merge(&sc);
            let mut right = sa.clone();
            right.merge(&right_inner);
            prop_assert_eq!(&left, &right);

            // b + a == a + b
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(&ab, &ba);

            prop_assert_eq!(left.counter("n"), Some(a + b + c));
            prop_assert_eq!(left.gauge("g"), Some(ga.max(gb).max(gc)));
        }

        /// Counter snapshots are monotone: more events never lowers a value.
        #[test]
        fn prop_counter_snapshots_monotone(incs in prop::collection::vec(0u64..100, 1..30)) {
            let mut reg = MetricsRegistry::enabled();
            let id = reg.counter("events");
            let mut last = 0;
            for n in incs {
                reg.add(id, n);
                let now = reg.snapshot().counter("events").unwrap();
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
