//! Measurement infrastructure for the NOCSTAR simulator.
//!
//! Every experiment in the paper is a reduction over event streams the
//! simulator produces; this crate holds the reducers:
//!
//! * [`counter`] — monotonically increasing event counters and hit/miss pairs.
//! * [`histogram`] — bucketed distributions, including the paper's
//!   concurrent-access bins (1, 2–4, 5–8, …, 29+) used by Figs 5 and 6.
//! * [`concurrency`] — the outstanding-access tracker that feeds those bins.
//! * [`latency`] — min/mean/max latency recorders for messages and lookups.
//! * [`metrics`] — the named-metric registry (counters, gauges, log2
//!   histograms) behind `SimReport` observability snapshots.
//! * [`tracing`] — the opt-in bounded ring buffer for cycle-level event
//!   traces.
//! * [`interval`] — Student-t confidence intervals over per-window
//!   samples from sampled replay (`SAMPLING.md`).
//! * [`summary`] — min/avg/max and geometric-mean reductions over run results.
//! * [`table`] — plain-text table rendering used by the bench harness to
//!   print each figure's rows.
//!
//! # Examples
//!
//! ```
//! use nocstar_stats::counter::HitMiss;
//!
//! let mut l2 = HitMiss::default();
//! l2.record(true);
//! l2.record(false);
//! l2.record(true);
//! assert_eq!(l2.hit_rate(), 2.0 / 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod counter;
pub mod histogram;
pub mod interval;
pub mod latency;
pub mod metrics;
pub mod summary;
pub mod table;
pub mod tracing;

pub use concurrency::OutstandingTracker;
pub use counter::{Counter, HitMiss};
pub use histogram::{ConcurrencyBins, Histogram};
pub use interval::Interval;
pub use latency::LatencyRecorder;
pub use metrics::{Log2Histogram, MetricsRegistry, MetricsSnapshot};
pub use summary::Summary;
pub use table::Table;
pub use tracing::{TraceRecord, TraceSink};
