//! Event counters.

use std::fmt;
use std::ops::AddAssign;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nocstar_stats::counter::Counter;
/// let mut walks = Counter::default();
/// walks.incr();
/// walks.add(4);
/// assert_eq!(walks.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This count as a fraction of `total` (0.0 if `total` is zero).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }

    /// Merges another counter into this one (used when reducing per-core
    /// stats into chip-wide totals).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, n: u64) {
        self.add(n);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A paired hit/miss counter for cache-like structures.
///
/// # Examples
///
/// ```
/// use nocstar_stats::counter::HitMiss;
/// let mut tlb = HitMiss::default();
/// for hit in [true, true, false, true] {
///     tlb.record(hit);
/// }
/// assert_eq!(tlb.accesses(), 4);
/// assert_eq!(tlb.misses(), 1);
/// assert!((tlb.miss_rate() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    hits: Counter,
    misses: Counter,
}

impl HitMiss {
    /// A hit/miss pair starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
    }

    /// Records a hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits.incr();
    }

    /// Records a miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses.incr();
    }

    /// Total hits so far.
    pub fn hits(self) -> u64 {
        self.hits.get()
    }

    /// Total misses so far.
    pub fn misses(self) -> u64 {
        self.misses.get()
    }

    /// Total accesses (hits + misses).
    pub fn accesses(self) -> u64 {
        self.hits() + self.misses()
    }

    /// Hits / accesses, or 0.0 with no accesses.
    pub fn hit_rate(self) -> f64 {
        self.hits.fraction_of(self.accesses())
    }

    /// Misses / accesses, or 0.0 with no accesses.
    pub fn miss_rate(self) -> f64 {
        self.misses.fraction_of(self.accesses())
    }

    /// Merges another pair into this one.
    pub fn merge(&mut self, other: HitMiss) {
        self.hits.merge(other.hits);
        self.misses.merge(other.misses);
    }
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.2}% miss)",
            self.hits(),
            self.misses(),
            self.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c += 9;
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn fraction_of_zero_total_is_zero() {
        assert_eq!(Counter::new().fraction_of(0), 0.0);
        let mut c = Counter::new();
        c.add(3);
        assert_eq!(c.fraction_of(0), 0.0);
        assert_eq!(c.fraction_of(6), 0.5);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Counter::new();
        a.add(2);
        let mut b = Counter::new();
        b.add(5);
        a.merge(b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn hit_miss_rates_are_complementary() {
        let mut hm = HitMiss::new();
        for i in 0..100 {
            hm.record(i % 4 != 0);
        }
        assert_eq!(hm.accesses(), 100);
        assert!((hm.hit_rate() + hm.miss_rate() - 1.0).abs() < 1e-12);
        assert_eq!(hm.misses(), 25);
    }

    #[test]
    fn empty_hit_miss_has_zero_rates() {
        let hm = HitMiss::new();
        assert_eq!(hm.hit_rate(), 0.0);
        assert_eq!(hm.miss_rate(), 0.0);
    }

    #[test]
    fn hit_miss_merge() {
        let mut a = HitMiss::new();
        a.hit();
        a.miss();
        let mut b = HitMiss::new();
        b.hit();
        a.merge(b);
        assert_eq!(a.hits(), 2);
        assert_eq!(a.misses(), 1);
    }

    #[test]
    fn display_mentions_miss_percentage() {
        let mut hm = HitMiss::new();
        hm.hit();
        hm.miss();
        assert!(hm.to_string().contains("50.00% miss"));
    }
}
