//! Latency recorders for messages, lookups and walks.

use nocstar_types::time::Cycles;
use std::fmt;

/// Accumulates a stream of latencies and reports count / min / mean / max.
///
/// # Examples
///
/// ```
/// use nocstar_stats::latency::LatencyRecorder;
/// use nocstar_types::time::Cycles;
///
/// let mut net = LatencyRecorder::default();
/// net.record(Cycles::new(2));
/// net.record(Cycles::new(4));
/// assert_eq!(net.mean(), 3.0);
/// assert_eq!(net.max(), Cycles::new(4));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycles) {
        let v = latency.value();
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> Cycles {
        Cycles::new(self.sum)
    }

    /// Mean latency (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample ([`Cycles::ZERO`] when empty).
    pub fn min(&self) -> Cycles {
        Cycles::new(if self.count == 0 { 0 } else { self.min })
    }

    /// Largest sample ([`Cycles::ZERO`] when empty).
    pub fn max(&self) -> Cycles {
        Cycles::new(self.max)
    }

    /// Merges samples from another recorder.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for LatencyRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.2} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tracks_min_mean_max() {
        let mut r = LatencyRecorder::new();
        for v in [5u64, 1, 9] {
            r.record(Cycles::new(v));
        }
        assert_eq!(r.min(), Cycles::new(1));
        assert_eq!(r.max(), Cycles::new(9));
        assert_eq!(r.mean(), 5.0);
        assert_eq!(r.count(), 3);
        assert_eq!(r.total(), Cycles::new(15));
    }

    #[test]
    fn empty_recorder_reports_zeros() {
        let r = LatencyRecorder::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), Cycles::ZERO);
        assert_eq!(r.max(), Cycles::ZERO);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = LatencyRecorder::new();
        r.record(Cycles::new(3));
        let before = r;
        r.merge(&LatencyRecorder::new());
        assert_eq!(r, before);

        let mut empty = LatencyRecorder::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_is_informative() {
        let mut r = LatencyRecorder::new();
        r.record(Cycles::new(2));
        assert!(r.to_string().contains("n=1"));
    }

    proptest! {
        #[test]
        fn prop_merge_equals_recording_everything(
            xs in prop::collection::vec(0u64..1000, 0..50),
            ys in prop::collection::vec(0u64..1000, 0..50),
        ) {
            let mut a = LatencyRecorder::new();
            let mut b = LatencyRecorder::new();
            let mut all = LatencyRecorder::new();
            for x in &xs { a.record(Cycles::new(*x)); all.record(Cycles::new(*x)); }
            for y in &ys { b.record(Cycles::new(*y)); all.record(Cycles::new(*y)); }
            a.merge(&b);
            prop_assert_eq!(a, all);
        }

        #[test]
        fn prop_mean_between_min_and_max(xs in prop::collection::vec(0u64..1000, 1..50)) {
            let mut r = LatencyRecorder::new();
            for x in &xs { r.record(Cycles::new(*x)); }
            prop_assert!(r.mean() >= r.min().value() as f64);
            prop_assert!(r.mean() <= r.max().value() as f64);
        }
    }
}
