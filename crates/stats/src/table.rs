//! Plain-text result tables for the bench harness.
//!
//! Each figure/table binary assembles a [`Table`] whose rows mirror the
//! series the paper plots, then prints it (and optionally CSV for plotting).

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use nocstar_stats::table::Table;
/// let mut t = Table::new(["workload", "speedup"]);
/// t.row(["gups", "1.25"]);
/// let text = t.to_string();
/// assert!(text.contains("workload"));
/// assert!(text.contains("1.25"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of a label followed by formatted numbers.
    pub fn row_values<S: Into<String>>(&mut self, label: S, values: &[f64]) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.into());
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as comma-separated values (one header line + one line per
    /// row); cells containing commas are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "2"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 4);
        // "value" column starts at the same offset in every row.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    fn row_values_formats_numbers() {
        let mut t = Table::new(["w", "a", "b"]);
        t.row_values("gups", &[1.0, 2.5]);
        assert_eq!(t.rows()[0], vec!["gups", "1.000", "2.500"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
