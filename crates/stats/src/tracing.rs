//! Opt-in cycle-level event tracing into a bounded ring buffer.
//!
//! Components emit compact numeric records ([`TraceRecord`]: cycle,
//! component id, event kind, two payload words); the simulation layer owns
//! the mapping from ids to human-readable labels, so the hot path never
//! touches strings. The sink is a fixed-capacity ring: once full, the
//! oldest records are overwritten and counted in
//! [`TraceSink::dropped`], keeping memory bounded on arbitrarily long
//! runs. A disabled sink allocates nothing and rejects records with a
//! single branch.

/// One traced event. All fields are plain integers so records are `Copy`
/// and the ring never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated cycle the event happened at.
    pub cycle: u64,
    /// Which component emitted it (the simulation layer defines the id
    /// space, e.g. core index or `1000 + slice index`).
    pub component: u32,
    /// What happened (simulation-defined event-kind id).
    pub kind: u16,
    /// First event payload word (e.g. a virtual page number).
    pub a: u64,
    /// Second event payload word (e.g. a latency or target id).
    pub b: u64,
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use nocstar_stats::tracing::{TraceRecord, TraceSink};
/// let mut sink = TraceSink::bounded(2);
/// for cycle in 0..3 {
///     sink.emit(TraceRecord { cycle, component: 0, kind: 0, a: 0, b: 0 });
/// }
/// // Capacity 2: the oldest record was dropped.
/// let cycles: Vec<u64> = sink.records().map(|r| r.cycle).collect();
/// assert_eq!(cycles, [1, 2]);
/// assert_eq!(sink.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    buf: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// A sink that records nothing (the default). Allocates nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sink holding at most `capacity` records; older records are
    /// overwritten once full.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a record, overwriting the oldest once at capacity.
    #[inline]
    pub fn emit(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Discards all retained records and the drop count. Used at the
    /// warmup/measurement boundary.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(cycle: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            component: 1,
            kind: 2,
            a: cycle * 10,
            b: 0,
        }
    }

    #[test]
    fn disabled_sink_rejects_everything() {
        let mut sink = TraceSink::disabled();
        sink.emit(rec(1));
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn records_come_back_in_order_before_wrap() {
        let mut sink = TraceSink::bounded(10);
        for c in 0..5 {
            sink.emit(rec(c));
        }
        let cycles: Vec<u64> = sink.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, [0, 1, 2, 3, 4]);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut sink = TraceSink::bounded(2);
        for c in 0..5 {
            sink.emit(rec(c));
        }
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        sink.emit(rec(9));
        assert_eq!(sink.records().next().unwrap().cycle, 9);
    }

    proptest! {
        /// The ring always keeps the most recent min(n, capacity) records,
        /// in emission order, and counts the rest as dropped.
        #[test]
        fn prop_ring_keeps_newest_in_order(n in 0usize..100, capacity in 1usize..20) {
            let mut sink = TraceSink::bounded(capacity);
            for c in 0..n as u64 {
                sink.emit(rec(c));
            }
            let kept: Vec<u64> = sink.records().map(|r| r.cycle).collect();
            let expect_start = n.saturating_sub(capacity) as u64;
            let expected: Vec<u64> = (expect_start..n as u64).collect();
            prop_assert_eq!(kept, expected);
            prop_assert_eq!(sink.dropped(), expect_start);
            prop_assert!(sink.len() <= sink.capacity());
        }
    }
}
