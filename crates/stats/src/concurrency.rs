//! Tracking how many shared-L2-TLB accesses are in flight at once.
//!
//! The paper's key enabling observation (§II-E) is that concurrent shared
//! L2 TLB accesses are rare: >40 % of accesses occur in isolation, ~80 %
//! with at most 4 in flight. [`OutstandingTracker`] reproduces that
//! measurement: every access start samples the number of accesses currently
//! outstanding (including the new one) into [`ConcurrencyBins`].

use crate::histogram::ConcurrencyBins;

/// Tracks the number of outstanding accesses to one structure (the whole
/// shared TLB, or a single slice) and bins each access start by how many
/// accesses it overlapped.
///
/// # Examples
///
/// ```
/// use nocstar_stats::concurrency::OutstandingTracker;
///
/// let mut t = OutstandingTracker::new();
/// t.begin(); // runs alone -> "1 acc"
/// t.begin(); // overlaps the first -> "2-4 acc"
/// t.end();
/// t.end();
/// let f = t.bins().fractions();
/// assert!((f[0] - 0.5).abs() < 1e-12);
/// assert!((f[1] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OutstandingTracker {
    outstanding: u64,
    peak: u64,
    bins: ConcurrencyBins,
}

impl OutstandingTracker {
    /// A tracker with no accesses in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks an access as starting now; records its concurrency sample.
    pub fn begin(&mut self) {
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
        self.bins.record(self.outstanding);
    }

    /// Marks an access as complete.
    ///
    /// # Panics
    ///
    /// Panics if no access is outstanding — that is always a simulator bug.
    pub fn end(&mut self) {
        assert!(
            self.outstanding > 0,
            "end() without a matching begin(): outstanding underflow"
        );
        self.outstanding -= 1;
    }

    /// Number of accesses currently in flight.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Highest number of simultaneous accesses observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The per-access concurrency distribution, in the paper's bins.
    pub fn bins(&self) -> &ConcurrencyBins {
        &self.bins
    }

    /// True when every started access has completed.
    pub fn is_quiescent(&self) -> bool {
        self.outstanding == 0
    }

    /// Clears the recorded distribution (e.g. after warmup) while keeping
    /// the live outstanding count, so in-flight accesses stay balanced.
    pub fn reset_bins(&mut self) {
        self.bins = ConcurrencyBins::new();
        self.peak = self.outstanding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn isolated_accesses_land_in_first_bin() {
        let mut t = OutstandingTracker::new();
        for _ in 0..5 {
            t.begin();
            t.end();
        }
        assert_eq!(t.bins().isolated_fraction(), 1.0);
        assert!(t.is_quiescent());
        assert_eq!(t.peak(), 1);
    }

    #[test]
    fn nested_accesses_raise_concurrency() {
        let mut t = OutstandingTracker::new();
        t.begin();
        t.begin();
        t.begin();
        assert_eq!(t.outstanding(), 3);
        t.end();
        t.end();
        t.end();
        assert_eq!(t.peak(), 3);
        let f = t.bins().fractions();
        // samples were 1, 2, 3 -> one in "1 acc", two in "2-4 acc"
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((f[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn end_without_begin_panics() {
        OutstandingTracker::new().end();
    }

    proptest! {
        /// Any begin/end sequence that never underflows leaves the tracker
        /// consistent: samples == begins, peak <= begins.
        #[test]
        fn prop_tracker_is_consistent(ops in prop::collection::vec(any::<bool>(), 0..200)) {
            let mut t = OutstandingTracker::new();
            let mut begins = 0u64;
            let mut depth = 0i64;
            for op in ops {
                if op {
                    t.begin();
                    begins += 1;
                    depth += 1;
                } else if depth > 0 {
                    t.end();
                    depth -= 1;
                }
            }
            prop_assert_eq!(t.bins().total(), begins);
            prop_assert!(t.peak() <= begins);
            prop_assert_eq!(t.outstanding(), depth as u64);
        }
    }
}
