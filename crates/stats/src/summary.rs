//! Reductions over per-workload results: min / avg / max and geomean.
//!
//! The paper reports speedups as workload averages with min/max whiskers
//! (Fig 14, Table III); [`Summary`] is that reduction.

use std::fmt;

/// Min / arithmetic-mean / max / geometric-mean summary of an `f64` series.
///
/// # Examples
///
/// ```
/// use nocstar_stats::summary::Summary;
/// let s = Summary::of([1.0, 2.0, 4.0]);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!((s.mean() - 7.0 / 3.0).abs() < 1e-12);
/// assert!((s.geomean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    min: f64,
    max: f64,
    mean: f64,
    geomean: f64,
}

impl Summary {
    /// Reduces a series. Returns an all-zero summary for an empty series.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite or negative — speedups, rates and
    /// fractions are always finite and non-negative; anything else is a
    /// simulator bug worth failing loudly on.
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut log_sum = 0.0;
        let mut any_zero = false;
        for v in values {
            assert!(
                v.is_finite() && v >= 0.0,
                "summary values must be finite and non-negative, got {v}"
            );
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            if v == 0.0 {
                any_zero = true;
            } else {
                log_sum += v.ln();
            }
        }
        if count == 0 {
            return Self {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                geomean: 0.0,
            };
        }
        Self {
            count,
            min,
            max,
            mean: sum / count as f64,
            geomean: if any_zero {
                0.0
            } else {
                (log_sum / count as f64).exp()
            },
        }
    }

    /// Number of values reduced.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Smallest value (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Geometric mean (0.0 when empty or when any value is zero).
    pub fn geomean(&self) -> f64 {
        self.geomean
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.3} / avg {:.3} / max {:.3} (n={})",
            self.min, self.mean, self.max, self.count
        )
    }
}

/// Speedup of a configuration versus a baseline, given cycle counts for the
/// same amount of work: `baseline_cycles / config_cycles`.
///
/// # Panics
///
/// Panics if `config_cycles` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_stats::summary::speedup;
/// assert_eq!(speedup(1200, 1000), 1.2);
/// ```
pub fn speedup(baseline_cycles: u64, config_cycles: u64) -> f64 {
    assert!(config_cycles > 0, "config ran for zero cycles");
    baseline_cycles as f64 / config_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of([]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.geomean(), 0.0);
    }

    #[test]
    fn single_value_summary_is_that_value() {
        let s = Summary::of([1.5]);
        assert_eq!(s.min(), 1.5);
        assert_eq!(s.max(), 1.5);
        assert_eq!(s.mean(), 1.5);
        assert!((s.geomean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_with_zero_value_is_zero() {
        let s = Summary::of([0.0, 2.0]);
        assert_eq!(s.geomean(), 0.0);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_values_rejected() {
        let _ = Summary::of([f64::NAN]);
    }

    #[test]
    fn speedup_is_baseline_over_config() {
        assert!(speedup(1000, 800) > 1.0);
        assert!(speedup(800, 1000) < 1.0);
        assert_eq!(speedup(500, 500), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn speedup_rejects_zero_config() {
        let _ = speedup(10, 0);
    }

    #[test]
    fn display_has_all_three_statistics() {
        let s = Summary::of([1.0, 3.0]).to_string();
        assert!(s.contains("min 1.000"));
        assert!(s.contains("avg 2.000"));
        assert!(s.contains("max 3.000"));
    }

    proptest! {
        #[test]
        fn prop_geomean_le_mean(xs in prop::collection::vec(0.01f64..100.0, 1..40)) {
            // AM-GM inequality.
            let s = Summary::of(xs.iter().copied());
            prop_assert!(s.geomean() <= s.mean() + 1e-9);
            prop_assert!(s.min() <= s.geomean() + 1e-9);
            prop_assert!(s.geomean() <= s.max() + 1e-9);
        }
    }
}
