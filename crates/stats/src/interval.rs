//! Interval estimation for sampled replay (normative spec: `SAMPLING.md`
//! at the repository root, §3 and §5).
//!
//! Sampled simulation measures a handful of cycle-accurate windows and
//! reports each per-window rate as a mean with a Student-t 95 %
//! confidence interval. Window counts are small (typically 4–30), so the
//! normal quantile 1.96 would understate the interval badly; [`t975`]
//! carries the exact two-sided 97.5 % quantiles for 1–30 degrees of
//! freedom and falls back to 1.96 beyond.

/// Two-sided Student-t 97.5 % quantiles, `T975[df - 1]` for df 1..=30.
/// Beyond 30 degrees of freedom the normal quantile 1.96 is used.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 97.5 % Student-t quantile for `df` degrees of freedom
/// (so `mean ± t975(df) · stderr` is a 95 % confidence interval).
///
/// # Panics
///
/// Panics if `df` is zero — a variance estimate needs at least two
/// samples.
///
/// # Examples
///
/// ```
/// use nocstar_stats::interval::t975;
/// assert_eq!(t975(5), 2.571);
/// assert_eq!(t975(1000), 1.96);
/// ```
pub fn t975(df: usize) -> f64 {
    assert!(df > 0, "t quantile needs at least one degree of freedom");
    if df <= T975.len() {
        T975[df - 1]
    } else {
        1.96
    }
}

/// A mean with its standard error and 95 % confidence interval, estimated
/// from independent samples (`SAMPLING.md §3`).
///
/// # Examples
///
/// ```
/// use nocstar_stats::interval::Interval;
/// // The SAMPLING.md §5 worked example.
/// let est = Interval::of(&[10.0, 12.0, 11.0, 13.0, 12.0, 14.0]);
/// assert!((est.mean() - 12.0).abs() < 1e-12);
/// assert!((est.stderr() - 0.577350).abs() < 5e-7);
/// assert!((est.lo() - 10.515632).abs() < 5e-7);
/// assert!((est.hi() - 13.484368).abs() < 5e-7);
/// assert!(est.covers(13.0) && !est.covers(14.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    n: usize,
    mean: f64,
    stderr: f64,
    half: f64,
}

impl Interval {
    /// Estimates mean, standard error and 95 % CI from `samples`.
    ///
    /// With a single sample the estimate is *degenerate*
    /// ([`is_degenerate`](Self::is_degenerate)): no variance estimate
    /// exists, so `stderr` and the half-width are reported as zero and
    /// the interval collapses to `[mean, mean]` — it must not be read
    /// as certainty. Zero-variance sample sets also collapse to
    /// `[mean, mean]`, which *is* meaningful (every window agreed).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any sample is non-finite.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "interval estimation needs samples");
        let n = samples.len();
        for &x in samples {
            assert!(x.is_finite(), "interval samples must be finite, got {x}");
        }
        // nocstar-lint: allow(float-accumulation): offline estimator over a fixed, ordered window-sample slice; SAMPLING.md's worked example pins the result
        let sum: f64 = samples.iter().sum();
        let mean = sum / n as f64;
        if n == 1 {
            return Self {
                n,
                mean,
                stderr: 0.0,
                half: 0.0,
            };
        }
        // nocstar-lint: allow(float-accumulation): same fixed-order offline reduction as above
        let sq: f64 = samples.iter().map(|&x| (x - mean) * (x - mean)).sum();
        let variance = sq / (n - 1) as f64;
        let stderr = (variance / n as f64).sqrt();
        Self {
            n,
            mean,
            stderr,
            half: t975(n - 1) * stderr,
        }
    }

    /// Number of samples the estimate reduces.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard error of the mean, `s / √n` (zero when degenerate).
    pub fn stderr(&self) -> f64 {
        self.stderr
    }

    /// Half the 95 % CI width, `t(0.975, n−1) · stderr`.
    pub fn half_width(&self) -> f64 {
        self.half
    }

    /// Lower bound of the 95 % confidence interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half
    }

    /// Upper bound of the 95 % confidence interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half
    }

    /// Whether the interval carries no uncertainty information (a single
    /// sample — see [`of`](Self::of)).
    pub fn is_degenerate(&self) -> bool {
        self.n < 2
    }

    /// Whether `value` lies inside the 95 % confidence interval
    /// (inclusive).
    pub fn covers(&self, value: f64) -> bool {
        self.lo() <= value && value <= self.hi()
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} [{:.6}, {:.6}] (n={})",
            self.mean,
            self.half,
            self.lo(),
            self.hi(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn worked_example_from_sampling_md() {
        // SAMPLING.md §5: the normative worked example. tests/sampled.rs
        // additionally parses the document itself; this pins the
        // estimator against the agreed numbers directly.
        let est = Interval::of(&[10.0, 12.0, 11.0, 13.0, 12.0, 14.0]);
        assert_eq!(est.n(), 6);
        assert!((est.mean() - 12.0).abs() < 1e-12);
        assert!((est.stderr() - 0.577350).abs() < 5e-7);
        assert!((est.half_width() - 1.484368).abs() < 5e-7);
        assert!((est.lo() - 10.515632).abs() < 5e-7);
        assert!((est.hi() - 13.484368).abs() < 5e-7);
        assert!(!est.is_degenerate());
    }

    #[test]
    fn one_sample_is_degenerate() {
        let est = Interval::of(&[7.5]);
        assert!(est.is_degenerate());
        assert_eq!(est.mean(), 7.5);
        assert_eq!(est.stderr(), 0.0);
        assert_eq!(est.lo(), 7.5);
        assert_eq!(est.hi(), 7.5);
        assert!(est.covers(7.5));
        assert!(!est.covers(7.6));
    }

    #[test]
    fn zero_variance_collapses_to_the_mean() {
        let est = Interval::of(&[3.0; 12]);
        assert!(!est.is_degenerate());
        assert_eq!(est.stderr(), 0.0);
        assert_eq!(est.lo(), 3.0);
        assert_eq!(est.hi(), 3.0);
    }

    #[test]
    fn t_table_matches_known_quantiles() {
        assert_eq!(t975(1), 12.706);
        assert_eq!(t975(4), 2.776);
        assert_eq!(t975(30), 2.042);
        assert_eq!(t975(31), 1.96);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_samples_rejected() {
        let _ = Interval::of(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_rejected() {
        let _ = Interval::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_quantile_rejects_zero_df() {
        let _ = t975(0);
    }

    /// A tiny deterministic generator for the coverage test: splitmix64
    /// into a uniform f64 in [0, 1), summed 12 times and centred for an
    /// approximately normal draw (Irwin–Hall).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn approx_normal(state: &mut u64, mean: f64, sd: f64) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            // nocstar-lint: allow(float-accumulation): fixed 12-term test-only sum
            s += (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        }
        mean + sd * (s - 6.0)
    }

    #[test]
    fn ci_covers_the_true_mean_about_95_percent_of_the_time() {
        // 400 independent experiments of 8 samples each from a known
        // distribution: the t-interval must cover the true mean at
        // roughly the nominal rate. Bounds are loose (Irwin–Hall tails
        // are light) but catch a mis-sized interval immediately: using
        // 1.96 instead of t(0.975,7)=2.365 drops coverage below 0.93.
        let mut state = 0x5eed_cafe_f00d_0001u64;
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let samples: Vec<f64> = (0..8)
                .map(|_| approx_normal(&mut state, 50.0, 9.0))
                .collect();
            if Interval::of(&samples).covers(50.0) {
                covered += 1;
            }
        }
        let rate = f64::from(covered) / f64::from(trials);
        assert!((0.90..=1.0).contains(&rate), "coverage rate {rate}");
    }

    proptest! {
        #[test]
        fn prop_interval_brackets_the_mean(xs in prop::collection::vec(-1e6f64..1e6, 1..40)) {
            let est = Interval::of(&xs);
            prop_assert!(est.lo() <= est.mean() + 1e-9);
            prop_assert!(est.mean() <= est.hi() + 1e-9);
            prop_assert!(est.covers(est.mean()));
            prop_assert!(est.stderr() >= 0.0);
            prop_assert!(est.half_width() >= est.stderr() * 1.95);
        }

        #[test]
        fn prop_shift_invariance(xs in prop::collection::vec(0.0f64..1e3, 2..20), shift in -1e3f64..1e3) {
            // Shifting every sample shifts the interval, not its width.
            let base = Interval::of(&xs);
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let est = Interval::of(&shifted);
            prop_assert!((est.mean() - (base.mean() + shift)).abs() < 1e-6);
            prop_assert!((est.half_width() - base.half_width()).abs() < 1e-6);
        }

        #[test]
        fn prop_more_samples_never_widen_stderr_on_constant_data(n in 2usize..60) {
            let xs = vec![5.0; n];
            let est = Interval::of(&xs);
            prop_assert_eq!(est.stderr(), 0.0);
            prop_assert_eq!(est.lo(), 5.0);
            prop_assert_eq!(est.hi(), 5.0);
        }
    }
}
