//! Bucketed distributions, including the paper's concurrency bins.

use std::fmt;

/// A histogram over `u64` samples with caller-chosen bucket upper bounds.
///
/// Bucket `i` holds samples `v` with `v <= bounds[i]` (and greater than
/// `bounds[i-1]`); samples above the last bound land in a final overflow
/// bucket.
///
/// # Examples
///
/// ```
/// use nocstar_stats::histogram::Histogram;
/// let mut h = Histogram::new(&[1, 4, 8]);
/// for v in [0, 1, 2, 5, 9, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.counts(), &[2, 1, 1, 2]); // <=1, 2..=4, 5..=8, >8
/// assert_eq!(h.total(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Builds a histogram with the given strictly increasing bucket upper
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Per-bucket counts; the last element is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bucket fraction of all samples (all zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        self.counts
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect()
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another histogram with identical bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Human-readable bucket labels, e.g. `<=1`, `2-4`, `>8`.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut lo = 0u64;
        for &b in &self.bounds {
            if lo == b {
                labels.push(format!("{b}"));
            } else {
                labels.push(format!("{lo}-{b}"));
            }
            lo = b + 1;
        }
        // nocstar-lint: allow(sim-unwrap): bounds is non-empty, asserted in the constructor
        labels.push(format!(">{}", self.bounds.last().unwrap()));
        labels
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels = self.labels();
        let fracs = self.fractions();
        for (i, (label, frac)) in labels.iter().zip(fracs).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{label}: {:.1}%", frac * 100.0)?;
        }
        Ok(())
    }
}

/// The paper's concurrent-access bins for Figs 5 and 6: 1, 2–4, 5–8, 9–12,
/// 13–16, 17–20, 21–24, 25–28, and 29+ *concurrent* accesses.
///
/// Samples are "number of accesses in flight including this one", so the
/// minimum meaningful sample is 1 (the access occurred in isolation).
///
/// # Examples
///
/// ```
/// use nocstar_stats::histogram::ConcurrencyBins;
/// let mut bins = ConcurrencyBins::new();
/// bins.record(1); // isolated access
/// bins.record(3); // 2 others outstanding
/// bins.record(40);
/// let f = bins.fractions();
/// assert!((f[0] - 1.0 / 3.0).abs() < 1e-12); // "1 acc"
/// assert!((f[8] - 1.0 / 3.0).abs() < 1e-12); // "29+ acc"
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrencyBins {
    histogram: Histogram,
}

impl ConcurrencyBins {
    /// The paper's bin upper bounds.
    pub const BOUNDS: [u64; 8] = [1, 4, 8, 12, 16, 20, 24, 28];

    /// The paper's bin labels, lowest first.
    pub const LABELS: [&'static str; 9] = [
        "1 acc",
        "2-4 acc",
        "5-8 acc",
        "9-12 acc",
        "13-16 acc",
        "17-20 acc",
        "21-24 acc",
        "25-28 acc",
        "29+ acc",
    ];

    /// Empty bins.
    pub fn new() -> Self {
        Self {
            histogram: Histogram::new(&Self::BOUNDS),
        }
    }

    /// Records one shared-L2-TLB access that saw `concurrent` total accesses
    /// in flight (including itself).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `concurrent` is zero — the access itself is
    /// always in flight.
    pub fn record(&mut self, concurrent: u64) {
        debug_assert!(concurrent >= 1, "an access is concurrent with itself");
        self.histogram.record(concurrent);
    }

    /// Fraction of accesses in each of the nine bins, lowest bin first.
    pub fn fractions(&self) -> Vec<f64> {
        self.histogram.fractions()
    }

    /// Fraction of accesses that occurred in isolation (the `1 acc` bin).
    pub fn isolated_fraction(&self) -> f64 {
        self.fractions()[0]
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.histogram.total()
    }

    /// Merges bins from another tracker (e.g. per-slice into chip-wide).
    pub fn merge(&mut self, other: &ConcurrencyBins) {
        self.histogram.merge(&other.histogram);
    }
}

impl Default for ConcurrencyBins {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for ConcurrencyBins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fracs = self.fractions();
        for (i, (label, frac)) in Self::LABELS.iter().zip(fracs).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{label}: {:.1}%", frac * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_partition_the_value_space() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(10);
        h.record(11);
        h.record(20);
        h.record(21);
        assert_eq!(h.counts(), &[1, 2, 1]);
    }

    #[test]
    fn mean_and_max_track_samples() {
        let mut h = Histogram::new(&[100]);
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.max(), 6);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new(&[1]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
    }

    #[test]
    fn labels_cover_all_buckets() {
        let h = Histogram::new(&[1, 4]);
        assert_eq!(h.labels(), vec!["0-1", "2-4", ">4"]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(&[5]);
        a.record(1);
        let mut b = Histogram::new(&[5]);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.max(), 9);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[5]);
        let b = Histogram::new(&[6]);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn non_increasing_bounds_rejected() {
        let _ = Histogram::new(&[3, 3]);
    }

    #[test]
    fn concurrency_bins_match_paper_layout() {
        assert_eq!(
            ConcurrencyBins::LABELS.len(),
            ConcurrencyBins::BOUNDS.len() + 1
        );
        let mut bins = ConcurrencyBins::new();
        for c in 1..=32 {
            bins.record(c);
        }
        let f = bins.fractions();
        // one sample lands in "1 acc", three in "2-4", four in each middle
        // bin, four in "29+" (29..=32).
        assert!((f[0] - 1.0 / 32.0).abs() < 1e-12);
        assert!((f[1] - 3.0 / 32.0).abs() < 1e-12);
        assert!((f[8] - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_fraction_counts_only_singletons() {
        let mut bins = ConcurrencyBins::new();
        bins.record(1);
        bins.record(1);
        bins.record(2);
        assert!((bins.isolated_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_fractions_sum_to_one_when_nonempty(samples in prop::collection::vec(0u64..200, 1..100)) {
            let mut h = Histogram::new(&[1, 4, 8, 12, 16]);
            for s in &samples {
                h.record(*s);
            }
            let sum: f64 = h.fractions().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert_eq!(h.total(), samples.len() as u64);
        }

        #[test]
        fn prop_merge_is_commutative_on_counts(
            xs in prop::collection::vec(0u64..64, 0..50),
            ys in prop::collection::vec(0u64..64, 0..50),
        ) {
            let bounds = [1u64, 4, 8, 12];
            let mut ab = Histogram::new(&bounds);
            let mut ba = Histogram::new(&bounds);
            let (mut a, mut b) = (Histogram::new(&bounds), Histogram::new(&bounds));
            for x in &xs { a.record(*x); }
            for y in &ys { b.record(*y); }
            ab.merge(&a); ab.merge(&b);
            ba.merge(&b); ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
