//! The Fig 9 tile power/area table.
//!
//! The paper place-and-routes one NOCSTAR tile (TLB SRAM slice, latchless
//! switch, four link arbiters) in TSMC 28 nm at a 0.5 ns clock and reports
//! per-component power and area. Those numbers are constants here; the
//! headline claim they support — interconnect area under 1 % of the tile's
//! TLB SRAM — is checked in tests and printed by the Fig 9 bench binary.

/// Power and area of one tile component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentCost {
    /// Component name as printed in Fig 9.
    pub name: &'static str,
    /// Per-core power in milliwatts.
    pub power_mw: f64,
    /// Area in square millimetres.
    pub area_mm2: f64,
}

/// The per-tile cost table of Fig 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCosts {
    /// The latchless mux switch.
    pub switch: ComponentCost,
    /// The four link arbiters adjacent to the switch.
    pub arbiters: ComponentCost,
    /// The 28 nm SRAM TLB slice.
    pub sram_tlb: ComponentCost,
}

impl TileCosts {
    /// The paper's post-synthesis numbers (Fig 9, 28 nm TSMC, 0.5 ns clock).
    pub fn paper() -> Self {
        Self {
            switch: ComponentCost {
                name: "Switch",
                power_mw: 0.43,
                area_mm2: 0.0022,
            },
            arbiters: ComponentCost {
                name: "4x Arbiters",
                power_mw: 2.39,
                area_mm2: 0.0038,
            },
            sram_tlb: ComponentCost {
                name: "SRAM TLB",
                power_mw: 10.91,
                area_mm2: 0.4646,
            },
        }
    }

    /// Interconnect (switch + arbiters) area as a fraction of the tile's
    /// TLB SRAM area. The paper reports "less than 1%"; note that is the
    /// *switch* alone — switch + arbiters land near 1.3%.
    pub fn interconnect_area_fraction(&self) -> f64 {
        (self.switch.area_mm2 + self.arbiters.area_mm2) / self.sram_tlb.area_mm2
    }

    /// Total per-tile power added by NOCSTAR's interconnect, in mW.
    pub fn interconnect_power_mw(&self) -> f64 {
        self.switch.power_mw + self.arbiters.power_mw
    }

    /// Static power of the whole tile's translation machinery, in mW
    /// (used to integrate static energy over runtime).
    pub fn tile_power_mw(&self) -> f64 {
        self.interconnect_power_mw() + self.sram_tlb.power_mw
    }

    /// The three rows in Fig 9 order.
    pub fn rows(&self) -> [ComponentCost; 3] {
        [self.switch, self.arbiters, self.sram_tlb]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_area_is_under_one_percent_of_sram() {
        let t = TileCosts::paper();
        assert!(t.switch.area_mm2 / t.sram_tlb.area_mm2 < 0.01);
    }

    #[test]
    fn interconnect_is_a_small_fraction_of_the_tile() {
        let t = TileCosts::paper();
        let frac = t.interconnect_area_fraction();
        assert!(frac < 0.02, "interconnect fraction {frac} too large");
    }

    #[test]
    fn arbiters_are_the_power_hungry_component() {
        // Paper: "the link arbiters ... are the most power hungry
        // component and key overhead" of the interconnect.
        let t = TileCosts::paper();
        assert!(t.arbiters.power_mw > t.switch.power_mw);
    }

    #[test]
    fn rows_are_in_figure_order() {
        let rows = TileCosts::paper().rows();
        assert_eq!(rows[0].name, "Switch");
        assert_eq!(rows[1].name, "4x Arbiters");
        assert_eq!(rows[2].name, "SRAM TLB");
    }
}
