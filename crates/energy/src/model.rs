//! Per-event dynamic-energy constants and the Fig 11(b) message breakdown.
//!
//! Constants are calibrated so the *relative* components match the paper's
//! Fig 11(b): the monolithic design's SRAM dominates; the distributed
//! design's buffered-router switches cost several times NOCSTAR's bare
//! muxes per hop; NOCSTAR's control cost grows with hop count (it
//! arbitrates every link in the path simultaneously) and slightly exceeds
//! the distributed design's, but its total stays lowest.

use nocstar_tlb::sram;

/// Energy of one hop over a repeated on-chip link, in pJ.
pub const LINK_PJ_PER_HOP: f64 = 1.5;
/// Energy of one traversal through a buffered mesh/SMART router, in pJ
/// (buffer write/read + VC/SA arbitration + crossbar).
pub const MESH_SWITCH_PJ_PER_HOP: f64 = 2.5;
/// Energy of one traversal through a NOCSTAR latchless mux switch, in pJ.
pub const CIRCUIT_SWITCH_PJ_PER_HOP: f64 = 0.3;
/// Per-message control energy of a packet-switched NoC (header route
/// computation), in pJ.
pub const MESH_CONTROL_PJ: f64 = 0.5;
/// NOCSTAR control energy per link arbitrated (request wire + arbiter +
/// grant wire), in pJ. A 14-hop path arbitrates 14 links at once, which is
/// why Fig 11(b) shows NOCSTAR's control component growing with distance.
pub const CIRCUIT_CONTROL_PJ_PER_LINK: f64 = 0.45;

/// Energy of one L1 TLB lookup, in pJ (small, highly-ported array).
pub const L1_TLB_LOOKUP_PJ: f64 = 2.0;
/// Energy of a paging-structure-cache hit during a walk, in pJ.
pub const PWC_PJ: f64 = 0.5;
/// Energy of a data-cache access during a page walk, by level, in pJ.
/// Cache/DRAM reads move whole 64-byte lines (and DRAM activates a row),
/// so these sit orders of magnitude above a TLB lookup — the relation the
/// paper's energy argument rests on (Karakostas et al., HPCA 2016).
pub const L1_CACHE_PJ: f64 = 30.0;
/// L2 cache access energy in pJ.
pub const L2_CACHE_PJ: f64 = 100.0;
/// Shared LLC access energy in pJ.
pub const LLC_CACHE_PJ: f64 = 500.0;
/// DRAM access energy in pJ (64B read incl. amortized row activation).
pub const DRAM_PJ: f64 = 20_000.0;

/// The chip runs at 2 GHz (paper §III-B3), so one cycle is 0.5 ns and one
/// mW of static power costs 0.5 pJ per cycle.
pub const STATIC_PJ_PER_CYCLE_PER_MW: f64 = 0.5;

/// The NoC + TLB design whose per-message energy is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocDesign {
    /// Monolithic banked shared TLB over a multi-hop mesh.
    Monolithic {
        /// Total entries of the monolithic SRAM.
        total_entries: usize,
    },
    /// Distributed slices over a multi-hop mesh.
    Distributed {
        /// Entries per slice.
        slice_entries: usize,
    },
    /// Distributed slices over the NOCSTAR circuit-switched fabric.
    Nocstar {
        /// Entries per slice.
        slice_entries: usize,
    },
}

/// The four stacked components of Fig 11(b), in pJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Link wires.
    pub link: f64,
    /// Switch datapath (router or mux).
    pub switch: f64,
    /// Control (route computation or link arbitration).
    pub control: f64,
    /// The TLB SRAM lookup at the destination.
    pub sram: f64,
}

impl EnergyBreakdown {
    /// Total message energy in pJ.
    pub fn total(&self) -> f64 {
        self.link + self.switch + self.control + self.sram
    }
}

/// The energy of one shared-L2-TLB access message travelling `hops` hops
/// (Fig 11(b): (M)onolithic, (D)istributed, (N)OCSTAR).
pub fn message_energy(design: NocDesign, hops: usize) -> EnergyBreakdown {
    let h = hops as f64;
    match design {
        NocDesign::Monolithic { total_entries } => EnergyBreakdown {
            link: LINK_PJ_PER_HOP * h,
            switch: MESH_SWITCH_PJ_PER_HOP * h,
            control: if hops == 0 { 0.0 } else { MESH_CONTROL_PJ },
            sram: sram::lookup_energy_pj(total_entries),
        },
        NocDesign::Distributed { slice_entries } => EnergyBreakdown {
            link: LINK_PJ_PER_HOP * h,
            switch: MESH_SWITCH_PJ_PER_HOP * h,
            control: if hops == 0 { 0.0 } else { MESH_CONTROL_PJ },
            sram: sram::lookup_energy_pj(slice_entries),
        },
        NocDesign::Nocstar { slice_entries } => EnergyBreakdown {
            link: LINK_PJ_PER_HOP * h,
            switch: CIRCUIT_SWITCH_PJ_PER_HOP * h,
            control: CIRCUIT_CONTROL_PJ_PER_LINK * h,
            sram: sram::lookup_energy_pj(slice_entries),
        },
    }
}

/// The hop counts Fig 11(b) sweeps.
pub const FIG11B_HOPS: [usize; 8] = [0, 1, 2, 4, 6, 8, 10, 12];

#[cfg(test)]
mod tests {
    use super::*;

    fn mono() -> NocDesign {
        NocDesign::Monolithic {
            total_entries: 32 * 1536,
        }
    }
    fn dist() -> NocDesign {
        NocDesign::Distributed {
            slice_entries: 1024,
        }
    }
    fn nocstar() -> NocDesign {
        NocDesign::Nocstar { slice_entries: 920 }
    }

    #[test]
    fn monolithic_sram_dominates() {
        let e = message_energy(mono(), 4);
        assert!(e.sram > e.link + e.switch + e.control);
        // Most of the distributed/NOCSTAR savings come from the smaller
        // SRAM (paper §III-D).
        assert!(e.sram > 5.0 * message_energy(dist(), 4).sram);
    }

    #[test]
    fn nocstar_switch_is_cheaper_than_mesh_switch() {
        let d = message_energy(dist(), 8);
        let n = message_energy(nocstar(), 8);
        assert!(n.switch < d.switch / 4.0);
    }

    #[test]
    fn nocstar_control_grows_with_hops_and_exceeds_distributed() {
        let n2 = message_energy(nocstar(), 2);
        let n14 = message_energy(nocstar(), 14);
        assert!(n14.control > n2.control);
        let d14 = message_energy(dist(), 14);
        assert!(
            n14.control > d14.control,
            "paper: slightly higher control cost"
        );
    }

    #[test]
    fn nocstar_total_is_lowest_overall() {
        for hops in FIG11B_HOPS {
            let m = message_energy(mono(), hops).total();
            let d = message_energy(dist(), hops).total();
            let n = message_energy(nocstar(), hops).total();
            assert!(n < d && d < m, "hops={hops}: n={n:.1} d={d:.1} m={m:.1}");
        }
    }

    #[test]
    fn zero_hop_message_has_no_network_energy() {
        let e = message_energy(nocstar(), 0);
        assert_eq!(e.link, 0.0);
        assert_eq!(e.switch, 0.0);
        assert_eq!(e.control, 0.0);
        assert!(e.sram > 0.0);
    }

    #[test]
    fn walk_cache_energy_dwarfs_tlb_lookup_energy() {
        // Paper [58]: energy of cache accesses for walks is orders of
        // magnitude above TLB access energy.
        let (llc, dram, tlb) = (LLC_CACHE_PJ, DRAM_PJ, L1_TLB_LOOKUP_PJ);
        assert!(llc > 10.0 * tlb);
        assert!(dram > 100.0 * tlb);
    }
}
