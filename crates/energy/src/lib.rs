//! Event-based energy and area model for the NOCSTAR simulator.
//!
//! The paper evaluates energy with McPAT plus its own 28 nm place-and-route
//! numbers (Fig 9); we reproduce that as a linear accounting model: every
//! simulated event (TLB lookup, switch/link traversal, arbitration, cache
//! or DRAM access during a page walk) contributes a fixed dynamic energy,
//! and per-tile static power integrates over runtime.
//!
//! * [`model`] — per-event dynamic-energy constants and the per-message
//!   breakdown of Fig 11(b).
//! * [`account`] — the running tally a simulation accumulates into.
//! * [`area`] — the Fig 9 tile power/area table.
//!
//! # Examples
//!
//! ```
//! use nocstar_energy::model::{message_energy, NocDesign};
//!
//! let nocstar = message_energy(NocDesign::Nocstar { slice_entries: 920 }, 8);
//! let mono = message_energy(NocDesign::Monolithic { total_entries: 32 * 1536 }, 8);
//! assert!(nocstar.total() < mono.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod area;
pub mod model;

pub use account::EnergyAccount;
pub use area::TileCosts;
pub use model::{message_energy, EnergyBreakdown, NocDesign};
