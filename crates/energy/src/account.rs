//! The running energy tally a simulation accumulates into.

use crate::area::TileCosts;
use crate::model;
use nocstar_types::time::Cycles;
use std::fmt;

/// Address-translation energy of one run, split by where it was spent.
///
/// All values in picojoules. The paper's Fig 14 (right) compares total
/// address-translation energy across TLB organizations; the dominant terms
/// are page-walk cache/DRAM accesses and static energy over runtime, which
/// is why eliminating walks (higher shared-TLB hit rate) and shortening
/// runtime (NOCSTAR's low access latency) both save energy.
///
/// # Examples
///
/// ```
/// use nocstar_energy::account::EnergyAccount;
/// use nocstar_types::Cycles;
///
/// let mut acct = EnergyAccount::default();
/// acct.add_l1_lookup();
/// acct.add_walk_access(nocstar_energy::model::LLC_CACHE_PJ);
/// acct.add_static(Cycles::new(1000), 10.0);
/// assert!(acct.total_pj() > 5000.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyAccount {
    /// L1 TLB lookups.
    pub l1_tlb_pj: f64,
    /// L2 TLB (private or shared slice/bank) SRAM lookups.
    pub l2_tlb_pj: f64,
    /// Interconnect: links + switches + control.
    pub noc_pj: f64,
    /// Cache and DRAM accesses performed by page walks.
    pub walk_pj: f64,
    /// Static energy of the translation machinery over the run.
    pub static_pj: f64,
}

impl EnergyAccount {
    /// Charges one L1 TLB lookup.
    pub fn add_l1_lookup(&mut self) {
        self.l1_tlb_pj += model::L1_TLB_LOOKUP_PJ;
    }

    /// Charges one L2 TLB SRAM lookup of the given energy
    /// (see [`nocstar_tlb::sram::lookup_energy_pj`]).
    pub fn add_l2_lookup(&mut self, pj: f64) {
        self.l2_tlb_pj += pj;
    }

    /// Charges interconnect energy (links, switches, arbitration).
    pub fn add_noc(&mut self, pj: f64) {
        self.noc_pj += pj;
    }

    /// Charges one page-walk memory access of the given energy.
    pub fn add_walk_access(&mut self, pj: f64) {
        self.walk_pj += pj;
    }

    /// Integrates static power over a duration: `power_mw` of translation
    /// hardware for `cycles` at 2 GHz.
    pub fn add_static(&mut self, cycles: Cycles, power_mw: f64) {
        self.static_pj += cycles.value() as f64 * power_mw * model::STATIC_PJ_PER_CYCLE_PER_MW;
    }

    /// Integrates the static power of `cores` NOCSTAR tiles (Fig 9 table)
    /// over a runtime.
    pub fn add_tile_static(&mut self, cycles: Cycles, cores: usize, costs: &TileCosts) {
        self.add_static(cycles, costs.tile_power_mw() * cores as f64);
    }

    /// Total address-translation energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.l1_tlb_pj + self.l2_tlb_pj + self.noc_pj + self.walk_pj + self.static_pj
    }

    /// Percent of this account's energy saved relative to `baseline`
    /// (positive when this run is cheaper).
    pub fn percent_saved_vs(&self, baseline: &EnergyAccount) -> f64 {
        let base = baseline.total_pj();
        if base == 0.0 {
            0.0
        } else {
            (base - self.total_pj()) / base * 100.0
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.l1_tlb_pj += other.l1_tlb_pj;
        self.l2_tlb_pj += other.l2_tlb_pj;
        self.noc_pj += other.noc_pj;
        self.walk_pj += other.walk_pj;
        self.static_pj += other.static_pj;
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "l1={:.0}pJ l2={:.0}pJ noc={:.0}pJ walk={:.0}pJ static={:.0}pJ (total {:.0}pJ)",
            self.l1_tlb_pj,
            self.l2_tlb_pj,
            self.noc_pj,
            self.walk_pj,
            self.static_pj,
            self.total_pj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_all_categories() {
        let mut a = EnergyAccount::default();
        a.add_l1_lookup();
        a.add_l2_lookup(8.0);
        a.add_noc(3.0);
        a.add_walk_access(100.0);
        a.add_static(Cycles::new(10), 2.0);
        assert!((a.total_pj() - (2.0 + 8.0 + 3.0 + 100.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn static_energy_uses_half_pj_per_cycle_per_mw() {
        let mut a = EnergyAccount::default();
        a.add_static(Cycles::new(1000), 1.0);
        assert!((a.static_pj - 500.0).abs() < 1e-9);
    }

    #[test]
    fn tile_static_scales_with_cores() {
        let costs = TileCosts::paper();
        let mut one = EnergyAccount::default();
        one.add_tile_static(Cycles::new(100), 1, &costs);
        let mut many = EnergyAccount::default();
        many.add_tile_static(Cycles::new(100), 16, &costs);
        assert!((many.static_pj / one.static_pj - 16.0).abs() < 1e-9);
    }

    #[test]
    fn percent_saved_is_signed() {
        let mut cheap = EnergyAccount::default();
        cheap.add_noc(50.0);
        let mut costly = EnergyAccount::default();
        costly.add_noc(100.0);
        assert!((cheap.percent_saved_vs(&costly) - 50.0).abs() < 1e-9);
        assert!((costly.percent_saved_vs(&cheap) + 100.0).abs() < 1e-9);
        assert_eq!(cheap.percent_saved_vs(&EnergyAccount::default()), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyAccount::default();
        a.add_walk_access(10.0);
        let mut b = EnergyAccount::default();
        b.add_walk_access(5.0);
        b.add_l1_lookup();
        a.merge(&b);
        assert!((a.walk_pj - 15.0).abs() < 1e-9);
        assert!(a.l1_tlb_pj > 0.0);
    }

    #[test]
    fn display_has_all_components() {
        let a = EnergyAccount::default();
        let s = a.to_string();
        for key in ["l1=", "l2=", "noc=", "walk=", "static=", "total"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
