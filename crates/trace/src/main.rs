//! `nocstar-trace` — the NCT trace-file workbench.
//!
//! Subcommands (the on-disk format is specified in `TRACE_FORMAT.md`):
//!
//! * `record` — capture a synthetic preset workload into a `.nct` file,
//!   using the same defaults as the simulator (`--seed 0xcafe`, ASID 1,
//!   THP on) so a replay through `--trace-file` reproduces the
//!   live-generator run byte-for-byte.
//! * `convert` — translate between the JSON interchange format
//!   (`RecordedTrace`) and NCT, in either direction (by file extension).
//! * `inspect` — print header fields plus per-thread event breakdown,
//!   footprint, page-size split and exact reuse-distance statistics;
//!   `--windows <n>` adds a per-window footprint/reuse table (windows of
//!   `n` accesses) for sanity-checking sampled-replay window placement
//!   against trace phase behaviour (`SAMPLING.md §7`).
//!
//! Exit codes: 2 for usage errors, 1 for runtime failures (I/O, corrupt
//! files), 0 on success.

use nocstar_types::{Asid, PageSize, ThreadId};
use nocstar_workloads::nct::NctFile;
use nocstar_workloads::preset::Preset;
use nocstar_workloads::recorded::RecordedTrace;
use nocstar_workloads::trace::TraceEvent;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
nocstar-trace — record, convert and inspect NCT trace files (see TRACE_FORMAT.md)

USAGE:
    nocstar-trace record --preset <name> --out <file.nct>
                         [--threads <n>] [--events <n>] [--seed <u64>]
                         [--asid <u16>] [--no-thp] [--label <text>]
    nocstar-trace convert <in.{json|nct}> <out.{nct|json}>
                         [--thread <i>] [--label <text>]
    nocstar-trace inspect <file.nct> [--windows <accesses>]

Defaults: --threads 1, --events 10000, --seed 0xcafe, --asid 1, THP on,
label = preset name. `--seed` accepts decimal or 0x-prefixed hex.
Conversion direction follows the file extensions; NCT -> JSON needs
--thread when the file holds more than one stream. `inspect --windows n`
adds a per-window footprint/reuse table over windows of n accesses.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return;
        }
        _ => usage("expected a subcommand: record, convert or inspect"),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Prints a usage error and terminates with exit code 2.
fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// The value following `flag`, if present (usage error when the flag is
/// the last argument).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            .clone()
    })
}

/// Parses a decimal or `0x`-prefixed hexadecimal unsigned integer.
fn parse_u64(text: &str) -> Result<u64, std::num::ParseIntError> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    }
}

/// Parses the value of `flag` as an integer, with a default (usage error
/// on malformed input).
fn flag_u64(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => parse_u64(&v).unwrap_or_else(|e| usage(&format!("bad {flag} value {v:?}: {e}"))),
    }
}

/// Positional (non-flag) arguments: everything not consumed as a flag or
/// a flag's value.
fn positionals(args: &[String], value_flags: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            if value_flags.contains(&a.as_str()) {
                skip = true;
            }
            continue;
        }
        let _ = i;
        out.push(a.clone());
    }
    out
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let preset_name =
        flag_value(args, "--preset").unwrap_or_else(|| usage("record needs --preset <name>"));
    let preset = Preset::from_name(&preset_name)
        .unwrap_or_else(|| usage(&format!("unknown preset {preset_name:?}")));
    let out = PathBuf::from(
        flag_value(args, "--out").unwrap_or_else(|| usage("record needs --out <file.nct>")),
    );
    let threads = flag_u64(args, "--threads", 1);
    if threads == 0 || threads > u64::from(u16::MAX) {
        usage("--threads must be between 1 and 65535");
    }
    let events = flag_u64(args, "--events", 10_000);
    if events == 0 {
        usage("--events must be at least 1");
    }
    let seed = flag_u64(args, "--seed", 0xcafe);
    let asid = flag_u64(args, "--asid", 1);
    if asid == 0 || asid > u64::from(u16::MAX) {
        usage("--asid must be between 1 and 65535");
    }
    let thp = !args.iter().any(|a| a == "--no-thp");
    let label = flag_value(args, "--label").unwrap_or_else(|| preset.name().to_string());

    let spec = preset.spec();
    let traces: Vec<RecordedTrace> = (0..threads)
        .map(|t| {
            let mut src = spec.trace(Asid::new(asid as u16), ThreadId::new(t as usize), seed, thp);
            RecordedTrace::capture(&mut src, events as usize)
        })
        .collect();
    let file = NctFile::from_recorded(&traces, &label).map_err(|e| e.to_string())?;
    file.save(&out).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    println!(
        "recorded {threads} thread(s) x {events} events of {} -> {} ({bytes} bytes, {:.2} bytes/event)",
        preset.name(),
        out.display(),
        bytes as f64 / (threads * events) as f64,
    );
    Ok(())
}

/// File-extension-driven conversion direction.
enum Direction {
    JsonToNct,
    NctToJson,
}

fn direction(input: &Path, output: &Path) -> Direction {
    let ext = |p: &Path| {
        p.extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase)
    };
    match (ext(input).as_deref(), ext(output).as_deref()) {
        (Some("json"), Some("nct")) => Direction::JsonToNct,
        (Some("nct"), Some("json")) => Direction::NctToJson,
        _ => usage("convert needs one .json and one .nct path (direction follows the extensions)"),
    }
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let pos = positionals(args, &["--thread", "--label"]);
    let [input, output] = pos.as_slice() else {
        usage("convert needs exactly two paths: <in> <out>");
    };
    let input = PathBuf::from(input);
    let output = PathBuf::from(output);
    match direction(&input, &output) {
        Direction::JsonToNct => {
            let text =
                std::fs::read_to_string(&input).map_err(|e| format!("{}: {e}", input.display()))?;
            let trace = RecordedTrace::from_json(&text).map_err(|e| e.to_string())?;
            let label = flag_value(args, "--label").unwrap_or_else(|| "recorded".to_string());
            let file = NctFile::from_recorded(std::slice::from_ref(&trace), &label)
                .map_err(|e| e.to_string())?;
            file.save(&output).map_err(|e| e.to_string())?;
            println!(
                "converted {} -> {} ({} events)",
                input.display(),
                output.display(),
                trace.len()
            );
        }
        Direction::NctToJson => {
            let file = NctFile::load(&input).map_err(|e| e.to_string())?;
            let thread = match flag_value(args, "--thread") {
                Some(v) => parse_u64(&v)
                    .ok()
                    .and_then(|n| u16::try_from(n).ok())
                    .unwrap_or_else(|| usage(&format!("bad --thread value {v:?}"))),
                None if file.threads().len() == 1 => 0,
                None => usage(&format!(
                    "the file holds {} thread streams; pick one with --thread <i>",
                    file.threads().len()
                )),
            };
            let trace = file.to_recorded(thread).map_err(|e| e.to_string())?;
            std::fs::write(&output, trace.to_json()).map_err(|e| e.to_string())?;
            println!(
                "converted {} (thread {thread}) -> {} ({} events)",
                input.display(),
                output.display(),
                trace.len()
            );
        }
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let pos = positionals(args, &["--windows"]);
    let [path] = pos.as_slice() else {
        usage("inspect needs exactly one path: <file.nct>");
    };
    let windows = flag_value(args, "--windows").map(|v| {
        let n = parse_u64(&v).unwrap_or_else(|e| usage(&format!("bad --windows value {v:?}: {e}")));
        if n == 0 {
            usage("--windows must be at least 1 access");
        }
        n
    });
    let file = NctFile::load(path).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    println!("file:    {path} ({bytes} bytes)");
    println!("label:   {}", file.label());
    println!("asid:    {}", file.asid().value());
    println!("threads: {}", file.threads().len());
    for (t, stream) in file.threads().iter().enumerate() {
        let stats = StreamStats::of(&stream.events, &stream.superpage_frames);
        println!("\nthread {t}: {} events", stream.events.len());
        println!(
            "  kinds:          {} reads, {} writes, {} ctx switches, {} remaps, {} promotes, {} demotes",
            stats.reads, stats.writes, stats.ctx_switches, stats.remaps, stats.promotes, stats.demotes
        );
        println!(
            "  footprint:      {} pages at backing granularity ({} x 4K + {} x 2M = {})",
            stats.pages_4k + stats.pages_2m,
            stats.pages_4k,
            stats.pages_2m,
            human_bytes(stats.footprint_bytes())
        );
        println!(
            "  accesses:       {:.1}% to 4K pages, {:.1}% to 2M pages",
            100.0 * stats.accesses_4k as f64 / stats.accesses().max(1) as f64,
            100.0 * stats.accesses_2m as f64 / stats.accesses().max(1) as f64,
        );
        match stats.reuse {
            None => println!("  reuse distance: every access is a cold miss"),
            Some(ref r) => println!(
                "  reuse distance: mean {:.1}, p50 {}, max {} (over 4K pages; {} cold)",
                r.mean, r.p50, r.max, r.cold
            ),
        }
        if let Some(per_window) = windows {
            println!("  windows of {per_window} accesses:");
            println!("    window  events  accesses  distinct_4k  new_4k  reuse%");
            for (w, win) in window_summaries(&stream.events, per_window)
                .iter()
                .enumerate()
            {
                println!(
                    "    {w:<6}  {:<6}  {:<8}  {:<11}  {:<6}  {:.1}",
                    win.events,
                    win.accesses,
                    win.distinct,
                    win.new_pages,
                    100.0 * win.reused as f64 / win.accesses.max(1) as f64,
                );
            }
        }
    }
    Ok(())
}

/// One `inspect --windows` row: the footprint and reuse behaviour of a
/// window of consecutive accesses, for sanity-checking sampled-replay
/// window placement against trace phases (`SAMPLING.md §7`).
struct WindowSummary {
    /// All events that fell in the window (accesses plus OS events).
    events: u64,
    /// Memory accesses (the window boundary unit; the final window may be
    /// shorter than the requested size).
    accesses: u64,
    /// Distinct 4K pages touched within the window.
    distinct: u64,
    /// Pages whose *first touch in the whole stream* is in this window —
    /// growth of the cold footprint.
    new_pages: u64,
    /// Accesses to a page already touched earlier in the same window —
    /// the window's intra-window locality.
    reused: u64,
}

/// Splits a thread stream into consecutive windows of `per_window`
/// accesses (OS events ride with the window they fall in) and summarises
/// each; a final partial window is included when the stream length is not
/// a multiple.
fn window_summaries(events: &[TraceEvent], per_window: u64) -> Vec<WindowSummary> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut in_window = std::collections::BTreeSet::new();
    let mut cur = WindowSummary {
        events: 0,
        accesses: 0,
        distinct: 0,
        new_pages: 0,
        reused: 0,
    };
    for ev in events {
        cur.events += 1;
        if let TraceEvent::Access(a) = ev {
            cur.accesses += 1;
            let page = a.va.value() >> PageSize::Size4K.shift();
            if seen.insert(page) {
                cur.new_pages += 1;
            }
            if !in_window.insert(page) {
                cur.reused += 1;
            }
            if cur.accesses == per_window {
                cur.distinct = in_window.len() as u64;
                in_window.clear();
                out.push(std::mem::replace(
                    &mut cur,
                    WindowSummary {
                        events: 0,
                        accesses: 0,
                        distinct: 0,
                        new_pages: 0,
                        reused: 0,
                    },
                ));
            }
        }
    }
    if cur.events > 0 {
        cur.distinct = in_window.len() as u64;
        out.push(cur);
    }
    out
}

fn human_bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.2} GiB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.2} MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.2} KiB", n as f64 / (1u64 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

/// Exact reuse-distance summary (finite distances only).
struct ReuseStats {
    mean: f64,
    p50: u64,
    max: u64,
    /// Cold (first-touch) accesses, which have no reuse distance.
    cold: u64,
}

/// Everything `inspect` prints for one thread stream.
struct StreamStats {
    reads: u64,
    writes: u64,
    ctx_switches: u64,
    remaps: u64,
    promotes: u64,
    demotes: u64,
    /// Unique 4K pages touched that are not covered by a superpage frame.
    pages_4k: u64,
    /// Unique 2M superpage frames touched.
    pages_2m: u64,
    accesses_4k: u64,
    accesses_2m: u64,
    reuse: Option<ReuseStats>,
}

impl StreamStats {
    fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    fn footprint_bytes(&self) -> u64 {
        self.pages_4k * PageSize::Size4K.bytes() + self.pages_2m * PageSize::Size2M.bytes()
    }

    fn of(events: &[TraceEvent], superpage_frames: &std::collections::BTreeSet<u64>) -> Self {
        let mut s = StreamStats {
            reads: 0,
            writes: 0,
            ctx_switches: 0,
            remaps: 0,
            promotes: 0,
            demotes: 0,
            pages_4k: 0,
            pages_2m: 0,
            accesses_4k: 0,
            accesses_2m: 0,
            reuse: None,
        };
        let mut touched_4k = std::collections::BTreeSet::new();
        let mut touched_2m = std::collections::BTreeSet::new();
        let mut pages_in_order = Vec::new();
        for ev in events {
            match ev {
                TraceEvent::Access(a) => {
                    if a.is_write {
                        s.writes += 1;
                    } else {
                        s.reads += 1;
                    }
                    let frame_2m = a.va.value() >> PageSize::Size2M.shift();
                    if superpage_frames.contains(&frame_2m) {
                        s.accesses_2m += 1;
                        touched_2m.insert(frame_2m);
                    } else {
                        s.accesses_4k += 1;
                        touched_4k.insert(a.va.value() >> PageSize::Size4K.shift());
                    }
                    pages_in_order.push(a.va.value() >> PageSize::Size4K.shift());
                }
                TraceEvent::ContextSwitch => s.ctx_switches += 1,
                TraceEvent::Remap(_) => s.remaps += 1,
                TraceEvent::Promote(_) => s.promotes += 1,
                TraceEvent::Demote(_) => s.demotes += 1,
            }
        }
        s.pages_4k = touched_4k.len() as u64;
        s.pages_2m = touched_2m.len() as u64;
        s.reuse = reuse_distances(&pages_in_order);
        s
    }
}

/// A Fenwick (binary indexed) tree over `n` positions supporting point
/// add and prefix sum, both O(log n) — the standard exact-reuse-distance
/// engine.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based); 0 for `i == usize::MAX` sentinel.
    fn prefix(&self, i: usize) -> u64 {
        let mut sum = 0u64;
        let mut i = i + 1;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Exact per-access reuse distances over 4K page numbers: for each access,
/// the number of *distinct* pages touched since the previous access to the
/// same page (cold first touches are counted separately). O(n log n).
fn reuse_distances(pages: &[u64]) -> Option<ReuseStats> {
    let mut fen = Fenwick::new(pages.len());
    let mut last: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut distances = Vec::new();
    let mut cold = 0u64;
    for (i, &page) in pages.iter().enumerate() {
        match last.insert(page, i) {
            None => cold += 1,
            Some(j) => {
                // Distinct pages in (j, i) = marked last-positions there.
                let upto_i = if i == 0 { 0 } else { fen.prefix(i - 1) };
                distances.push(upto_i - fen.prefix(j));
                fen.add(j, -1);
            }
        }
        fen.add(i, 1);
    }
    if distances.is_empty() {
        return None;
    }
    distances.sort_unstable();
    let mean = distances.iter().sum::<u64>() as f64 / distances.len() as f64;
    Some(ReuseStats {
        mean,
        p50: distances[distances.len() / 2],
        max: *distances.last().expect("nonempty"),
        cold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_prefix_sums_match_naive() {
        let values = [3i64, 0, 5, 1, 0, 2, 7];
        let mut fen = Fenwick::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            fen.add(i, v);
        }
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            acc += v as u64;
            assert_eq!(fen.prefix(i), acc);
        }
        fen.add(2, -5);
        assert_eq!(fen.prefix(6), acc - 5);
    }

    #[test]
    fn reuse_distances_match_hand_computation() {
        // A B C A B B: A reused over {B,C} = 2; B over {C,A} = 2; B over {} = 0.
        let pages = [10, 20, 30, 10, 20, 20];
        let r = reuse_distances(&pages).expect("has reuses");
        assert_eq!(r.cold, 3);
        assert_eq!(r.max, 2);
        assert_eq!(r.p50, 2); // sorted distances [0, 2, 2]
        assert!((r.mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_cold_streams_have_no_reuse_stats() {
        assert!(reuse_distances(&[1, 2, 3]).is_none());
        assert!(reuse_distances(&[]).is_none());
    }

    #[test]
    fn parse_u64_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("51966"), Ok(51966));
        assert_eq!(parse_u64("0xcafe"), Ok(0xcafe));
        assert_eq!(parse_u64("0XCAFE"), Ok(0xcafe));
        assert!(parse_u64("xyz").is_err());
    }

    #[test]
    fn positionals_skip_flags_and_their_values() {
        let args: Vec<String> = ["a.json", "--label", "x", "b.nct", "--flag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(positionals(&args, &["--label"]), ["a.json", "b.nct"]);
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(80), "80 B");
        assert_eq!(human_bytes(2 * 1024 * 1024), "2.00 MiB");
    }

    #[test]
    fn window_summaries_track_footprint_growth_and_reuse() {
        use nocstar_types::time::Cycles;
        use nocstar_types::VirtAddr;
        use nocstar_workloads::trace::MemAccess;
        let access = |page: u64| {
            TraceEvent::Access(MemAccess {
                va: VirtAddr::new(page << 12),
                is_write: false,
                gap: Cycles::new(1),
            })
        };
        // Window 0: pages A B A (distinct 2, new 2, reused 1, + one OS event).
        // Window 1: pages B C (partial; distinct 2, new 1 — B is stream-old
        // but window-fresh, so not reused).
        let events = [
            access(10),
            TraceEvent::ContextSwitch,
            access(20),
            access(10),
            access(20),
            access(30),
        ];
        let wins = window_summaries(&events, 3);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].events, 4);
        assert_eq!(wins[0].accesses, 3);
        assert_eq!(wins[0].distinct, 2);
        assert_eq!(wins[0].new_pages, 2);
        assert_eq!(wins[0].reused, 1);
        assert_eq!(wins[1].events, 2);
        assert_eq!(wins[1].accesses, 2);
        assert_eq!(wins[1].distinct, 2);
        assert_eq!(wins[1].new_pages, 1);
        assert_eq!(wins[1].reused, 0);
    }

    #[test]
    fn window_summaries_of_an_empty_stream_are_empty() {
        assert!(window_summaries(&[], 5).is_empty());
    }

    #[test]
    fn stream_stats_split_accesses_by_backing() {
        use nocstar_types::time::Cycles;
        use nocstar_types::VirtAddr;
        use nocstar_workloads::trace::MemAccess;
        let frames: std::collections::BTreeSet<u64> = [1u64].into_iter().collect();
        let access = |va: u64, is_write: bool| {
            TraceEvent::Access(MemAccess {
                va: VirtAddr::new(va),
                is_write,
                gap: Cycles::new(1),
            })
        };
        let events = [
            access(0x1000, false),    // 4K page
            access(0x20_0000, true),  // inside superpage frame 1
            access(0x20_1000, false), // same superpage frame
            TraceEvent::ContextSwitch,
        ];
        let s = StreamStats::of(&events, &frames);
        assert_eq!((s.reads, s.writes, s.ctx_switches), (2, 1, 1));
        assert_eq!((s.accesses_4k, s.accesses_2m), (1, 2));
        assert_eq!((s.pages_4k, s.pages_2m), (1, 1));
        assert_eq!(s.footprint_bytes(), 4096 + 2 * 1024 * 1024);
    }
}
