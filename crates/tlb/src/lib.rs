//! TLB structures for the NOCSTAR simulator.
//!
//! This crate implements every translation-caching structure the paper's
//! system contains, independent of how they are wired together (that wiring
//! lives in `nocstar-core`):
//!
//! * [`entry`] — the translation entry format: valid bit, translation, and
//!   context id, as in paper §III-A.
//! * [`set_assoc`] — a set-associative TLB array with modulo indexing and
//!   pluggable replacement ([`replacement`]), the building block of every
//!   level.
//! * [`l1`] — the per-core split L1 TLB: 64-entry/4-way for 4 KiB pages,
//!   32-entry/4-way for 2 MiB, 4-entry for 1 GiB (Haswell, §IV).
//! * [`slice`](mod@slice) — a shared-L2 slice or bank: a content array plus a port /
//!   pipeline timing model (2 read ports, 1 write port, pipelined lookups).
//! * [`indexing`] — which slice/bank a virtual page maps to (low VPN bits).
//! * [`prefetch`] — the ±k adjacent-virtual-page prefetcher studied in
//!   Table III.
//! * [`shootdown`] — TLB invalidation requests and the invalidation-leader
//!   policies of §III-G.
//! * [`sram`] — the 28 nm SRAM lookup-latency/energy model behind Fig 3.
//!
//! # Examples
//!
//! ```
//! use nocstar_tlb::l1::L1Tlb;
//! use nocstar_tlb::entry::TlbEntry;
//! use nocstar_types::{Asid, PageSize, VirtAddr, PhysPageNum};
//!
//! let mut l1 = L1Tlb::haswell();
//! let va = VirtAddr::new(0x1234_5000);
//! assert!(l1.lookup(Asid::new(1), va).is_none());
//! let vpn = va.page_number(PageSize::Size4K);
//! l1.insert(TlbEntry::new(Asid::new(1), vpn, PhysPageNum::new(77, PageSize::Size4K)));
//! assert!(l1.lookup(Asid::new(1), va).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod indexing;
pub mod l1;
pub mod prefetch;
pub mod replacement;
pub mod set_assoc;
pub mod shootdown;
pub mod slice;
pub mod sram;

pub use entry::TlbEntry;
pub use l1::L1Tlb;
pub use replacement::ReplacementPolicy;
pub use set_assoc::SetAssocTlb;
pub use slice::TlbSlice;
