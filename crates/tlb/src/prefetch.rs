//! Adjacent-virtual-page TLB prefetching (paper Table III).
//!
//! Following the original shared-TLB paper, on an L2 TLB miss the
//! translations for virtual pages at distance ±1, ±2, … ±depth from the
//! missing page are prefetched into the shared L2. The paper finds ±2 most
//! effective, with deeper prefetching polluting the TLB.

use nocstar_types::VirtPageNum;

/// How many adjacent virtual pages to prefetch on each side of a miss.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::prefetch::PrefetchDepth;
/// assert_eq!(PrefetchDepth::disabled().depth(), 0);
/// assert_eq!(PrefetchDepth::new(2).unwrap().depth(), 2);
/// assert!(PrefetchDepth::new(4).is_none()); // paper studies up to +/-3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PrefetchDepth(u8);

impl PrefetchDepth {
    /// The deepest prefetch the paper studies (±3).
    pub const MAX: u8 = 3;

    /// No prefetching.
    pub const fn disabled() -> Self {
        Self(0)
    }

    /// A depth of `depth` pages each side; `None` beyond [`Self::MAX`].
    pub fn new(depth: u8) -> Option<Self> {
        (depth <= Self::MAX).then_some(Self(depth))
    }

    /// The configured depth (0 = disabled).
    pub fn depth(self) -> u8 {
        self.0
    }

    /// Whether any prefetching happens.
    pub fn is_enabled(self) -> bool {
        self.0 > 0
    }

    /// The virtual pages to prefetch around a missing page, nearest first
    /// (+1, -1, +2, -2, …). Pages that would underflow page number zero are
    /// skipped; the missing page itself is never included.
    ///
    /// ```
    /// use nocstar_tlb::prefetch::PrefetchDepth;
    /// use nocstar_types::{PageSize, VirtPageNum};
    ///
    /// let miss = VirtPageNum::new(10, PageSize::Size4K);
    /// let picks: Vec<u64> = PrefetchDepth::new(2).unwrap()
    ///     .candidates(miss)
    ///     .map(|v| v.number())
    ///     .collect();
    /// assert_eq!(picks, vec![11, 9, 12, 8]);
    /// ```
    pub fn candidates(self, miss: VirtPageNum) -> impl Iterator<Item = VirtPageNum> {
        (1..=i64::from(self.0)).flat_map(move |d| {
            let forward = Some(miss.stride(d));
            let backward = (miss.number() >= d as u64).then(|| miss.stride(-d));
            forward.into_iter().chain(backward)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::PageSize;

    fn v4k(n: u64) -> VirtPageNum {
        VirtPageNum::new(n, PageSize::Size4K)
    }

    #[test]
    fn disabled_prefetch_yields_nothing() {
        assert_eq!(PrefetchDepth::disabled().candidates(v4k(10)).count(), 0);
        assert!(!PrefetchDepth::disabled().is_enabled());
    }

    #[test]
    fn depth_three_yields_six_neighbours() {
        let picks: Vec<u64> = PrefetchDepth::new(3)
            .unwrap()
            .candidates(v4k(100))
            .map(|v| v.number())
            .collect();
        assert_eq!(picks, vec![101, 99, 102, 98, 103, 97]);
    }

    #[test]
    fn candidates_near_zero_skip_underflow() {
        let picks: Vec<u64> = PrefetchDepth::new(2)
            .unwrap()
            .candidates(v4k(1))
            .map(|v| v.number())
            .collect();
        assert_eq!(picks, vec![2, 0, 3]); // -2 would underflow
    }

    #[test]
    fn candidates_preserve_page_size() {
        let miss = VirtPageNum::new(10, PageSize::Size2M);
        for c in PrefetchDepth::new(1).unwrap().candidates(miss) {
            assert_eq!(c.page_size(), PageSize::Size2M);
        }
    }

    #[test]
    fn depth_beyond_max_is_rejected() {
        assert!(PrefetchDepth::new(PrefetchDepth::MAX).is_some());
        assert!(PrefetchDepth::new(PrefetchDepth::MAX + 1).is_none());
    }
}
