//! Replacement policies for set-associative arrays.
//!
//! The paper's TLBs use LRU (§III-E); FIFO and a deterministic pseudo-random
//! policy are provided for ablation.

/// Which way of a full set to evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the paper's choice).
    #[default]
    Lru,
    /// Evict the oldest-inserted way regardless of use.
    Fifo,
    /// Evict a pseudo-random way (deterministic xorshift stream).
    Random,
}

/// Per-array replacement state: a monotonic use/insert clock plus the RNG
/// state for [`ReplacementPolicy::Random`].
#[derive(Debug, Clone)]
pub(crate) struct ReplacementState {
    policy: ReplacementPolicy,
    clock: u64,
    rng: u64,
}

impl ReplacementState {
    pub(crate) fn new(policy: ReplacementPolicy) -> Self {
        Self {
            policy,
            clock: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub(crate) fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// A fresh timestamp; later calls return strictly larger values.
    pub(crate) fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Picks the victim way given each way's `(inserted_at, last_used_at)`
    /// stamps. All ways must be occupied.
    pub(crate) fn victim(&mut self, stamps: &[(u64, u64)]) -> usize {
        debug_assert!(!stamps.is_empty());
        match self.policy {
            ReplacementPolicy::Lru => {
                stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, used))| *used)
                    // nocstar-lint: allow(sim-unwrap): stamps is non-empty, a caller invariant (debug_assert above)
                    .expect("nonempty set")
                    .0
            }
            ReplacementPolicy::Fifo => {
                stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (inserted, _))| *inserted)
                    // nocstar-lint: allow(sim-unwrap): stamps is non-empty, a caller invariant (debug_assert above)
                    .expect("nonempty set")
                    .0
            }
            ReplacementPolicy::Random => {
                // xorshift64*
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % stamps.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recently_used() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru);
        // way 1 used longest ago
        let stamps = [(1, 10), (2, 3), (3, 7)];
        assert_eq!(st.victim(&stamps), 1);
    }

    #[test]
    fn fifo_picks_oldest_insert_even_if_recently_used() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo);
        let stamps = [(5, 100), (1, 200), (9, 50)];
        assert_eq!(st.victim(&stamps), 1);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = ReplacementState::new(ReplacementPolicy::Random);
        let mut b = ReplacementState::new(ReplacementPolicy::Random);
        let stamps = [(0, 0); 8];
        for _ in 0..100 {
            let va = a.victim(&stamps);
            assert_eq!(va, b.victim(&stamps));
            assert!(va < 8);
        }
    }

    #[test]
    fn tick_is_strictly_monotonic() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru);
        let a = st.tick();
        let b = st.tick();
        assert!(b > a);
    }
}
