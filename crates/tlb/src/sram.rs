//! The SRAM lookup-latency and lookup-energy model (paper Fig 3).
//!
//! The paper synthesizes TLB SRAM arrays in TSMC 28 nm and reports access
//! latency versus capacity: a 1536-entry array (Skylake's private L2 TLB)
//! takes 9 cycles, and a 32x1536-entry array takes close to 15 cycles, with
//! the 0.5x point near 8 and the 64x point near 16–17. We fit that curve
//! with a logarithmic model anchored at those points; all downstream
//! experiments consume only the resulting cycle counts.

use nocstar_types::time::Cycles;

/// The paper's reference capacity: Skylake's 1536-entry private L2 TLB,
/// which anchors the 9-cycle point of Fig 3.
pub const REFERENCE_ENTRIES: usize = 1536;

/// Lookup latency of the reference-sized array.
pub const REFERENCE_LATENCY: Cycles = Cycles::new(9);

/// Cycles added (or removed) per doubling of capacity in the fitted model.
const CYCLES_PER_DOUBLING: f64 = 1.2;

/// Latency floor: even tiny arrays pay wordline/sense/route overheads
/// (Fig 3's y-axis starts at 6 cycles).
const MIN_LATENCY: u64 = 6;

/// SRAM lookup latency for an array of `entries` translations.
///
/// # Panics
///
/// Panics if `entries` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::sram::lookup_cycles;
/// use nocstar_types::Cycles;
///
/// assert_eq!(lookup_cycles(1536), Cycles::new(9));   // 1x: private L2 TLB
/// assert_eq!(lookup_cycles(1536 * 32), Cycles::new(15)); // 32x: ~15 cycles
/// assert_eq!(lookup_cycles(768), Cycles::new(8));    // 0.5x
/// ```
pub fn lookup_cycles(entries: usize) -> Cycles {
    assert!(entries > 0, "SRAM array must have at least one entry");
    let ratio = entries as f64 / REFERENCE_ENTRIES as f64;
    let cycles = REFERENCE_LATENCY.value() as f64 + CYCLES_PER_DOUBLING * ratio.log2();
    Cycles::new((cycles.round() as i64).max(MIN_LATENCY as i64) as u64)
}

/// Dynamic energy of one lookup, in picojoules.
///
/// Lookup energy grows roughly with wordline/bitline length, i.e. with the
/// square root of capacity; we anchor a 1024-entry slice at 8 pJ so that a
/// 32x-larger monolithic array costs ~45 pJ per access — matching the
/// relative SRAM components of Fig 11(b) (monolithic SRAM dominating,
/// distributed/NOCSTAR slices several times cheaper).
///
/// # Panics
///
/// Panics if `entries` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::sram::lookup_energy_pj;
/// let slice = lookup_energy_pj(1024);
/// let monolithic = lookup_energy_pj(32 * 1024);
/// assert!(monolithic / slice > 5.0);
/// ```
pub fn lookup_energy_pj(entries: usize) -> f64 {
    assert!(entries > 0, "SRAM array must have at least one entry");
    const BASE_ENTRIES: f64 = 1024.0;
    const BASE_ENERGY_PJ: f64 = 8.0;
    BASE_ENERGY_PJ * (entries as f64 / BASE_ENTRIES).sqrt()
}

/// The Fig 3 series: `(capacity ratio, entries, cycles)` for ratios
/// 0.5x through 64x of the reference array.
pub fn fig3_series() -> Vec<(f64, usize, Cycles)> {
    [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
        .into_iter()
        .map(|ratio| {
            let entries = (REFERENCE_ENTRIES as f64 * ratio) as usize;
            (ratio, entries, lookup_cycles(entries))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_the_paper() {
        assert_eq!(lookup_cycles(REFERENCE_ENTRIES), Cycles::new(9));
        let c32 = lookup_cycles(REFERENCE_ENTRIES * 32).value();
        assert!((14..=16).contains(&c32), "32x was {c32} cycles");
        let c64 = lookup_cycles(REFERENCE_ENTRIES * 64).value();
        assert!((15..=17).contains(&c64), "64x was {c64} cycles");
    }

    #[test]
    fn latency_is_monotonic_in_capacity() {
        let series = fig3_series();
        for w in series.windows(2) {
            assert!(w[0].2 <= w[1].2, "latency must not shrink with size");
        }
    }

    #[test]
    fn latency_never_goes_below_floor() {
        assert!(lookup_cycles(1).value() >= MIN_LATENCY);
        assert!(lookup_cycles(16).value() >= MIN_LATENCY);
    }

    #[test]
    fn energy_grows_sublinearly() {
        let e1 = lookup_energy_pj(1024);
        let e4 = lookup_energy_pj(4096);
        assert!((e4 / e1 - 2.0).abs() < 1e-9, "4x entries => 2x energy");
    }

    #[test]
    fn fig3_series_covers_all_eight_points() {
        let series = fig3_series();
        assert_eq!(series.len(), 8);
        assert_eq!(series[1].1, REFERENCE_ENTRIES);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = lookup_cycles(0);
    }
}
