//! The per-core split L1 TLB.
//!
//! Paper §IV: "64-entry 4-way associative L1 TLBs for 4KB pages, 32-entry
//! 4-way L1 TLBs for 2MB pages, and 4-entry TLBs for 1GB pages", accessed in
//! a single cycle in parallel with the L1 cache. A lookup probes all three
//! size-specific arrays, because the page size backing a virtual address is
//! unknown until a translation is found.

use crate::entry::TlbEntry;
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::SetAssocTlb;
use nocstar_stats::counter::HitMiss;
use nocstar_types::{Asid, PageSize, VirtAddr, VirtPageNum};

/// Sizing of the three per-page-size L1 arrays.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::l1::L1Config;
/// let half = L1Config::haswell().scale(0.5);
/// assert_eq!(half.entries_4k, 32);
/// let bigger = L1Config::haswell().scale(1.5);
/// assert_eq!(bigger.entries_4k, 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Entries in the 4 KiB-page array.
    pub entries_4k: usize,
    /// Associativity of the 4 KiB-page array.
    pub ways_4k: usize,
    /// Entries in the 2 MiB-page array.
    pub entries_2m: usize,
    /// Associativity of the 2 MiB-page array.
    pub ways_2m: usize,
    /// Entries in the 1 GiB-page array (fully associative).
    pub entries_1g: usize,
}

impl L1Config {
    /// The paper's Haswell configuration.
    pub fn haswell() -> Self {
        Self {
            entries_4k: 64,
            ways_4k: 4,
            entries_2m: 32,
            ways_2m: 4,
            entries_1g: 4,
        }
    }

    /// Scales every array's capacity by `factor` (Fig 6 studies 0.5x and
    /// 1.5x L1 TLBs), keeping associativity and rounding to a whole number
    /// of sets (minimum one set).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        let scale_entries = |entries: usize, ways: usize| -> usize {
            let target = (entries as f64 * factor).round() as usize;
            let sets = (target / ways).max(1);
            sets * ways
        };
        Self {
            entries_4k: scale_entries(self.entries_4k, self.ways_4k),
            ways_4k: self.ways_4k,
            entries_2m: scale_entries(self.entries_2m, self.ways_2m),
            ways_2m: self.ways_2m,
            entries_1g: ((self.entries_1g as f64 * factor).round() as usize).max(1),
        }
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::haswell()
    }
}

/// A split (per-page-size) L1 TLB.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::l1::L1Tlb;
/// use nocstar_tlb::entry::TlbEntry;
/// use nocstar_types::{Asid, PageSize, PhysPageNum, VirtAddr};
///
/// let mut l1 = L1Tlb::haswell();
/// let asid = Asid::new(1);
/// let va = VirtAddr::new(0x40_0123); // inside 2MiB page 2
/// let vpn = va.page_number(PageSize::Size2M);
/// l1.insert(TlbEntry::new(asid, vpn, PhysPageNum::new(9, PageSize::Size2M)));
/// let hit = l1.lookup(asid, va).unwrap();
/// assert_eq!(hit.page_size(), PageSize::Size2M);
/// ```
#[derive(Debug, Clone)]
pub struct L1Tlb {
    t4k: SetAssocTlb,
    t2m: SetAssocTlb,
    t1g: SetAssocTlb,
}

impl L1Tlb {
    /// Builds an L1 TLB with the given sizing; all arrays use LRU.
    pub fn new(config: L1Config) -> Self {
        Self {
            t4k: SetAssocTlb::new(config.entries_4k, config.ways_4k, ReplacementPolicy::Lru),
            t2m: SetAssocTlb::new(config.entries_2m, config.ways_2m, ReplacementPolicy::Lru),
            t1g: SetAssocTlb::new(config.entries_1g, config.entries_1g, ReplacementPolicy::Lru),
        }
    }

    /// The paper's Haswell-sized L1 TLB.
    pub fn haswell() -> Self {
        Self::new(L1Config::haswell())
    }

    fn array_for(&self, size: PageSize) -> &SetAssocTlb {
        match size {
            PageSize::Size4K => &self.t4k,
            PageSize::Size2M => &self.t2m,
            PageSize::Size1G => &self.t1g,
        }
    }

    fn array_for_mut(&mut self, size: PageSize) -> &mut SetAssocTlb {
        match size {
            PageSize::Size4K => &mut self.t4k,
            PageSize::Size2M => &mut self.t2m,
            PageSize::Size1G => &mut self.t1g,
        }
    }

    /// Translates a virtual address, probing the superpage arrays first.
    /// Exactly one array records an access per call, so miss rates reflect
    /// whole-L1 behaviour: a miss is recorded against the 4 KiB array (the
    /// last one probed), a hit against the array that provided it.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<TlbEntry> {
        for size in [PageSize::Size1G, PageSize::Size2M] {
            let vpn = va.page_number(size);
            if self.array_for(size).probe(asid, vpn).is_some() {
                // Refresh recency + record the hit in the owning array.
                return self.array_for_mut(size).lookup(asid, vpn);
            }
        }
        self.t4k.lookup(asid, va.page_number(PageSize::Size4K))
    }

    /// Functional fast-forward lookup (`SAMPLING.md §2`): probes the
    /// same superpage-first order as [`lookup`](Self::lookup) and
    /// updates recency in the owning array, but records no hit/miss
    /// statistics in any array.
    pub fn touch(&mut self, asid: Asid, va: VirtAddr) -> Option<TlbEntry> {
        for size in [PageSize::Size1G, PageSize::Size2M] {
            let vpn = va.page_number(size);
            if self.array_for(size).probe(asid, vpn).is_some() {
                return self.array_for_mut(size).touch(asid, vpn);
            }
        }
        self.t4k.touch(asid, va.page_number(PageSize::Size4K))
    }

    /// Inserts a translation into the array of its page size, returning the
    /// evicted entry if any.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.array_for_mut(entry.page_size()).insert(entry)
    }

    /// Invalidates one translation; returns whether it was present.
    pub fn invalidate(&mut self, asid: Asid, vpn: VirtPageNum) -> bool {
        self.array_for_mut(vpn.page_size()).invalidate(asid, vpn)
    }

    /// Flushes all non-global translations (context switch); returns the
    /// number dropped.
    pub fn flush_non_global(&mut self) -> usize {
        self.t4k.flush_non_global() + self.t2m.flush_non_global() + self.t1g.flush_non_global()
    }

    /// Combined hit/miss statistics across the three arrays.
    pub fn stats(&self) -> HitMiss {
        let mut total = self.t4k.stats();
        total.merge(self.t2m.stats());
        total.merge(self.t1g.stats());
        total
    }

    /// Clears statistics on all arrays (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.t4k.reset_stats();
        self.t2m.reset_stats();
        self.t1g.reset_stats();
    }

    /// Total valid entries across the three arrays.
    pub fn occupancy(&self) -> usize {
        self.t4k.occupancy() + self.t2m.occupancy() + self.t1g.occupancy()
    }

    /// Total capacity across the three arrays.
    pub fn capacity(&self) -> usize {
        self.t4k.entries() + self.t2m.entries() + self.t1g.entries()
    }
}

impl Default for L1Tlb {
    fn default() -> Self {
        Self::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::PhysPageNum;

    fn entry(asid: u16, vpn: u64, size: PageSize) -> TlbEntry {
        TlbEntry::new(
            Asid::new(asid),
            VirtPageNum::new(vpn, size),
            PhysPageNum::new(vpn + 1, size),
        )
    }

    #[test]
    fn haswell_capacities_match_the_paper() {
        let l1 = L1Tlb::haswell();
        assert_eq!(l1.capacity(), 64 + 32 + 4);
    }

    #[test]
    fn lookup_probes_all_page_sizes() {
        let mut l1 = L1Tlb::haswell();
        let asid = Asid::new(1);
        l1.insert(entry(1, 5, PageSize::Size4K)); // va 0x5000
        l1.insert(entry(1, 5, PageSize::Size2M)); // va 0xA0_0000..0xC0_0000
        l1.insert(entry(1, 5, PageSize::Size1G)); // va at 5 GiB

        let hit4k = l1.lookup(asid, VirtAddr::new(0x5000)).unwrap();
        assert_eq!(hit4k.page_size(), PageSize::Size4K);
        let hit2m = l1.lookup(asid, VirtAddr::new(5 * 0x20_0000 + 7)).unwrap();
        assert_eq!(hit2m.page_size(), PageSize::Size2M);
        let hit1g = l1.lookup(asid, VirtAddr::new(5 * 0x4000_0000 + 7)).unwrap();
        assert_eq!(hit1g.page_size(), PageSize::Size1G);
    }

    #[test]
    fn superpage_hit_shadows_contained_base_page() {
        // If both a 2M mapping and a 4K mapping inside it exist, the
        // superpage array answers first (hardware probes in parallel; any
        // hit wins, and consistent tables make them agree).
        let mut l1 = L1Tlb::haswell();
        let asid = Asid::new(1);
        l1.insert(entry(1, 0, PageSize::Size2M));
        l1.insert(entry(1, 3, PageSize::Size4K)); // inside 2M page 0
        let hit = l1.lookup(asid, VirtAddr::new(0x3000)).unwrap();
        assert_eq!(hit.page_size(), PageSize::Size2M);
    }

    #[test]
    fn one_access_recorded_per_lookup() {
        let mut l1 = L1Tlb::haswell();
        let asid = Asid::new(1);
        l1.insert(entry(1, 9, PageSize::Size4K));
        l1.lookup(asid, VirtAddr::new(0x9000)); // hit
        l1.lookup(asid, VirtAddr::new(0x1_0000)); // miss
        assert_eq!(l1.stats().accesses(), 2);
        assert_eq!(l1.stats().hits(), 1);
    }

    #[test]
    fn touch_finds_superpages_without_recording_stats() {
        let mut l1 = L1Tlb::haswell();
        let asid = Asid::new(1);
        l1.insert(entry(1, 5, PageSize::Size2M));
        let hit = l1.touch(asid, VirtAddr::new(5 * 0x20_0000 + 7)).unwrap();
        assert_eq!(hit.page_size(), PageSize::Size2M);
        assert!(l1.touch(asid, VirtAddr::new(0x9999_0000)).is_none());
        assert_eq!(l1.stats().accesses(), 0);
    }

    #[test]
    fn invalidate_targets_the_right_array() {
        let mut l1 = L1Tlb::haswell();
        l1.insert(entry(1, 5, PageSize::Size2M));
        assert!(!l1.invalidate(Asid::new(1), VirtPageNum::new(5, PageSize::Size4K)));
        assert!(l1.invalidate(Asid::new(1), VirtPageNum::new(5, PageSize::Size2M)));
        assert_eq!(l1.occupancy(), 0);
    }

    #[test]
    fn flush_non_global_clears_process_entries() {
        let mut l1 = L1Tlb::haswell();
        l1.insert(entry(1, 1, PageSize::Size4K));
        l1.insert(TlbEntry::new_global(
            VirtPageNum::new(2, PageSize::Size4K),
            PhysPageNum::new(2, PageSize::Size4K),
        ));
        assert_eq!(l1.flush_non_global(), 1);
        assert_eq!(l1.occupancy(), 1);
    }

    #[test]
    fn scaled_config_keeps_set_alignment() {
        let c = L1Config::haswell().scale(0.5);
        assert_eq!(c.entries_4k % c.ways_4k, 0);
        assert_eq!(c.entries_2m % c.ways_2m, 0);
        let tiny = L1Config::haswell().scale(0.01);
        // Never collapses below one set.
        assert_eq!(tiny.entries_4k, 4);
        assert_eq!(tiny.entries_1g, 1);
        let l1 = L1Tlb::new(tiny);
        assert_eq!(l1.capacity(), 4 + 4 + 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_rejected() {
        let _ = L1Config::haswell().scale(0.0);
    }
}
