//! Mapping virtual pages to shared-L2-TLB slices and banks.
//!
//! Paper §III-A: "we use a simple indexing mechanism using bits from the
//! virtual address" — the low-order bits of the virtual page number select
//! the home slice, so consecutive virtual pages stripe round-robin across
//! slices, spreading load.

use nocstar_types::{BankId, SliceId, VirtPageNum};

/// The home slice of a virtual page in an `num_slices`-slice distributed
/// shared L2 TLB.
///
/// # Panics
///
/// Panics if `num_slices` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::indexing::slice_for;
/// use nocstar_types::{PageSize, VirtPageNum};
///
/// let vpn = VirtPageNum::new(37, PageSize::Size4K);
/// assert_eq!(slice_for(vpn, 32).index(), 5);
/// ```
pub fn slice_for(vpn: VirtPageNum, num_slices: usize) -> SliceId {
    assert!(num_slices > 0, "need at least one slice");
    SliceId::new((vpn.number() % num_slices as u64) as usize)
}

/// The home bank of a virtual page in a `num_banks`-bank monolithic shared
/// L2 TLB.
///
/// # Panics
///
/// Panics if `num_banks` is zero.
pub fn bank_for(vpn: VirtPageNum, num_banks: usize) -> BankId {
    assert!(num_banks > 0, "need at least one bank");
    BankId::new((vpn.number() % num_banks as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::PageSize;
    use proptest::prelude::*;

    fn v4k(n: u64) -> VirtPageNum {
        VirtPageNum::new(n, PageSize::Size4K)
    }

    #[test]
    fn consecutive_pages_stripe_across_slices() {
        let slices: Vec<usize> = (0..8).map(|n| slice_for(v4k(n), 4).index()).collect();
        assert_eq!(slices, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn single_slice_gets_everything() {
        for n in [0u64, 1, 99, u64::MAX] {
            assert_eq!(slice_for(v4k(n), 1).index(), 0);
        }
    }

    #[test]
    fn superpages_index_by_their_own_frame_number() {
        let v2m = VirtPageNum::new(5, PageSize::Size2M);
        assert_eq!(slice_for(v2m, 4).index(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slices_rejected() {
        let _ = slice_for(v4k(0), 0);
    }

    proptest! {
        /// Indexing is total and in range, and uniform strides of
        /// co-prime-to-slice-count step visit all slices.
        #[test]
        fn prop_slice_in_range(n in any::<u64>(), slices in 1usize..512) {
            prop_assert!(slice_for(v4k(n), slices).index() < slices);
            prop_assert!(bank_for(v4k(n), slices).index() < slices);
        }

        /// A long run of consecutive pages is perfectly balanced.
        #[test]
        fn prop_sequential_pages_are_balanced(start in 0u64..1_000_000, slices in 1usize..64) {
            let mut counts = vec![0u64; slices];
            let pages = (slices * 10) as u64;
            for n in start..start + pages {
                counts[slice_for(v4k(n), slices).index()] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == 10));
        }
    }
}
