//! Mapping virtual pages to shared-L2-TLB slices and banks.
//!
//! Paper §III-A: "we use a simple indexing mechanism using bits from the
//! virtual address" — the low-order bits of the virtual page number select
//! the home slice, so consecutive virtual pages stripe round-robin across
//! slices, spreading load.

use nocstar_types::{BankId, CoreId, SliceId, VirtPageNum};

/// The home slice of a virtual page in an `num_slices`-slice distributed
/// shared L2 TLB.
///
/// # Panics
///
/// Panics if `num_slices` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::indexing::slice_for;
/// use nocstar_types::{PageSize, VirtPageNum};
///
/// let vpn = VirtPageNum::new(37, PageSize::Size4K);
/// assert_eq!(slice_for(vpn, 32).index(), 5);
/// ```
pub fn slice_for(vpn: VirtPageNum, num_slices: usize) -> SliceId {
    assert!(num_slices > 0, "need at least one slice");
    SliceId::new((vpn.number() % num_slices as u64) as usize)
}

/// The cluster-local home slice of a virtual page for a requester in a
/// hierarchical organization: the same set-interleaved striping as
/// [`slice_for`], but over the `cluster_size` slices of the *requester's
/// own cluster*. Every cluster homes every page residue, so lookups stay
/// intra-cluster by construction (capacity is shared per cluster, and
/// shootdowns must invalidate each cluster's replica).
///
/// # Panics
///
/// Panics if `cluster_size` is zero.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::indexing::cluster_home_for;
/// use nocstar_types::{CoreId, PageSize, VirtPageNum};
///
/// let vpn = VirtPageNum::new(37, PageSize::Size4K);
/// // Core 21 lives in cluster 1 (tiles 16..32): home = 16 + 37 % 16.
/// assert_eq!(cluster_home_for(vpn, CoreId::new(21), 16).index(), 21);
/// ```
pub fn cluster_home_for(vpn: VirtPageNum, requester: CoreId, cluster_size: usize) -> SliceId {
    assert!(cluster_size > 0, "need at least one slice per cluster");
    let base = requester.index() - requester.index() % cluster_size;
    SliceId::new(base + (vpn.number() % cluster_size as u64) as usize)
}

/// The home bank of a virtual page in a `num_banks`-bank monolithic shared
/// L2 TLB.
///
/// # Panics
///
/// Panics if `num_banks` is zero.
pub fn bank_for(vpn: VirtPageNum, num_banks: usize) -> BankId {
    assert!(num_banks > 0, "need at least one bank");
    BankId::new((vpn.number() % num_banks as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::PageSize;
    use proptest::prelude::*;

    fn v4k(n: u64) -> VirtPageNum {
        VirtPageNum::new(n, PageSize::Size4K)
    }

    #[test]
    fn consecutive_pages_stripe_across_slices() {
        let slices: Vec<usize> = (0..8).map(|n| slice_for(v4k(n), 4).index()).collect();
        assert_eq!(slices, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn single_slice_gets_everything() {
        for n in [0u64, 1, 99, u64::MAX] {
            assert_eq!(slice_for(v4k(n), 1).index(), 0);
        }
    }

    #[test]
    fn superpages_index_by_their_own_frame_number() {
        let v2m = VirtPageNum::new(5, PageSize::Size2M);
        assert_eq!(slice_for(v2m, 4).index(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slices_rejected() {
        let _ = slice_for(v4k(0), 0);
    }

    proptest! {
        /// Indexing is total and in range, and uniform strides of
        /// co-prime-to-slice-count step visit all slices.
        #[test]
        fn prop_slice_in_range(n in any::<u64>(), slices in 1usize..512) {
            prop_assert!(slice_for(v4k(n), slices).index() < slices);
            prop_assert!(bank_for(v4k(n), slices).index() < slices);
        }

        /// A long run of consecutive pages is perfectly balanced.
        #[test]
        fn prop_sequential_pages_are_balanced(start in 0u64..1_000_000, slices in 1usize..64) {
            let mut counts = vec![0u64; slices];
            let pages = (slices * 10) as u64;
            for n in start..start + pages {
                counts[slice_for(v4k(n), slices).index()] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == 10));
        }

        /// Cluster homing is a function: every (core, page) pair maps to
        /// exactly one slice, always inside the requester's own cluster
        /// (intra-cluster homing is not merely preferred but guaranteed,
        /// since each cluster homes every set residue).
        #[test]
        fn prop_cluster_home_is_intra_cluster(
            n in any::<u64>(),
            cluster_size in 1usize..64,
            clusters in 1usize..32,
            core_off in any::<usize>(),
        ) {
            let cores = cluster_size * clusters;
            let core = CoreId::new(core_off % cores);
            let home = cluster_home_for(v4k(n), core, cluster_size);
            prop_assert!(home.index() < cores);
            prop_assert_eq!(
                home.index() / cluster_size,
                core.index() / cluster_size,
                "home must live in the requester's cluster"
            );
            // Deterministic: the same inputs always give the same home.
            prop_assert_eq!(home, cluster_home_for(v4k(n), core, cluster_size));
        }

        /// Within one cluster, the page-residue -> slice map is a total
        /// partition: consecutive residues cover every slice of the
        /// cluster exactly once.
        #[test]
        fn prop_cluster_residues_partition_the_cluster(
            cluster_size in 1usize..64,
            clusters in 1usize..32,
            core_off in any::<usize>(),
            start in 0u64..1_000_000,
        ) {
            let cores = cluster_size * clusters;
            let core = CoreId::new(core_off % cores);
            let base = core.index() - core.index() % cluster_size;
            let homes: std::collections::BTreeSet<usize> = (start..start + cluster_size as u64)
                .map(|n| cluster_home_for(v4k(n), core, cluster_size).index())
                .collect();
            let want: std::collections::BTreeSet<usize> = (base..base + cluster_size).collect();
            prop_assert_eq!(homes, want);
        }

        /// Cluster homing agrees with flat striping *within* the cluster:
        /// two cores of the same cluster always agree on a page's home
        /// (no aliasing of one page to two slices of one cluster).
        #[test]
        fn prop_same_cluster_cores_agree(
            n in any::<u64>(),
            cluster_size in 1usize..64,
            a_off in any::<usize>(),
            b_off in any::<usize>(),
        ) {
            let a = CoreId::new(a_off % cluster_size);
            let b = CoreId::new(b_off % cluster_size);
            prop_assert_eq!(
                cluster_home_for(v4k(n), a, cluster_size),
                cluster_home_for(v4k(n), b, cluster_size)
            );
        }
    }
}
