//! A shared-L2-TLB slice (or monolithic bank): contents plus port timing.
//!
//! Paper §IV: each private L2 TLB and each shared slice has 2 read ports
//! and 1 write port, and "our simulator models the L2 TLB accesses as being
//! pipelined, so one request can be serviced every cycle". A request that
//! arrives while all ports are issuing waits; the wait shows up as port
//! contention in the access latency.

use crate::entry::TlbEntry;
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::SetAssocTlb;
use crate::sram;
use nocstar_stats::latency::LatencyRecorder;
use nocstar_stats::Log2Histogram;
use nocstar_types::time::{Cycle, Cycles};
use nocstar_types::{Asid, VirtAddr, VirtPageNum};

/// Port configuration of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicePorts {
    /// Concurrent read issues per cycle.
    pub read: usize,
    /// Concurrent write issues per cycle.
    pub write: usize,
}

impl Default for SlicePorts {
    /// The paper's 2R/1W configuration.
    fn default() -> Self {
        Self { read: 2, write: 1 }
    }
}

/// A TLB slice: a set-associative content array plus a pipelined-port
/// timing model.
///
/// Timing and content are deliberately separate operations: the simulator
/// first calls [`schedule_read`](Self::schedule_read) to learn *when* the
/// lookup completes, then performs the functional
/// [`lookup`](Self::lookup) whose result becomes visible at that time.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::slice::{SlicePorts, TlbSlice};
/// use nocstar_types::{Cycle, Cycles};
///
/// let mut slice = TlbSlice::new(1024, 8, SlicePorts::default());
/// assert_eq!(slice.lookup_latency(), Cycles::new(8)); // Fig 3 model @1024 entries
/// let t0 = Cycle::new(100);
/// let first = slice.schedule_read(t0);
/// let second = slice.schedule_read(t0);
/// let third = slice.schedule_read(t0); // both read ports busy: waits 1 cycle
/// assert_eq!(first, t0 + slice.lookup_latency());
/// assert_eq!(second, t0 + slice.lookup_latency());
/// assert_eq!(third, t0 + Cycles::ONE + slice.lookup_latency());
/// ```
#[derive(Debug, Clone)]
pub struct TlbSlice {
    array: SetAssocTlb,
    lookup_latency: Cycles,
    read_free: Vec<Cycle>,
    write_free: Vec<Cycle>,
    queue_delay: LatencyRecorder,
    queue_wait: Log2Histogram,
    /// Degraded miss-only mode (fault injection): lookups miss and
    /// inserts are dropped, but invalidations still apply so the contents
    /// stay coherent for when the slice comes back online.
    offline: bool,
}

impl TlbSlice {
    /// Builds a slice with `entries` capacity and `ways` associativity
    /// (LRU), deriving lookup latency from the SRAM model of Fig 3.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or port count is zero, or if `ways` does not
    /// divide `entries`.
    pub fn new(entries: usize, ways: usize, ports: SlicePorts) -> Self {
        Self::with_latency(entries, ways, ports, sram::lookup_cycles(entries))
    }

    /// Builds a slice with an explicit lookup latency (used for the
    /// idealized configurations of Fig 4).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new).
    pub fn with_latency(
        entries: usize,
        ways: usize,
        ports: SlicePorts,
        lookup_latency: Cycles,
    ) -> Self {
        assert!(ports.read > 0 && ports.write > 0, "ports must be nonzero");
        Self {
            array: SetAssocTlb::new(entries, ways, ReplacementPolicy::Lru),
            lookup_latency,
            read_free: vec![Cycle::ZERO; ports.read],
            write_free: vec![Cycle::ZERO; ports.write],
            queue_delay: LatencyRecorder::new(),
            queue_wait: Log2Histogram::new(),
            offline: false,
        }
    }

    /// Puts the slice in (or takes it out of) degraded miss-only mode:
    /// while offline, [`lookup`](Self::lookup)/[`lookup_addr`](Self::lookup_addr)
    /// miss without touching the array and [`insert`](Self::insert) drops
    /// the entry. Invalidations and flushes still apply, preserving
    /// shootdown correctness across the outage.
    pub fn set_offline(&mut self, offline: bool) {
        self.offline = offline;
    }

    /// Whether the slice is in degraded miss-only mode.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Sets the content array's index divisor (see
    /// [`SetAssocTlb::set_index_divisor`]): a slice homed by `vpn % N`
    /// must index its sets by `vpn / N`.
    pub fn set_index_divisor(&mut self, divisor: u64) {
        self.array.set_index_divisor(divisor);
    }

    /// The SRAM pipeline depth: cycles from issue to result.
    pub fn lookup_latency(&self) -> Cycles {
        self.lookup_latency
    }

    /// Schedules a read arriving at `now`; returns when its result is
    /// available. Ports are pipelined: each accepts one issue per cycle.
    pub fn schedule_read(&mut self, now: Cycle) -> Cycle {
        Self::schedule_on(
            &mut self.read_free,
            now,
            self.lookup_latency,
            &mut self.queue_delay,
            &mut self.queue_wait,
        )
    }

    /// Schedules a write (insert) arriving at `now`; returns when it
    /// completes.
    pub fn schedule_write(&mut self, now: Cycle) -> Cycle {
        Self::schedule_on(
            &mut self.write_free,
            now,
            self.lookup_latency,
            &mut self.queue_delay,
            &mut self.queue_wait,
        )
    }

    fn schedule_on(
        ports: &mut [Cycle],
        now: Cycle,
        latency: Cycles,
        queue_delay: &mut LatencyRecorder,
        queue_wait: &mut Log2Histogram,
    ) -> Cycle {
        // nocstar-lint: allow(sim-unwrap): port count is at least 1 by construction
        let earliest = ports.iter_mut().min().expect("ports are nonzero");
        let issue = now.max(*earliest);
        *earliest = issue + Cycles::ONE;
        queue_delay.record(issue - now);
        queue_wait.record((issue - now).value());
        issue + latency
    }

    /// Functional lookup (content + recency + hit/miss stats). Always a
    /// miss while the slice is offline (the array is not consulted, so
    /// its hit/miss statistics are untouched by degraded-mode probes).
    pub fn lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        if self.offline {
            return None;
        }
        self.array.lookup(asid, vpn)
    }

    /// Functional fast-forward lookup (`SAMPLING.md §2`): updates
    /// recency like [`lookup`](Self::lookup) but records no hit/miss
    /// statistics. Always a miss while the slice is offline.
    pub fn touch(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        if self.offline {
            return None;
        }
        self.array.touch(asid, vpn)
    }

    /// Looks up a virtual address, probing superpage sizes before 4 KiB —
    /// the slice does not know the backing page size in advance.
    pub fn lookup_addr(&mut self, asid: Asid, va: VirtAddr) -> Option<TlbEntry> {
        use nocstar_types::PageSize;
        if self.offline {
            return None;
        }
        for size in [PageSize::Size1G, PageSize::Size2M] {
            if self.array.probe(asid, va.page_number(size)).is_some() {
                return self.array.lookup(asid, va.page_number(size));
            }
        }
        self.array.lookup(asid, va.page_number(PageSize::Size4K))
    }

    /// Functional insert; returns the evicted entry if any. Dropped (no
    /// eviction, no array update) while the slice is offline.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        if self.offline {
            return None;
        }
        self.array.insert(entry)
    }

    /// Invalidates one translation; returns whether it was present.
    pub fn invalidate(&mut self, asid: Asid, vpn: VirtPageNum) -> bool {
        self.array.invalidate(asid, vpn)
    }

    /// Flushes all non-global entries; returns the number dropped.
    pub fn flush_non_global(&mut self) -> usize {
        self.array.flush_non_global()
    }

    /// Read-only access to the underlying array (stats, occupancy, probes).
    pub fn array(&self) -> &SetAssocTlb {
        &self.array
    }

    /// Clears hit/miss and port-queueing statistics (e.g. after warmup),
    /// leaving contents and port timing intact.
    pub fn reset_stats(&mut self) {
        self.array.reset_stats();
        self.queue_delay = LatencyRecorder::new();
        self.queue_wait = Log2Histogram::new();
    }

    /// Distribution of cycles requests spent waiting for a free port.
    pub fn queue_delay(&self) -> &LatencyRecorder {
        &self.queue_delay
    }

    /// The same port-wait distribution, log2-bucketed for metric snapshots.
    pub fn queue_wait_histogram(&self) -> &Log2Histogram {
        &self.queue_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::{PageSize, PhysPageNum};

    fn slice() -> TlbSlice {
        TlbSlice::new(1024, 8, SlicePorts::default())
    }

    #[test]
    fn latency_comes_from_sram_model() {
        assert_eq!(slice().lookup_latency(), sram::lookup_cycles(1024));
        let custom = TlbSlice::with_latency(1024, 8, SlicePorts::default(), Cycles::new(3));
        assert_eq!(custom.lookup_latency(), Cycles::new(3));
    }

    #[test]
    fn reads_pipeline_one_per_port_per_cycle() {
        let mut s = slice();
        let lat = s.lookup_latency();
        let t = Cycle::new(10);
        // 2 read ports: requests 1-2 issue at t, 3-4 at t+1, 5 at t+2.
        let done: Vec<Cycle> = (0..5).map(|_| s.schedule_read(t)).collect();
        assert_eq!(done[0], t + lat);
        assert_eq!(done[1], t + lat);
        assert_eq!(done[2], t + Cycles::ONE + lat);
        assert_eq!(done[3], t + Cycles::ONE + lat);
        assert_eq!(done[4], t + Cycles::new(2) + lat);
    }

    #[test]
    fn idle_ports_do_not_delay_later_requests() {
        let mut s = slice();
        let lat = s.lookup_latency();
        s.schedule_read(Cycle::new(0));
        // Long after the pipeline drained: no queueing.
        assert_eq!(s.schedule_read(Cycle::new(100)), Cycle::new(100) + lat);
    }

    #[test]
    fn writes_use_their_own_port() {
        let mut s = slice();
        let lat = s.lookup_latency();
        let t = Cycle::new(5);
        // Saturate both read ports; a write still issues immediately.
        s.schedule_read(t);
        s.schedule_read(t);
        assert_eq!(s.schedule_write(t), t + lat);
        // Second same-cycle write queues behind the single write port.
        assert_eq!(s.schedule_write(t), t + Cycles::ONE + lat);
    }

    #[test]
    fn queue_delay_is_recorded() {
        let mut s = slice();
        let t = Cycle::new(0);
        s.schedule_read(t);
        s.schedule_read(t);
        s.schedule_read(t); // waits one cycle
        assert_eq!(s.queue_delay().count(), 3);
        assert_eq!(s.queue_delay().max(), Cycles::ONE);
    }

    #[test]
    fn lookup_addr_finds_superpages() {
        let mut s = slice();
        let asid = Asid::new(1);
        s.insert(TlbEntry::new(
            asid,
            VirtPageNum::new(3, PageSize::Size2M),
            PhysPageNum::new(8, PageSize::Size2M),
        ));
        let hit = s
            .lookup_addr(asid, VirtAddr::new(3 * 0x20_0000 + 0x123))
            .unwrap();
        assert_eq!(hit.page_size(), PageSize::Size2M);
        assert!(s.lookup_addr(asid, VirtAddr::new(0x9999_0000)).is_none());
    }

    #[test]
    fn content_operations_delegate_to_array() {
        let mut s = slice();
        let asid = Asid::new(1);
        let vpn = VirtPageNum::new(10, PageSize::Size4K);
        s.insert(TlbEntry::new(
            asid,
            vpn,
            PhysPageNum::new(1, PageSize::Size4K),
        ));
        assert_eq!(s.array().occupancy(), 1);
        assert!(s.invalidate(asid, vpn));
        assert_eq!(s.array().occupancy(), 0);
    }

    #[test]
    fn touch_is_stat_free_and_respects_offline() {
        let mut s = slice();
        let asid = Asid::new(1);
        let vpn = VirtPageNum::new(10, PageSize::Size4K);
        s.insert(TlbEntry::new(
            asid,
            vpn,
            PhysPageNum::new(1, PageSize::Size4K),
        ));
        assert!(s.touch(asid, vpn).is_some());
        assert_eq!(s.array().stats().accesses(), 0);
        s.set_offline(true);
        assert!(s.touch(asid, vpn).is_none(), "offline touches miss");
    }

    #[test]
    fn offline_slice_misses_drops_inserts_but_still_invalidates() {
        let mut s = slice();
        let asid = Asid::new(1);
        let vpn = VirtPageNum::new(10, PageSize::Size4K);
        let entry = TlbEntry::new(asid, vpn, PhysPageNum::new(1, PageSize::Size4K));
        s.insert(entry);
        let hits_before = s.array().stats().hits();

        s.set_offline(true);
        assert!(s.is_offline());
        assert!(s.lookup(asid, vpn).is_none(), "offline lookups miss");
        assert_eq!(
            s.array().stats().hits(),
            hits_before,
            "degraded probes must not touch array stats"
        );
        assert!(s.insert(entry).is_none(), "offline inserts are dropped");
        assert!(s.invalidate(asid, vpn), "invalidations still apply");

        s.set_offline(false);
        assert!(
            s.lookup(asid, vpn).is_none(),
            "the invalidation during the outage must stick"
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ports_rejected() {
        let _ = TlbSlice::new(64, 4, SlicePorts { read: 0, write: 1 });
    }
}
