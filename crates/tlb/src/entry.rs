//! The TLB entry format.
//!
//! Paper §III-A: "Each entry in a slice includes a valid bit, the
//! translation and a context ID associated with the translation." Validity
//! is represented here by presence in the array, so the entry itself carries
//! the context id (ASID), the virtual page tag, and the physical frame.

use nocstar_types::{Asid, PageSize, PhysPageNum, VirtAddr, VirtPageNum};
use std::fmt;

/// One cached virtual-to-physical translation.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::entry::TlbEntry;
/// use nocstar_types::{Asid, PageSize, PhysPageNum, VirtPageNum};
///
/// let e = TlbEntry::new(
///     Asid::new(3),
///     VirtPageNum::new(0x10, PageSize::Size2M),
///     PhysPageNum::new(0x99, PageSize::Size2M),
/// );
/// assert_eq!(e.page_size(), PageSize::Size2M);
/// assert!(e.matches(Asid::new(3), VirtPageNum::new(0x10, PageSize::Size2M)));
/// assert!(!e.matches(Asid::new(4), VirtPageNum::new(0x10, PageSize::Size2M)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbEntry {
    asid: Asid,
    vpn: VirtPageNum,
    ppn: PhysPageNum,
    global: bool,
}

impl TlbEntry {
    /// Builds an entry for a non-global (per-address-space) translation.
    ///
    /// # Panics
    ///
    /// Panics if the virtual and physical page sizes differ — a translation
    /// always maps same-sized pages.
    pub fn new(asid: Asid, vpn: VirtPageNum, ppn: PhysPageNum) -> Self {
        assert_eq!(
            vpn.page_size(),
            ppn.page_size(),
            "translation must map equal page sizes"
        );
        Self {
            asid,
            vpn,
            ppn,
            global: false,
        }
    }

    /// Builds a global translation (kernel mappings shared by all address
    /// spaces), which survives ASID-targeted invalidations.
    pub fn new_global(vpn: VirtPageNum, ppn: PhysPageNum) -> Self {
        let mut e = Self::new(Asid::KERNEL, vpn, ppn);
        e.global = true;
        e
    }

    /// The context (address space) id this entry belongs to.
    pub fn asid(self) -> Asid {
        self.asid
    }

    /// The virtual page tag.
    pub fn vpn(self) -> VirtPageNum {
        self.vpn
    }

    /// The translated physical frame.
    pub fn ppn(self) -> PhysPageNum {
        self.ppn
    }

    /// The page size of the mapping.
    pub fn page_size(self) -> PageSize {
        self.vpn.page_size()
    }

    /// Whether this is a global (all-ASID) mapping.
    pub fn is_global(self) -> bool {
        self.global
    }

    /// True when this entry translates `vpn` in address space `asid`
    /// (global entries match any ASID).
    pub fn matches(self, asid: Asid, vpn: VirtPageNum) -> bool {
        self.vpn == vpn && (self.global || self.asid == asid)
    }

    /// Translates a virtual address through this entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address is not inside this entry's
    /// virtual page.
    pub fn translate(self, va: VirtAddr) -> nocstar_types::PhysAddr {
        debug_assert_eq!(
            va.page_number(self.page_size()),
            self.vpn,
            "address {va} is not in page {}",
            self.vpn
        );
        self.ppn.base().offset(va.page_offset(self.page_size()))
    }
}

impl fmt::Display for TlbEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{}{}",
            self.asid,
            self.vpn,
            self.ppn,
            if self.global { " (global)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_4k(asid: u16, vpn: u64, ppn: u64) -> TlbEntry {
        TlbEntry::new(
            Asid::new(asid),
            VirtPageNum::new(vpn, PageSize::Size4K),
            PhysPageNum::new(ppn, PageSize::Size4K),
        )
    }

    #[test]
    fn matches_requires_same_asid_and_vpn() {
        let e = entry_4k(1, 0x10, 0x20);
        assert!(e.matches(Asid::new(1), VirtPageNum::new(0x10, PageSize::Size4K)));
        assert!(!e.matches(Asid::new(2), VirtPageNum::new(0x10, PageSize::Size4K)));
        assert!(!e.matches(Asid::new(1), VirtPageNum::new(0x11, PageSize::Size4K)));
        // A 2M page with the same frame index is a different page.
        assert!(!e.matches(Asid::new(1), VirtPageNum::new(0x10, PageSize::Size2M)));
    }

    #[test]
    fn global_entries_match_any_asid() {
        let e = TlbEntry::new_global(
            VirtPageNum::new(0x10, PageSize::Size4K),
            PhysPageNum::new(0x20, PageSize::Size4K),
        );
        assert!(e.is_global());
        assert!(e.matches(Asid::new(7), VirtPageNum::new(0x10, PageSize::Size4K)));
    }

    #[test]
    fn translate_preserves_page_offset() {
        let e = entry_4k(1, 2, 5);
        let pa = e.translate(VirtAddr::new(0x2abc));
        assert_eq!(pa.value(), 0x5abc);
    }

    #[test]
    #[should_panic(expected = "equal page sizes")]
    fn mismatched_page_sizes_rejected() {
        let _ = TlbEntry::new(
            Asid::new(1),
            VirtPageNum::new(0, PageSize::Size4K),
            PhysPageNum::new(0, PageSize::Size2M),
        );
    }

    #[test]
    fn display_shows_mapping() {
        let text = entry_4k(1, 2, 3).to_string();
        assert!(text.contains("asid1"));
        assert!(text.contains("->"));
    }
}
