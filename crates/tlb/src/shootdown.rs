//! TLB shootdowns and invalidation-leader policies (paper §III-G).
//!
//! When the OS modifies a page-table entry it shoots down stale TLB copies.
//! In NOCSTAR, naively letting every core relay an invalidation to the home
//! slice can congest the network, so the paper designates *invalidation
//! leaders*: every core invalidates its private L1 locally, but only the
//! leader of its group relays the invalidation to the shared slice.

use nocstar_types::{Asid, CoreId, VirtPageNum};
use std::fmt;

/// One translation to shoot down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Invalidation {
    /// Address space whose mapping changed.
    pub asid: Asid,
    /// The virtual page whose translation is now stale.
    pub vpn: VirtPageNum,
}

impl fmt::Display for Invalidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalidate {} {}", self.asid, self.vpn)
    }
}

/// Who is allowed to relay invalidations to the shared L2 TLB slices.
///
/// Fig 16 (right) sweeps the leader granularity: one leader per 4 cores,
/// per 8 cores, and a single leader for the whole chip, against the
/// baseline of every core relaying its own invalidations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LeaderPolicy {
    /// Every core relays its own invalidations (no leaders). Simple, but
    /// can flood the interconnect when many cores shoot down the same page.
    #[default]
    EveryCore,
    /// One leader per contiguous group of `n` cores: core `c`'s leader is
    /// the first core of its group, `(c / n) * n`.
    PerGroup(
        /// Cores per leader group; must be nonzero.
        usize,
    ),
    /// A single chip-wide leader (core 0).
    Single,
}

impl LeaderPolicy {
    /// The core that relays invalidations on behalf of `core`.
    ///
    /// # Panics
    ///
    /// Panics if a `PerGroup` size is zero.
    pub fn leader_for(self, core: CoreId) -> CoreId {
        match self {
            LeaderPolicy::EveryCore => core,
            LeaderPolicy::PerGroup(n) => {
                assert!(n > 0, "leader group size must be nonzero");
                CoreId::new((core.index() / n) * n)
            }
            LeaderPolicy::Single => CoreId::new(0),
        }
    }

    /// How many distinct leaders exist on a chip with `cores` cores.
    pub fn leader_count(self, cores: usize) -> usize {
        match self {
            LeaderPolicy::EveryCore => cores,
            LeaderPolicy::PerGroup(n) => {
                assert!(n > 0, "leader group size must be nonzero");
                cores.div_ceil(n)
            }
            LeaderPolicy::Single => 1,
        }
    }

    /// Whether `core` is a leader under this policy.
    pub fn is_leader(self, core: CoreId) -> bool {
        self.leader_for(core) == core
    }
}

impl fmt::Display for LeaderPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaderPolicy::EveryCore => write!(f, "every-core"),
            LeaderPolicy::PerGroup(n) => write!(f, "per-{n}-core"),
            LeaderPolicy::Single => write!(f, "single-leader"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::PageSize;
    use proptest::prelude::*;

    #[test]
    fn every_core_is_its_own_leader() {
        let p = LeaderPolicy::EveryCore;
        for i in 0..8 {
            assert_eq!(p.leader_for(CoreId::new(i)), CoreId::new(i));
            assert!(p.is_leader(CoreId::new(i)));
        }
        assert_eq!(p.leader_count(8), 8);
    }

    #[test]
    fn per_group_leaders_are_group_heads() {
        let p = LeaderPolicy::PerGroup(4);
        assert_eq!(p.leader_for(CoreId::new(0)), CoreId::new(0));
        assert_eq!(p.leader_for(CoreId::new(3)), CoreId::new(0));
        assert_eq!(p.leader_for(CoreId::new(4)), CoreId::new(4));
        assert_eq!(p.leader_for(CoreId::new(31)), CoreId::new(28));
        assert_eq!(p.leader_count(32), 8);
        assert!(p.is_leader(CoreId::new(28)));
        assert!(!p.is_leader(CoreId::new(29)));
    }

    #[test]
    fn single_leader_is_core_zero() {
        let p = LeaderPolicy::Single;
        assert_eq!(p.leader_for(CoreId::new(17)), CoreId::new(0));
        assert_eq!(p.leader_count(64), 1);
    }

    #[test]
    fn uneven_groups_round_up_leader_count() {
        assert_eq!(LeaderPolicy::PerGroup(8).leader_count(12), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_group_size_rejected() {
        let _ = LeaderPolicy::PerGroup(0).leader_for(CoreId::new(1));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(LeaderPolicy::PerGroup(4).to_string(), "per-4-core");
        assert_eq!(LeaderPolicy::Single.to_string(), "single-leader");
    }

    #[test]
    fn invalidation_displays_its_target() {
        let inv = Invalidation {
            asid: Asid::new(2),
            vpn: VirtPageNum::new(9, PageSize::Size4K),
        };
        assert!(inv.to_string().contains("asid2"));
    }

    proptest! {
        /// Leaders are idempotent fixed points: the leader of a leader is
        /// itself, and every core's leader is a leader.
        #[test]
        fn prop_leader_is_fixed_point(core in 0usize..512, group in 1usize..64) {
            for policy in [
                LeaderPolicy::EveryCore,
                LeaderPolicy::PerGroup(group),
                LeaderPolicy::Single,
            ] {
                let leader = policy.leader_for(CoreId::new(core));
                prop_assert_eq!(policy.leader_for(leader), leader);
                prop_assert!(policy.is_leader(leader));
                prop_assert!(leader.index() <= core);
            }
        }
    }
}
