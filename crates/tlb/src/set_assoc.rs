//! A set-associative TLB array with modulo indexing.
//!
//! Paper §III-E: "L1 and L2 TLBs use the lower-order bits of the virtual
//! page number to choose the desired set using modulo-indexing, and use LRU
//! replacement." Entries of different page sizes coexist in one array (as in
//! Haswell's L2 TLB, which holds 4 KiB and 2 MiB translations concurrently);
//! each is indexed by its own page-size-granular VPN and tagged with its
//! size, so same-frame-index pages of different sizes never alias.

use crate::entry::TlbEntry;
use crate::replacement::{ReplacementPolicy, ReplacementState};
use nocstar_stats::counter::HitMiss;
use nocstar_types::{Asid, VirtPageNum};

#[derive(Debug, Clone)]
struct Way {
    entry: TlbEntry,
    inserted: u64,
    used: u64,
}

/// A set-associative array of [`TlbEntry`]s.
///
/// # Examples
///
/// ```
/// use nocstar_tlb::set_assoc::SetAssocTlb;
/// use nocstar_tlb::entry::TlbEntry;
/// use nocstar_tlb::replacement::ReplacementPolicy;
/// use nocstar_types::{Asid, PageSize, PhysPageNum, VirtPageNum};
///
/// let mut tlb = SetAssocTlb::new(1024, 8, ReplacementPolicy::Lru);
/// let vpn = VirtPageNum::new(42, PageSize::Size4K);
/// let asid = Asid::new(1);
/// assert!(tlb.lookup(asid, vpn).is_none());
/// tlb.insert(TlbEntry::new(asid, vpn, PhysPageNum::new(7, PageSize::Size4K)));
/// assert_eq!(tlb.lookup(asid, vpn).unwrap().ppn().number(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    sets: Vec<Vec<Way>>,
    ways: usize,
    state: ReplacementState,
    stats: HitMiss,
    index_divisor: u64,
}

impl SetAssocTlb {
    /// Builds an array with `entries` total entries and `ways` associativity.
    ///
    /// A fully-associative array is `ways == entries`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `ways` is zero, or `ways` does not
    /// divide `entries`.
    pub fn new(entries: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(entries > 0 && ways > 0, "TLB dimensions must be nonzero");
        assert_eq!(
            entries % ways,
            0,
            "ways ({ways}) must divide total entries ({entries})"
        );
        let num_sets = entries / ways;
        Self {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            state: ReplacementState::new(policy),
            stats: HitMiss::new(),
            index_divisor: 1,
        }
    }

    /// Sets the index divisor: set selection uses `(vpn / divisor) % sets`.
    ///
    /// A shared slice/bank that receives only VPNs congruent to its own id
    /// modulo the slice count must divide the stripe bits out first;
    /// otherwise only `sets / stride` of its sets are ever used and most of
    /// its capacity is dead (the classic stripe/index aliasing pathology).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn set_index_divisor(&mut self, divisor: u64) {
        assert!(divisor > 0, "index divisor must be nonzero");
        self.index_divisor = divisor;
    }

    /// Total entry capacity.
    pub fn entries(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.state.policy()
    }

    #[inline]
    fn set_index(&self, vpn: VirtPageNum) -> usize {
        ((vpn.number() / self.index_divisor) % self.sets.len() as u64) as usize
    }

    /// Looks up a translation, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        let set = self.set_index(vpn);
        let stamp = self.state.tick();
        let found = self.sets[set]
            .iter_mut()
            .find(|w| w.entry.matches(asid, vpn));
        match found {
            Some(way) => {
                way.used = stamp;
                self.stats.hit();
                Some(way.entry)
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Looks up a translation, updating recency but recording **no**
    /// hit/miss statistics — the functional fast-forward entry point
    /// (`SAMPLING.md §2`): contents and LRU order stay warm while
    /// measurement statistics stay untouched.
    pub fn touch(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        let set = self.set_index(vpn);
        let stamp = self.state.tick();
        self.sets[set]
            .iter_mut()
            .find(|w| w.entry.matches(asid, vpn))
            .map(|way| {
                way.used = stamp;
                way.entry
            })
    }

    /// Looks up a translation without touching recency or statistics
    /// (used by snooping and verification paths).
    pub fn probe(&self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        let set = self.set_index(vpn);
        self.sets[set]
            .iter()
            .find(|w| w.entry.matches(asid, vpn))
            .map(|w| w.entry)
    }

    /// Inserts a translation, returning the evicted entry if the set was
    /// full. Re-inserting an existing (asid, vpn) pair refreshes it in
    /// place and returns `None`.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        let set = self.set_index(entry.vpn());
        let stamp = self.state.tick();
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.entry.matches(entry.asid(), entry.vpn()))
        {
            way.entry = entry;
            way.used = stamp;
            return None;
        }
        if self.sets[set].len() < self.ways {
            self.sets[set].push(Way {
                entry,
                inserted: stamp,
                used: stamp,
            });
            return None;
        }
        let stamps: Vec<(u64, u64)> = self.sets[set]
            .iter()
            .map(|w| (w.inserted, w.used))
            .collect();
        let victim = self.state.victim(&stamps);
        let evicted = std::mem::replace(
            &mut self.sets[set][victim],
            Way {
                entry,
                inserted: stamp,
                used: stamp,
            },
        );
        Some(evicted.entry)
    }

    /// Invalidates one translation; returns whether it was present.
    pub fn invalidate(&mut self, asid: Asid, vpn: VirtPageNum) -> bool {
        let set = self.set_index(vpn);
        let before = self.sets[set].len();
        self.sets[set].retain(|w| !w.entry.matches(asid, vpn));
        self.sets[set].len() != before
    }

    /// Invalidates all non-global translations of an address space;
    /// returns how many were dropped.
    pub fn invalidate_asid(&mut self, asid: Asid) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|w| w.entry.is_global() || w.entry.asid() != asid);
            dropped += before - set.len();
        }
        dropped
    }

    /// Flushes all non-global translations (an x86 CR3 write); returns how
    /// many were dropped.
    pub fn flush_non_global(&mut self) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|w| w.entry.is_global());
            dropped += before - set.len();
        }
        dropped
    }

    /// Flushes everything, including global translations.
    pub fn flush_all(&mut self) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            dropped += set.len();
            set.clear();
        }
        dropped
    }

    /// Number of valid entries currently cached.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all currently valid entries (set order).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.sets.iter().flatten().map(|w| &w.entry)
    }

    /// Hit/miss statistics accumulated by [`lookup`](Self::lookup).
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Clears accumulated statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocstar_types::{PageSize, PhysPageNum};
    use proptest::prelude::*;

    fn e4k(asid: u16, vpn: u64) -> TlbEntry {
        TlbEntry::new(
            Asid::new(asid),
            VirtPageNum::new(vpn, PageSize::Size4K),
            PhysPageNum::new(vpn ^ 0xabc, PageSize::Size4K),
        )
    }

    fn v4k(vpn: u64) -> VirtPageNum {
        VirtPageNum::new(vpn, PageSize::Size4K)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 100));
        assert!(tlb.lookup(Asid::new(1), v4k(100)).is_some());
        assert!(tlb.lookup(Asid::new(1), v4k(101)).is_none());
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn touch_updates_recency_but_not_stats() {
        // 4 entries, 2 ways => 2 sets. VPNs 0,2,4 map to set 0.
        let mut tlb = SetAssocTlb::new(4, 2, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 0));
        tlb.insert(e4k(1, 2));
        // touch vpn 0 so vpn 2 becomes LRU — same effect as lookup...
        assert!(tlb.touch(Asid::new(1), v4k(0)).is_some());
        assert!(tlb.touch(Asid::new(1), v4k(99)).is_none());
        // ...but without recording any statistics.
        assert_eq!(tlb.stats().accesses(), 0);
        let evicted = tlb.insert(e4k(1, 4)).expect("set was full");
        assert_eq!(evicted.vpn().number(), 2);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 5));
        assert!(tlb.probe(Asid::new(1), v4k(5)).is_some());
        assert_eq!(tlb.stats().accesses(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_set() {
        // 4 entries, 2 ways => 2 sets. VPNs 0,2,4 all map to set 0.
        let mut tlb = SetAssocTlb::new(4, 2, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 0));
        tlb.insert(e4k(1, 2));
        // Touch vpn 0 so vpn 2 becomes LRU.
        assert!(tlb.lookup(Asid::new(1), v4k(0)).is_some());
        let evicted = tlb.insert(e4k(1, 4)).expect("set was full");
        assert_eq!(evicted.vpn().number(), 2);
        assert!(tlb.probe(Asid::new(1), v4k(0)).is_some());
        assert!(tlb.probe(Asid::new(1), v4k(4)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut tlb = SetAssocTlb::new(4, 2, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 0));
        let updated = TlbEntry::new(
            Asid::new(1),
            v4k(0),
            PhysPageNum::new(999, PageSize::Size4K),
        );
        assert!(tlb.insert(updated).is_none());
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.probe(Asid::new(1), v4k(0)).unwrap().ppn().number(), 999);
    }

    #[test]
    fn different_asids_do_not_alias() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 7));
        assert!(tlb.lookup(Asid::new(2), v4k(7)).is_none());
    }

    #[test]
    fn page_sizes_do_not_alias() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 7));
        let vpn_2m = VirtPageNum::new(7, PageSize::Size2M);
        assert!(tlb.lookup(Asid::new(1), vpn_2m).is_none());
    }

    #[test]
    fn invalidate_removes_exactly_one_translation() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 7));
        tlb.insert(e4k(1, 8));
        assert!(tlb.invalidate(Asid::new(1), v4k(7)));
        assert!(!tlb.invalidate(Asid::new(1), v4k(7)));
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn asid_invalidation_spares_globals() {
        let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        tlb.insert(e4k(1, 1));
        tlb.insert(e4k(2, 2));
        tlb.insert(TlbEntry::new_global(
            v4k(3),
            PhysPageNum::new(3, PageSize::Size4K),
        ));
        assert_eq!(tlb.invalidate_asid(Asid::new(1)), 1);
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.flush_non_global(), 1);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.flush_all(), 1);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn fully_associative_uses_whole_capacity_for_one_hot_set() {
        let mut tlb = SetAssocTlb::new(4, 4, ReplacementPolicy::Lru);
        for i in 0..4 {
            tlb.insert(e4k(1, i * 64)); // all map to set 0 of 1
        }
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn index_divisor_spreads_strided_vpns_over_all_sets() {
        // A slice in a 16-slice system only sees vpn % 16 == 3. Without a
        // divisor, those pages map to sets {3, 19, 35, ...} — a fraction of
        // the array. With divisor 16, consecutive homed pages fill
        // consecutive sets and the whole capacity is usable.
        let mut aliased = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        let mut divided = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
        divided.set_index_divisor(16);
        for k in 0..64u64 {
            let vpn = 3 + 16 * k;
            aliased.insert(e4k(1, vpn));
            divided.insert(e4k(1, vpn));
        }
        // 64 entries inserted: the divided slice holds all of them; the
        // aliased one thrashes a single set per 16-page stride.
        assert_eq!(divided.occupancy(), 64);
        assert!(aliased.occupancy() < 64 / 2);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_ways_rejected() {
        let _ = SetAssocTlb::new(10, 4, ReplacementPolicy::Lru);
    }

    proptest! {
        /// Occupancy never exceeds capacity and lookups after insert always
        /// hit until an eviction could have occurred.
        #[test]
        fn prop_occupancy_bounded(vpns in prop::collection::vec(0u64..10_000, 0..300)) {
            let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
            for &vpn in &vpns {
                tlb.insert(e4k(1, vpn));
                prop_assert!(tlb.occupancy() <= tlb.entries());
                // The just-inserted entry is always resident.
                prop_assert!(tlb.probe(Asid::new(1), v4k(vpn)).is_some());
            }
        }

        /// The same trace replayed against FIFO and Random keeps the same
        /// residency invariants (policy only changes *which* entry leaves).
        #[test]
        fn prop_all_policies_respect_capacity(
            vpns in prop::collection::vec(0u64..1000, 1..200),
            policy_idx in 0usize..3,
        ) {
            let policy = [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random,
            ][policy_idx];
            let mut tlb = SetAssocTlb::new(16, 4, policy);
            let mut inserted = 0u64;
            let mut evicted = 0u64;
            for &vpn in &vpns {
                if tlb.probe(Asid::new(1), v4k(vpn)).is_none() {
                    inserted += 1;
                }
                if tlb.insert(e4k(1, vpn)).is_some() {
                    evicted += 1;
                }
            }
            prop_assert_eq!(tlb.occupancy() as u64, inserted - evicted);
        }

        /// Working sets no larger than one set's associativity never evict.
        #[test]
        fn prop_small_working_set_never_misses_twice(base in 0u64..1000) {
            let mut tlb = SetAssocTlb::new(64, 4, ReplacementPolicy::Lru);
            let sets = tlb.num_sets() as u64;
            // 4 pages mapping to the same set (stride = num_sets).
            let pages: Vec<u64> = (0..4).map(|i| base + i * sets).collect();
            for &p in &pages {
                tlb.insert(e4k(1, p));
            }
            tlb.reset_stats();
            for _ in 0..8 {
                for &p in &pages {
                    prop_assert!(tlb.lookup(Asid::new(1), v4k(p)).is_some());
                }
            }
            prop_assert_eq!(tlb.stats().misses(), 0);
        }
    }
}
