//! Per-file analysis context shared by every rule: the token stream,
//! `#[cfg(test)]` / `#[test]` region map, and suppression comments.

use crate::lexer::{self, Comment, Lexed, Tok};
use crate::parser::{self, Ast};
use std::path::PathBuf;

/// A `// nocstar-lint: allow(rule, …): justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// Mandatory justification text after the closing `):`.
    pub justification: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Lines the suppression covers: its own line, and (for standalone
    /// comments) the next code line.
    pub covers: (u32, u32),
}

/// One analyzed source file, ready for rules to scan.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in reports).
    pub path: PathBuf,
    /// Lint class the file belongs to (from the policy).
    pub class: String,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// AST-lite view of the token stream (items, fns, struct fields),
    /// consumed by the type-resolved rules via [`crate::scope::Scope`].
    pub ast: Ast,
    /// Comments (for rules that inspect them).
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items or `#[test]`
    /// functions.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Suppression comments that failed to parse (missing justification
    /// or malformed rule list); reported by the meta rule.
    pub bad_suppressions: Vec<(u32, String)>,
}

/// Marker every suppression comment must start with.
pub const SUPPRESSION_PREFIX: &str = "nocstar-lint:";

impl SourceFile {
    /// Lexes and analyzes `src`.
    pub fn analyze(path: PathBuf, class: &str, src: &str) -> SourceFile {
        let Lexed { toks, comments } = lexer::lex(src);
        let ast = parser::parse(&toks);
        let test_regions = find_test_regions(&toks);
        let (suppressions, bad_suppressions) = find_suppressions(&comments, &toks);
        SourceFile {
            path,
            class: class.to_string(),
            toks,
            ast,
            comments,
            test_regions,
            suppressions,
            bad_suppressions,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// True when a well-formed suppression for `rule` covers `line`.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppression_index(rule, line).is_some()
    }

    /// Index (into `suppressions`) of the suppression covering `rule` at
    /// `line`, if any. The driver uses the index to track which
    /// suppressions actually silenced something, so stale allows can be
    /// reported and deleted.
    pub fn suppression_index(&self, rule: &str, line: u32) -> Option<usize> {
        self.suppressions.iter().position(|s| {
            (s.covers.0 == line || s.covers.1 == line) && s.rules.iter().any(|r| r == rule)
        })
    }
}

/// Finds line ranges belonging to test-only code: any item annotated
/// `#[cfg(test)]` or `#[test]`. The item's extent is the balanced
/// `{ … }` block (or the terminating `;` for block-less items) that
/// follows the attribute.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(attr_len) = test_attr_len(&toks[i..]) {
            let start_line = toks[i].line;
            let mut j = i + attr_len;
            // Skip further attributes between #[cfg(test)] and the item.
            while j < toks.len() && toks[j].is_punct('#') {
                j += skip_attr(&toks[j..]);
            }
            // Scan to the end of the item: the close of the first brace
            // block, or a ';' before any brace opens (brackets/parens
            // tracked so `[u8; 4]` semicolons don't end the item).
            let mut depth = 0usize;
            let mut nest = 0usize;
            let mut end_line = start_line;
            while j < toks.len() {
                let t = &toks[j];
                end_line = t.line;
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct('[') || t.is_punct('(') {
                    nest += 1;
                } else if t.is_punct(']') || t.is_punct(')') {
                    nest = nest.saturating_sub(1);
                } else if t.is_punct(';') && depth == 0 && nest == 0 {
                    break;
                }
                j += 1;
            }
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// If `toks` starts with `#[cfg(test)]` or `#[test]` (possibly with extra
/// arguments such as `#[cfg(any(test, fuzzing))]`), returns the attribute
/// token length.
fn test_attr_len(toks: &[Tok]) -> Option<usize> {
    if !(toks.first()?.is_punct('#') && toks.get(1)?.is_punct('[')) {
        return None;
    }
    let len = skip_attr(toks);
    let body = &toks[2..len.saturating_sub(1)];
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(len)
}

/// Token length of an attribute starting at `#` `[` … `]`.
fn skip_attr(toks: &[Tok]) -> usize {
    let mut depth = 0usize;
    for (n, t) in toks.iter().enumerate() {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return n + 1;
            }
        }
    }
    toks.len()
}

/// Parses suppression comments. Returns (well-formed, malformed).
fn find_suppressions(comments: &[Comment], toks: &[Tok]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix(SUPPRESSION_PREFIX) else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rules, justification)) => {
                let covered = if c.trailing {
                    c.line
                } else {
                    next_code_line(toks, c.line)
                };
                good.push(Suppression {
                    rules,
                    justification,
                    line: c.line,
                    covers: (c.line, covered),
                });
            }
            Err(why) => bad.push((c.line, why)),
        }
    }
    (good, bad)
}

/// Parses `allow(rule-a, rule-b): justification`.
fn parse_allow(text: &str) -> Result<(Vec<String>, String), String> {
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(<rule>): <justification>`, found `{text}`"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `(` in suppression".to_string())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("suppression lists no rules".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "suppression of `{}` has no justification — write \
             `// nocstar-lint: allow({}): <why this is sound>`",
            rules.join(", "),
            rules.join(", "),
        ));
    }
    Ok((rules, justification.to_string()))
}

/// The first line after `line` that carries a code token.
fn next_code_line(toks: &[Tok], line: u32) -> u32 {
    toks.iter()
        .map(|t| t.line)
        .find(|&l| l > line)
        .unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> SourceFile {
        SourceFile::analyze(PathBuf::from("test.rs"), "sim", src)
    }

    #[test]
    fn cfg_test_mod_region_spans_the_block() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn a() {}\n}\nfn after() {}";
        let f = analyze(src);
        assert_eq!(f.test_regions, vec![(2, 5)]);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn test_fn_and_cfg_any_regions() {
        let src =
            "#[test]\nfn t() { body(); }\n#[cfg(any(test, fuzzing))]\nuse foo::bar;\nfn live() {}";
        let f = analyze(src);
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        // Over-approximation by design: any cfg mentioning `test` counts,
        // but cfgs without it never do.
        let f = analyze("#[cfg(feature = \"x\")]\nfn live() {}");
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn trailing_suppression_covers_its_line() {
        let src = "let x = m.unwrap(); // nocstar-lint: allow(sim-unwrap): length checked above\n";
        let f = analyze(src);
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressed("sim-unwrap", 1));
        assert!(!f.suppressed("wall-clock", 1));
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let src =
            "// nocstar-lint: allow(sim-unwrap, wall-clock): fixture only\n\nlet x = m.unwrap();";
        let f = analyze(src);
        assert!(f.suppressed("sim-unwrap", 3));
        assert!(f.suppressed("wall-clock", 3));
        assert!(!f.suppressed("sim-unwrap", 2));
    }

    #[test]
    fn missing_justification_is_malformed() {
        for bad in [
            "// nocstar-lint: allow(sim-unwrap)",
            "// nocstar-lint: allow(sim-unwrap):",
            "// nocstar-lint: allow(sim-unwrap):   ",
            "// nocstar-lint: allow()  : because",
            "// nocstar-lint: deny(sim-unwrap): what",
        ] {
            let f = analyze(&format!("{bad}\nlet x = 1;"));
            assert_eq!(f.suppressions.len(), 0, "{bad}");
            assert_eq!(f.bad_suppressions.len(), 1, "{bad}");
        }
    }
}
