//! A minimal Rust token lexer.
//!
//! The build environment vendors no `syn`, so the analyzer works on a
//! token stream instead of a real AST. The lexer's job is to make that
//! sound: rule patterns must never match inside string literals, char
//! literals, or comments, and suppression comments must be recoverable
//! with their line numbers. Everything a rule matches on is a [`Tok`];
//! everything a suppression lives in is a [`Comment`].
//!
//! Coverage: line/doc comments, nested block comments, string literals
//! (plain, raw `r#"…"#`, byte, C variants), char literals vs. lifetimes,
//! numeric literals, identifiers (including raw `r#ident`), and
//! single-character punctuation. Multi-character operators (`::`, `=>`,
//! `+=`, …) are emitted as individual punctuation tokens; rules match the
//! resulting sequences, which keeps the lexer trivially correct.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unwrap`).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal.
    Num,
    /// A string, byte-string, or char literal (contents are opaque).
    Lit,
    /// A single punctuation character (`.`, `:`, `=`, `{`, …).
    Punct(char),
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind; punctuation carries its character.
    pub kind: TokKind,
    /// The token text (empty for [`TokKind::Lit`] — contents never matter
    /// to any rule, and eliding them avoids quadratic retention).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its starting line (1-based). Doc comments are included;
/// block comments keep embedded newlines.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// Comment text without the `//`, `///` or `/* */` framing.
    pub text: String,
    /// True when source code precedes the comment on its starting line
    /// (a trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs consume
/// to end of input rather than erroring: the linter must degrade, not
/// panic, on files mid-edit.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        line_had_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    line_had_code: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.line_had_code = false;
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.line_had_code = true;
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push_tok(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_had_code;
        self.bump();
        self.bump();
        // Strip the extra doc-comment marker; rule ids never contain '/'.
        while self.peek(0) == Some('/') || self.peek(0) == Some('!') {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_had_code;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
            trailing,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"` and
    /// plain identifiers starting with r/b/c. Returns true when it
    /// consumed something.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0).unwrap_or(' ');
        // Raw identifier r#name: emit as the identifier itself.
        if c0 == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
            let line = self.line;
            self.bump();
            self.bump();
            let text = self.take_ident_text();
            self.push_tok(TokKind::Ident, text, line);
            return true;
        }
        // Longest literal prefixes first: br"", br#"", b"…", b'…', r"", r#"".
        let (skip, hashes_start) = match (c0, self.peek(1), self.peek(2)) {
            ('b', Some('r'), Some('"' | '#')) => (2, 2),
            ('b', Some('"'), _) => {
                self.consume_quoted_literal(1, 0, '"');
                return true;
            }
            ('b', Some('\''), _) => {
                self.consume_quoted_literal(1, 0, '\'');
                return true;
            }
            ('r' | 'c', Some('"' | '#'), _) => (1, 1),
            _ => return false,
        };
        // Count raw-string hashes after the prefix.
        let mut hashes = 0;
        while self.peek(hashes_start + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes_start + hashes) != Some('"') {
            return false; // e.g. `r#[…]` is not a literal here
        }
        self.consume_raw_string(skip, hashes);
        true
    }

    /// Consumes a raw string: `skip` prefix chars, `hashes` '#'s, a quote,
    /// then content until `"` followed by `hashes` '#'s.
    fn consume_raw_string(&mut self, skip: usize, hashes: usize) {
        let line = self.line;
        for _ in 0..skip + hashes + 1 {
            self.bump();
        }
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push_tok(TokKind::Lit, String::new(), line);
    }

    /// Consumes an escaped quoted literal after `skip` prefix chars.
    fn consume_quoted_literal(&mut self, skip: usize, _hashes: usize, quote: char) {
        let line = self.line;
        for _ in 0..skip {
            self.bump();
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                c if c == quote => break,
                _ => {}
            }
        }
        self.push_tok(TokKind::Lit, String::new(), line);
    }

    fn string(&mut self) {
        self.consume_quoted_literal(0, 0, '"');
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        // A lifetime is ' followed by an identifier NOT closed by another
        // quote ('a' is a char; 'a is a lifetime; '\n' is a char).
        let c1 = self.peek(1);
        let is_lifetime = match c1 {
            Some(c) if is_ident_start(c) => {
                // Scan the identifier; if the char right after it is a
                // quote, this is a char literal like 'x'.
                let mut i = 2;
                while self.peek(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let line = self.line;
            self.bump(); // '
            let text = self.take_ident_text();
            self.push_tok(TokKind::Lifetime, text, line);
        } else {
            self.consume_quoted_literal(0, 0, '\'');
        }
    }

    fn take_ident_text(&mut self) -> String {
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            text.push(self.bump().unwrap_or('_'));
        }
        text
    }

    fn ident(&mut self) {
        let line = self.line;
        let text = self.take_ident_text();
        self.push_tok(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Numeric literals may embed `_`, `.`, exponents and type
        // suffixes; consuming alphanumerics and underscores is enough for
        // rule purposes (the trailing `.` of `1.` stays punctuation,
        // which no rule pattern cares about).
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            text.push(self.bump().unwrap_or('0'));
        }
        self.push_tok(TokKind::Num, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap in a comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = lexed.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2); // 'x' and '\n'
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let lexed = lex(src);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_strings_are_literals() {
        let src = r##"let b = b"HashMap"; let br = br#"HashSet"#;"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet"));
    }
}
