//! The `nocstar-lint` command-line driver.

use nocstar_lint::cache::Cache;
use nocstar_lint::policy::Policy;
use nocstar_lint::{lint_source, lint_workspace_cached, output, rules, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
nocstar-lint — determinism & simulator-invariant static analysis

USAGE:
    cargo run -p nocstar-lint [--] [OPTIONS] [FILES...]

With no FILES, lints every src/ tree the policy classifies. Explicit
FILES are linted under the class given by --class.

OPTIONS:
    --root <dir>       workspace root (default: the repo this binary lives in)
    --policy <path>    policy file (default: <root>/nocstar-lint.toml)
    --class <name>     lint class for explicitly listed FILES (default: sim)
    --json-out <path>  also write a JSON report
    --sarif-out <path> also write a SARIF 2.1.0 report
    --no-cache         ignore and do not update the incremental cache
                       (<root>/target/lint/cache.json; workspace mode only)
    --quiet            suppress per-finding human output (summary only)
    --list-rules       print the rule table and exit
    --help             this text

EXIT STATUS:
    0  no error-severity findings
    1  at least one error-severity finding
    2  usage, policy, or I/O error
";

struct Opts {
    root: PathBuf,
    policy: Option<PathBuf>,
    class: String,
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    no_cache: bool,
    quiet: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Option<Opts>, String> {
    // Default root: this crate lives at <root>/crates/lint.
    let mut opts = Opts {
        root: Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
        policy: None,
        class: "sim".to_string(),
        json_out: None,
        sarif_out: None,
        no_cache: false,
        quiet: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list-rules" => {
                for rule in rules::registry() {
                    println!("{:<24} {}", rule.id(), rule.description());
                    println!("{:<24} fix: {}", "", rule.fix_hint());
                }
                println!(
                    "{:<24} suppression comment without a justification (always an error)",
                    rules::INVALID_SUPPRESSION
                );
                return Ok(None);
            }
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--policy" => opts.policy = Some(PathBuf::from(value("--policy")?)),
            "--class" => opts.class = value("--class")?,
            "--json-out" => opts.json_out = Some(PathBuf::from(value("--json-out")?)),
            "--sarif-out" => opts.sarif_out = Some(PathBuf::from(value("--sarif-out")?)),
            "--no-cache" => opts.no_cache = true,
            "--quiet" | "-q" => opts.quiet = true,
            f if !f.starts_with('-') => opts.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(Some(opts))
}

fn run(opts: &Opts) -> Result<Report, String> {
    let policy_path = opts
        .policy
        .clone()
        .unwrap_or_else(|| opts.root.join("nocstar-lint.toml"));
    let policy = Policy::load(&policy_path).map_err(|e| e.to_string())?;
    if opts.files.is_empty() {
        if opts.no_cache {
            return lint_workspace_cached(&opts.root, &policy, None);
        }
        let cache_path = opts.root.join("target/lint/cache.json");
        let mut cache = Cache::load(&cache_path, policy.source_hash);
        let report = lint_workspace_cached(&opts.root, &policy, Some(&mut cache))?;
        // A best-effort persist: a read-only checkout still lints fine.
        if let Err(e) = cache.save(&cache_path) {
            eprintln!("nocstar-lint: warning: {e}");
        }
        return Ok(report);
    }
    let mut report = Report::default();
    for path in &opts.files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(&opts.root).unwrap_or(path);
        report.merge(lint_source(rel, &opts.class, &text, &policy));
    }
    report.sort();
    Ok(report)
}

fn write_artifact(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nocstar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("nocstar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let text = output::human(&report);
    if opts.quiet {
        if let Some(summary) = text.lines().last() {
            eprintln!("{summary}");
        }
    } else {
        eprint!("{text}");
    }
    for (path, contents) in [
        (&opts.json_out, output::json(&report)),
        (&opts.sarif_out, output::sarif(&report)),
    ] {
        if let Some(path) = path {
            if let Err(e) = write_artifact(path, &contents) {
                eprintln!("nocstar-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
