//! AST-lite recursive-descent parser over the token stream.
//!
//! The environment still vendors no `syn`, so this is not a full Rust
//! grammar: it recognizes exactly the subset the repo's rules need to
//! reason about types and flow — items (`use`, `type`, `struct`, `enum`,
//! `fn`, `impl`, `mod`, `trait`), `use` paths with renames and groups,
//! fn signatures, `let` bindings with declared or constructor-inferred
//! types, struct/enum fields, and `for` loops. Generic parameters are
//! parsed but treated as opaque; expression bodies stay token soup with
//! `let`/`for` statements lifted out.
//!
//! The parser must never panic and must always make progress on
//! malformed input: a file mid-edit degrades to a smaller AST, not an
//! error. Anything unrecognized is skipped one token at a time.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// A parsed type: a path plus generic arguments. References, lifetimes,
/// `dyn`/`impl` and `mut` are stripped; tuples, arrays/slices, and fn
/// pointers get synthetic path names (`(tuple)`, `(array)`, `(fn)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Type {
    /// Path segments (`std::collections::HashMap` → 3 segments).
    pub segments: Vec<String>,
    /// Generic arguments, recursively parsed; lifetimes and const
    /// generics are dropped.
    pub args: Vec<Type>,
}

impl Type {
    /// A type with a single path segment and no arguments.
    pub fn simple(name: &str) -> Type {
        Type {
            segments: vec![name.to_string()],
            args: Vec::new(),
        }
    }

    /// The final path segment — the name resolution starts from.
    pub fn name(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }
}

/// One named field of a struct (or enum variant payload).
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name; tuple/variant payloads get positional names (`0`).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// 1-based line of the field declaration.
    pub line: u32,
}

/// A `let` binding inside a fn body.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Bound name (simple-identifier patterns only; destructurings are
    /// not recorded).
    pub name: String,
    /// Declared type, when written.
    pub ty: Option<Type>,
    /// Token index range `[start, end)` of the initializer expression.
    pub init: Option<(usize, usize)>,
    /// 1-based line of the `let`.
    pub line: u32,
}

/// A `for` loop inside a fn body.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Loop binding when it is a simple identifier.
    pub binding: Option<String>,
    /// Token index range of the iterated expression.
    pub iter: (usize, usize),
    /// Token index range of the loop body (inside the braces).
    pub body: (usize, usize),
    /// 1-based line of the `for`.
    pub line: u32,
}

/// A parsed fn with its signature and lifted body statements.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Fn name.
    pub name: String,
    /// The `impl` target type name when this fn is a method.
    pub self_ty: Option<String>,
    /// `(name, type)` per parameter; opaque patterns get name `_`.
    pub params: Vec<(String, Type)>,
    /// Return type, when written.
    pub ret: Option<Type>,
    /// Token index range `[start, end)` of the body (inside the braces).
    pub body: (usize, usize),
    /// `let` bindings, in source order (later bindings shadow earlier).
    pub lets: Vec<LetBinding>,
    /// `for` loops, in source order (outer loops listed before inner).
    pub fors: Vec<ForLoop>,
    /// 1-based line of the `fn`.
    pub line: u32,
}

/// The per-file AST-lite: symbol tables plus parsed fns.
#[derive(Debug, Default)]
pub struct Ast {
    /// Imported local name → (full path segments, declaration line).
    /// `use std::collections::HashMap as Map` maps `Map` → the path.
    pub imports: BTreeMap<String, (Vec<String>, u32)>,
    /// `type Name = T;` aliases: name → (target type, declaration line).
    pub aliases: BTreeMap<String, (Type, u32)>,
    /// Struct/enum name → fields (enum variant payloads flattened in).
    pub structs: BTreeMap<String, Vec<Field>>,
    /// Every fn in the file, including impl/trait methods.
    pub fns: Vec<FnDef>,
}

/// Keywords that can precede `[`/identifiers without forming the
/// expression contexts the rules care about.
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// True when `word` is a Rust keyword (per [`KEYWORDS`]).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Parses one file's token stream into an [`Ast`].
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser {
        toks,
        pos: 0,
        ast: Ast::default(),
    };
    p.items(toks.len(), None);
    p.ast
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    ast: Ast,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn at_ident(&self, word: &str) -> bool {
        self.tok(self.pos).is_some_and(|t| t.is_ident(word))
    }

    fn at_punct(&self, c: char) -> bool {
        self.tok(self.pos).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self) -> u32 {
        self.tok(self.pos).map_or(0, |t| t.line)
    }

    /// Consumes tokens to the matching close of the bracket at `self.pos`
    /// (which must be an open bracket) and returns the index just past
    /// the close. Tracks all three bracket kinds.
    fn skip_balanced(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(self.pos) {
            match t.kind {
                TokKind::Punct('{' | '(' | '[') => depth += 1,
                TokKind::Punct('}' | ')' | ']') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a balanced `<…>` generic list starting at `<`.
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.tok(self.pos) {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                // A stray `;` or `{` at depth 1+ means the source was not
                // really generics; bail rather than consume the file.
                TokKind::Punct('{' | ';') => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips one attribute `#[…]` / `#![…]` starting at `#`.
    fn skip_attr(&mut self) {
        self.pos += 1; // '#'
        if self.at_punct('!') {
            self.pos += 1;
        }
        if self.at_punct('[') {
            self.skip_balanced();
        }
    }

    /// Parses items until `end` (a token index, exclusive).
    fn items(&mut self, end: usize, self_ty: Option<&str>) {
        while self.pos < end {
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            let Some(t) = self.tok(self.pos) else { break };
            if t.kind != TokKind::Ident {
                self.pos += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    self.pos += 1;
                    if self.at_punct('(') {
                        self.skip_balanced(); // pub(crate) / pub(super)
                    }
                }
                "use" => self.parse_use(),
                "type" => self.parse_type_alias(),
                "struct" => self.parse_struct(),
                "enum" => self.parse_enum(),
                "fn" => self.parse_fn(self_ty),
                "impl" => self.parse_impl(end),
                "mod" | "trait" => self.parse_mod_or_trait(end, self_ty),
                "unsafe" | "async" | "default" | "extern" | "const" | "static" => {
                    // Qualifiers before fn, or const/static items; the
                    // next loop turn sees the real keyword. `extern "C"`
                    // string literals and const/static initializers are
                    // skipped by the generic fallthrough.
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `use path::{a, b as c, nested::*};` — registers every leaf name.
    fn parse_use(&mut self) {
        let line = self.line();
        self.pos += 1; // `use`
        self.parse_use_tree(Vec::new(), line);
        if self.at_punct(';') {
            self.pos += 1;
        }
    }

    fn parse_use_tree(&mut self, prefix: Vec<String>, line: u32) {
        let mut path = prefix;
        loop {
            if self.at_punct('{') {
                self.pos += 1;
                loop {
                    if self.at_punct('}') {
                        self.pos += 1;
                        return;
                    }
                    if self.pos >= self.toks.len() {
                        return;
                    }
                    self.parse_use_tree(path.clone(), line);
                    if self.at_punct(',') {
                        self.pos += 1;
                    } else if !self.at_punct('}') {
                        // Malformed; bail without looping forever.
                        self.pos += 1;
                    }
                }
            }
            if self.at_punct('*') {
                self.pos += 1; // glob: nothing to register
                return;
            }
            let Some(t) = self.tok(self.pos) else { return };
            if t.kind != TokKind::Ident {
                return;
            }
            let seg = t.text.clone();
            self.pos += 1;
            path.push(seg);
            if self.at_punct(':') && self.tok(self.pos + 1).is_some_and(|t| t.is_punct(':')) {
                self.pos += 2;
                continue;
            }
            // Rename: `… ::Target as Name` registers `Name` against the
            // path ending in the *target*, which is what resolution
            // chases.
            if self.at_ident("as") {
                self.pos += 1;
                let name = self
                    .tok(self.pos)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    self.ast.imports.insert(name, (path, line));
                    self.pos += 1;
                }
                return;
            }
            // End of this tree branch: register the leaf under its own
            // name. `use a::b::{self}` registers the parent name `b`.
            if path.last().is_some_and(|s| s == "self") {
                path.pop();
            }
            if let Some(leaf) = path.last().cloned() {
                self.ast.imports.insert(leaf, (path, line));
            }
            return;
        }
    }

    /// `type Name<…> = T;`
    fn parse_type_alias(&mut self) {
        let line = self.line();
        self.pos += 1; // `type`
        let Some(name) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name.text.clone();
        self.pos += 1;
        self.skip_generics();
        if !self.at_punct('=') {
            // Associated type declaration (`type Out;`) or bound list.
            return;
        }
        self.pos += 1;
        let ty = self.parse_type();
        self.ast.aliases.insert(name, (ty, line));
        if self.at_punct(';') {
            self.pos += 1;
        }
    }

    fn parse_struct(&mut self) {
        self.pos += 1; // `struct`
        let Some(name) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name.text.clone();
        self.pos += 1;
        self.skip_generics();
        self.skip_where_clause();
        let mut fields = Vec::new();
        if self.at_punct('{') {
            self.pos += 1;
            self.parse_named_fields(&mut fields, '}');
        } else if self.at_punct('(') {
            self.pos += 1;
            self.parse_tuple_fields(&mut fields, "");
        }
        self.ast.structs.insert(name, fields);
    }

    fn parse_enum(&mut self) {
        self.pos += 1; // `enum`
        let Some(name) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name.text.clone();
        self.pos += 1;
        self.skip_generics();
        self.skip_where_clause();
        let mut fields = Vec::new();
        if self.at_punct('{') {
            self.pos += 1;
            while self.pos < self.toks.len() && !self.at_punct('}') {
                if self.at_punct('#') {
                    self.skip_attr();
                    continue;
                }
                let Some(v) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
                    self.pos += 1;
                    continue;
                };
                let variant = v.text.clone();
                self.pos += 1;
                if self.at_punct('(') {
                    self.pos += 1;
                    self.parse_tuple_fields(&mut fields, &variant);
                } else if self.at_punct('{') {
                    self.pos += 1;
                    self.parse_named_fields(&mut fields, '}');
                } else if self.at_punct('=') {
                    // Discriminant: skip to `,` or `}` at depth 0.
                    self.skip_to_comma_or('}');
                }
                if self.at_punct(',') {
                    self.pos += 1;
                }
            }
            if self.at_punct('}') {
                self.pos += 1;
            }
        }
        self.ast.structs.insert(name, fields);
    }

    /// Named fields until the closing brace: `[pub] name: Type,`*
    fn parse_named_fields(&mut self, out: &mut Vec<Field>, close: char) {
        while self.pos < self.toks.len() && !self.at_punct(close) {
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            if self.at_ident("pub") {
                self.pos += 1;
                if self.at_punct('(') {
                    self.skip_balanced();
                }
                continue;
            }
            let Some(t) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
                self.pos += 1;
                continue;
            };
            let (fname, fline) = (t.text.clone(), t.line);
            self.pos += 1;
            if !self.at_punct(':') {
                continue;
            }
            self.pos += 1;
            let ty = self.parse_type();
            out.push(Field {
                name: fname,
                ty,
                line: fline,
            });
            if self.at_punct(',') {
                self.pos += 1;
            }
        }
        if self.at_punct(close) {
            self.pos += 1;
        }
    }

    /// Tuple fields until the closing paren; names are `prefix.N` (or
    /// plain `N` for tuple structs).
    fn parse_tuple_fields(&mut self, out: &mut Vec<Field>, prefix: &str) {
        let mut idx = 0usize;
        while self.pos < self.toks.len() && !self.at_punct(')') {
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            if self.at_ident("pub") {
                self.pos += 1;
                if self.at_punct('(') {
                    self.skip_balanced();
                }
                continue;
            }
            let line = self.line();
            let ty = self.parse_type();
            let name = if prefix.is_empty() {
                idx.to_string()
            } else {
                format!("{prefix}.{idx}")
            };
            out.push(Field { name, ty, line });
            idx += 1;
            if self.at_punct(',') {
                self.pos += 1;
            } else if !self.at_punct(')') {
                self.pos += 1; // malformed: keep moving
            }
        }
        if self.at_punct(')') {
            self.pos += 1;
        }
    }

    fn skip_where_clause(&mut self) {
        if self.at_ident("where") {
            while self.pos < self.toks.len() && !self.at_punct('{') && !self.at_punct(';') {
                self.pos += 1;
            }
        }
    }

    /// `impl<…> Type {…}` or `impl<…> Trait for Type {…}`.
    fn parse_impl(&mut self, end: usize) {
        self.pos += 1; // `impl`
        self.skip_generics();
        let first = self.parse_type();
        let target = if self.at_ident("for") {
            self.pos += 1;
            self.parse_type()
        } else {
            first
        };
        self.skip_where_clause();
        if !self.at_punct('{') {
            return;
        }
        let body_end = self.matching_brace(end);
        self.pos += 1; // '{'
        let name = target.name().to_string();
        self.items(body_end, Some(&name));
        self.pos = (body_end + 1).min(end);
    }

    fn parse_mod_or_trait(&mut self, end: usize, self_ty: Option<&str>) {
        self.pos += 1; // `mod` / `trait`
        if let Some(t) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) {
            let _ = t;
            self.pos += 1;
        }
        self.skip_generics();
        // Supertrait bounds: skip to `{` or `;`.
        while self.pos < end && !self.at_punct('{') && !self.at_punct(';') {
            self.pos += 1;
        }
        if self.at_punct(';') {
            self.pos += 1;
            return;
        }
        if self.at_punct('{') {
            let body_end = self.matching_brace(end);
            self.pos += 1;
            self.items(body_end, self_ty);
            self.pos = (body_end + 1).min(end);
        }
    }

    /// Index of the `}` matching the `{` at `self.pos`, bounded by `end`.
    fn matching_brace(&self, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = self.pos;
        while i < end {
            match self.toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1).max(self.pos)
    }

    fn parse_fn(&mut self, self_ty: Option<&str>) {
        let line = self.line();
        self.pos += 1; // `fn`
        let Some(name) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name.text.clone();
        self.pos += 1;
        self.skip_generics();
        let mut params = Vec::new();
        if self.at_punct('(') {
            let params_end = {
                let saved = self.pos;
                self.skip_balanced();
                let e = self.pos;
                self.pos = saved;
                e
            };
            self.pos += 1; // '('
            self.parse_params(&mut params, params_end.saturating_sub(1));
            self.pos = params_end;
        }
        let ret = if self.at_punct('-') && self.tok(self.pos + 1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            Some(self.parse_type())
        } else {
            None
        };
        self.skip_where_clause();
        if self.at_punct(';') {
            self.pos += 1; // trait method declaration, no body
            return;
        }
        if !self.at_punct('{') {
            return;
        }
        let body_end = self.matching_brace(self.toks.len());
        let body = (self.pos + 1, body_end);
        self.pos = (body_end + 1).min(self.toks.len());
        let (lets, fors) = scan_body(self.toks, body);
        self.ast.fns.push(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            params,
            ret,
            body,
            lets,
            fors,
            line,
        });
    }

    /// Parses fn parameters between the parens (`end` is the index of the
    /// closing paren).
    fn parse_params(&mut self, out: &mut Vec<(String, Type)>, end: usize) {
        while self.pos < end {
            if self.at_punct('#') {
                self.skip_attr();
                continue;
            }
            // Receiver: `self`, `&self`, `&mut self`, `mut self`, with
            // optional lifetime — skip to the comma.
            let start = self.pos;
            let mut is_receiver = false;
            let mut j = self.pos;
            while j < end && j < start + 4 {
                let t = &self.toks[j];
                if t.is_ident("self") {
                    is_receiver =
                        self.toks.get(j + 1).is_none_or(|n| !n.is_punct(':')) || j + 1 >= end;
                    break;
                }
                if t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime {
                    j += 1;
                    continue;
                }
                break;
            }
            if is_receiver {
                self.skip_to_param_end(end);
                continue;
            }
            // Pattern: take a simple identifier name, else `_`.
            let mut pname = "_".to_string();
            if self.at_ident("mut") {
                self.pos += 1;
            }
            if let Some(t) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) {
                if !is_keyword(&t.text) {
                    pname = t.text.clone();
                    self.pos += 1;
                }
            }
            if self.at_punct(':') {
                self.pos += 1;
                let ty = self.parse_type();
                out.push((pname, ty));
            }
            self.skip_to_param_end(end);
        }
    }

    /// Advances past the next top-level `,` (or to `end`).
    fn skip_to_param_end(&mut self, end: usize) {
        let mut depth = 0i32;
        while self.pos < end {
            match self.toks[self.pos].kind {
                TokKind::Punct('(' | '[' | '{' | '<') => depth += 1,
                TokKind::Punct(')' | ']' | '}' | '>') => depth -= 1,
                TokKind::Punct(',') if depth <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips to the next `,` or `stop` char at depth 0.
    fn skip_to_comma_or(&mut self, stop: char) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match self.toks[self.pos].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => {
                    if depth == 0 && self.toks[self.pos].is_punct(stop) {
                        return;
                    }
                    depth -= 1;
                }
                TokKind::Punct(',') if depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses a type at the current position. Never fails; unknown
    /// constructs produce an opaque type and consume at least one token.
    fn parse_type(&mut self) -> Type {
        // Strip prefixes that don't change the resolved name.
        loop {
            if self.at_punct('&') || self.at_punct('*') {
                self.pos += 1;
                continue;
            }
            if self
                .tok(self.pos)
                .is_some_and(|t| t.kind == TokKind::Lifetime)
            {
                self.pos += 1;
                continue;
            }
            if self.at_ident("mut")
                || self.at_ident("dyn")
                || self.at_ident("impl")
                || self.at_ident("const")
            {
                self.pos += 1;
                continue;
            }
            break;
        }
        if self.at_punct('(') {
            // Tuple or parenthesized type.
            self.pos += 1;
            let mut args = Vec::new();
            let mut saw_comma = false;
            while self.pos < self.toks.len() && !self.at_punct(')') {
                args.push(self.parse_type());
                if self.at_punct(',') {
                    saw_comma = true;
                    self.pos += 1;
                } else if !self.at_punct(')') {
                    self.pos += 1; // defensive progress
                }
            }
            if self.at_punct(')') {
                self.pos += 1;
            }
            if !saw_comma && args.len() == 1 {
                return args
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| Type::simple("(unknown)"));
            }
            return Type {
                segments: vec!["(tuple)".to_string()],
                args,
            };
        }
        if self.at_punct('[') {
            // Slice `[T]` or array `[T; N]`.
            self.pos += 1;
            let inner = self.parse_type();
            while self.pos < self.toks.len() && !self.at_punct(']') {
                self.pos += 1; // `; N` length expression
            }
            if self.at_punct(']') {
                self.pos += 1;
            }
            return Type {
                segments: vec!["(array)".to_string()],
                args: vec![inner],
            };
        }
        if self.at_punct('<') {
            // Qualified path `<T as Trait>::Out`: opaque.
            self.skip_generics();
            while self.at_punct(':') {
                self.pos += 1;
            }
            // Consume the trailing segment path.
            while self.tok(self.pos).is_some_and(|t| t.kind == TokKind::Ident) {
                self.pos += 1;
                if self.at_punct(':') && self.tok(self.pos + 1).is_some_and(|t| t.is_punct(':')) {
                    self.pos += 2;
                } else {
                    break;
                }
            }
            return Type::simple("(qualified)");
        }
        if self.at_ident("fn")
            || self.at_ident("Fn")
            || self.at_ident("FnMut")
            || self.at_ident("FnOnce")
        {
            self.pos += 1;
            if self.at_punct('(') {
                self.skip_balanced();
            }
            if self.at_punct('-') && self.tok(self.pos + 1).is_some_and(|t| t.is_punct('>')) {
                self.pos += 2;
                let _ = self.parse_type();
            }
            return Type::simple("(fn)");
        }
        // Path type: segments separated by `::`, optional generics.
        let mut segments = Vec::new();
        let mut args = Vec::new();
        while let Some(t) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) {
            if is_keyword(&t.text)
                && !matches!(t.text.as_str(), "self" | "Self" | "crate" | "super")
            {
                break;
            }
            segments.push(t.text.clone());
            self.pos += 1;
            if self.at_punct('<') {
                args = self.parse_generic_args();
                // `Map<K, V>::new` style paths keep going after generics.
            }
            if self.at_punct(':') && self.tok(self.pos + 1).is_some_and(|t| t.is_punct(':')) {
                self.pos += 2;
                continue;
            }
            break;
        }
        if segments.is_empty() {
            // Defensive progress on anything unrecognized.
            self.pos += 1;
            return Type::simple("(unknown)");
        }
        Type { segments, args }
    }

    /// Parses `<T, U, 'a, N, Item = V>` starting at `<`; returns the
    /// recursively parsed type arguments (lifetimes/consts dropped).
    fn parse_generic_args(&mut self) -> Vec<Type> {
        let close = {
            let saved = self.pos;
            self.skip_generics();
            let e = self.pos;
            self.pos = saved;
            e
        };
        self.pos += 1; // '<'
        let mut args = Vec::new();
        while self.pos + 1 < close {
            if self
                .tok(self.pos)
                .is_some_and(|t| t.kind == TokKind::Lifetime)
            {
                self.pos += 1;
            } else if self.tok(self.pos).is_some_and(|t| t.kind == TokKind::Num)
                || self.at_punct('{')
            {
                // Const generic argument: skip it.
                if self.at_punct('{') {
                    self.skip_balanced();
                } else {
                    self.pos += 1;
                }
            } else if self.tok(self.pos).is_some_and(|t| t.kind == TokKind::Ident)
                && self.tok(self.pos + 1).is_some_and(|t| t.is_punct('='))
                && !self.tok(self.pos + 2).is_some_and(|t| t.is_punct('='))
            {
                // Associated binding `Item = T`.
                self.pos += 2;
                args.push(self.parse_type());
            } else {
                let before = self.pos;
                args.push(self.parse_type());
                if self.pos == before {
                    self.pos += 1; // guarantee progress
                }
            }
            if self.at_punct(',')
                || self.at_punct('+')
                || (self.pos + 1 < close && !self.at_punct('>'))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.pos = close;
        args
    }
}

/// Scans a fn body token range for `let` bindings and `for` loops.
/// The scan is flat: nested blocks and closures contribute their `let`s
/// to the same (per-fn) table, which over-approximates scope but keeps
/// shadowing order correct for forward dataflow.
fn scan_body(toks: &[Tok], body: (usize, usize)) -> (Vec<LetBinding>, Vec<ForLoop>) {
    let (start, end) = body;
    let mut lets = Vec::new();
    let mut fors = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if t.is_ident("let") {
            // `if let` / `while let` have pattern semantics, not binding
            // statements; skip them.
            let after_kw = i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
            if after_kw {
                i += 1;
                continue;
            }
            let line = t.line;
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            if is_keyword(&name_tok.text) {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            j += 1;
            let mut ty = None;
            if toks.get(j).is_some_and(|t| t.is_punct(':')) {
                let mut p = Parser {
                    toks,
                    pos: j + 1,
                    ast: Ast::default(),
                };
                ty = Some(p.parse_type());
                j = p.pos;
            }
            let mut init = None;
            if toks.get(j).is_some_and(|t| t.is_punct('='))
                && !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
            {
                let init_start = j + 1;
                let init_end = stmt_end(toks, init_start, end);
                init = Some((init_start, init_end));
                j = init_end;
            }
            lets.push(LetBinding {
                name,
                ty,
                init,
                line,
            });
            i = j;
            continue;
        }
        if t.is_ident("for") && !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            let line = t.line;
            let binding = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
                .filter(|_| toks.get(i + 2).is_some_and(|t| t.is_ident("in")))
                .map(|t| t.text.clone());
            // Find `in` at depth 0 (tuple patterns contain parens).
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_at = None;
            while j < end {
                match toks[j].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    TokKind::Punct('{' | ';') => break,
                    TokKind::Ident if depth == 0 && toks[j].is_ident("in") => {
                        in_at = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(in_at) = in_at else {
                i += 1;
                continue;
            };
            // Iterated expression runs to the loop's opening brace at
            // depth 0 (struct literals can't appear bare in `for` heads).
            let mut k = in_at + 1;
            let mut depth = 0i32;
            while k < end {
                match toks[k].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= end {
                i = in_at + 1;
                continue;
            }
            // Loop body: matching brace from k.
            let mut depth = 0i32;
            let mut b = k;
            while b < end {
                match toks[b].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                b += 1;
            }
            fors.push(ForLoop {
                binding,
                iter: (in_at + 1, k),
                body: (k + 1, b.min(end)),
                line,
            });
            i = k + 1; // descend into the body (nested loops still seen)
            continue;
        }
        i += 1;
    }
    (lets, fors)
}

/// Index just past the end of a statement starting at `start`: the
/// position of the `;` that closes it at bracket depth 0, or `end`.
fn stmt_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end.min(toks.len()) {
        match toks[i].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return i; // closing an outer block: statement ended
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> Ast {
        parse(&lex(src).toks)
    }

    #[test]
    fn use_paths_with_groups_and_renames() {
        let a = ast("use std::collections::{HashMap as Map, hash_map::Entry};\nuse crate::x::Y;");
        assert_eq!(
            a.imports["Map"].0,
            vec!["std", "collections", "HashMap"],
            "{:?}",
            a.imports
        );
        assert_eq!(
            a.imports["Entry"].0.last().map(String::as_str),
            Some("Entry")
        );
        assert_eq!(a.imports["Y"].0, vec!["crate", "x", "Y"]);
    }

    #[test]
    fn type_alias_and_struct_fields() {
        let a = ast("type Cache = std::collections::HashMap<u64, u64>;\n\
             struct S { pub m: Cache, n: BTreeMap<u64, u64> }\n\
             struct T(u64, Cache);");
        assert_eq!(a.aliases["Cache"].0.name(), "HashMap");
        let s = &a.structs["S"];
        assert_eq!(s[0].name, "m");
        assert_eq!(s[0].ty.name(), "Cache");
        assert_eq!(s[1].ty.name(), "BTreeMap");
        assert_eq!(s[1].ty.args.len(), 2);
        assert_eq!(a.structs["T"][1].ty.name(), "Cache");
    }

    #[test]
    fn enum_variant_payloads_are_fields() {
        let a = ast("enum E { A, B(u64, Cache), C { inner: RefCell<u8> } }");
        let fields = &a.structs["E"];
        assert!(fields.iter().any(|f| f.ty.name() == "Cache"));
        assert!(fields.iter().any(|f| f.ty.name() == "RefCell"));
    }

    #[test]
    fn fn_signature_params_and_ret() {
        let a = ast("fn f(a: u64, mut b: &Vec<f64>, (x, y): (u8, u8)) -> f64 { a as f64 }");
        let f = &a.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params[0], ("a".to_string(), Type::simple("u64")));
        assert_eq!(f.params[1].0, "b");
        assert_eq!(f.params[1].1.name(), "Vec");
        assert_eq!(f.ret.as_ref().map(Type::name), Some("f64"));
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let a = ast("impl<T> Wrapper<T> { fn get(&self) -> u64 { 1 } }\n\
             impl Display for Thing { fn fmt(&self) {} }");
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(a.fns[1].self_ty.as_deref(), Some("Thing"));
    }

    #[test]
    fn lets_with_types_and_inits() {
        let a = ast(
            "fn f() {\n  let x: f64 = 0.0;\n  let mut m = HashMap::new();\n  \
             let (a, b) = pair();\n  if let Some(v) = opt {}\n}",
        );
        let lets = &a.fns[0].lets;
        assert_eq!(lets.len(), 2, "{lets:?}");
        assert_eq!(lets[0].name, "x");
        assert_eq!(lets[0].ty.as_ref().map(Type::name), Some("f64"));
        assert_eq!(lets[1].name, "m");
        assert!(lets[1].init.is_some());
    }

    #[test]
    fn for_loops_record_binding_iter_and_body() {
        let a = ast("fn f(v: Vec<u64>) { for x in v.iter() { let y = x; } }");
        let fors = &a.fns[0].fors;
        assert_eq!(fors.len(), 1);
        assert_eq!(fors[0].binding.as_deref(), Some("x"));
        assert!(fors[0].iter.0 < fors[0].iter.1);
        assert!(fors[0].body.0 < fors[0].body.1);
    }

    #[test]
    fn nested_mods_share_the_file_table() {
        let a = ast("mod inner { use std::collections::HashMap as M; fn g() {} }");
        assert!(a.imports.contains_key("M"));
        assert_eq!(a.fns[0].name, "g");
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        for src in [
            "struct",
            "fn f(",
            "impl {",
            "use ::::;",
            "type = ;",
            "enum E { A(",
            "fn f() { let",
            "for x in {",
        ] {
            let _ = ast(src); // must not panic or hang
        }
    }
}
