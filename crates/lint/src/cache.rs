//! Incremental lint cache.
//!
//! Linting is per-file and pure — the findings for a file depend only on
//! (file content, rule implementations, policy). The cache exploits that:
//! `target/lint/cache.json` stores per-file findings keyed by a content
//! hash, under a header binding the whole cache to the rules version
//! ([`crate::rules::RULES_VERSION`] plus the rule-id list) and a hash of
//! the policy text. A content touch re-lints exactly the changed file; a
//! rules or policy change discards the cache wholesale and re-lints
//! everything. CI's fast gate runs the linter twice and asserts the warm
//! pass re-analyzes zero files on an unchanged tree.
//!
//! The cache is a plain `nocstar-json` document — readable in a CI
//! artifact viewer, and byte-identical for identical inputs like every
//! other report this workspace emits.

use crate::policy::Severity;
use crate::Finding;
use nocstar_json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content key needs (this is not a security boundary).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cached results for one file at one content hash.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// FNV-1a of the file's bytes when it was linted.
    pub content_hash: u64,
    /// Unsuppressed findings, as reported.
    pub findings: Vec<Finding>,
    /// Justified-suppression findings.
    pub suppressed: Vec<Finding>,
}

/// The on-disk cache: a header binding it to (rules version, policy
/// hash) plus one entry per workspace-relative file path.
#[derive(Debug, Default)]
pub struct Cache {
    /// Rules fingerprint the entries were produced under.
    pub rules_key: String,
    /// FNV-1a of the policy file text.
    pub policy_hash: u64,
    /// Workspace-relative path → entry.
    pub entries: BTreeMap<String, CacheEntry>,
    /// True when entries were usable at load time (header matched).
    warm: bool,
}

/// The rules fingerprint: version string plus the ordered rule-id list,
/// so adding/removing/renaming a rule invalidates the cache even without
/// a version bump.
pub fn rules_key() -> String {
    format!(
        "{}:{}",
        crate::rules::RULES_VERSION,
        crate::rules::rule_ids().join(",")
    )
}

impl Cache {
    /// An empty cache bound to the given policy hash.
    pub fn empty(policy_hash: u64) -> Cache {
        Cache {
            rules_key: rules_key(),
            policy_hash,
            entries: BTreeMap::new(),
            warm: false,
        }
    }

    /// Loads the cache at `path`. A missing, unparsable, or mismatched
    /// cache (different rules fingerprint or policy hash) degrades to an
    /// empty cache — stale results must never be served.
    pub fn load(path: &Path, policy_hash: u64) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::empty(policy_hash);
        };
        let Ok(json) = Json::parse(&text) else {
            return Cache::empty(policy_hash);
        };
        let header_ok = json
            .get("rules_key")
            .and_then(Json::as_str)
            .is_some_and(|k| k == rules_key())
            && json
                .get("policy_hash")
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|h| h == policy_hash);
        if !header_ok {
            return Cache::empty(policy_hash);
        }
        let mut entries = BTreeMap::new();
        if let Some(files) = json.get("files").and_then(Json::as_array) {
            for f in files {
                let Some(path) = f.get("path").and_then(Json::as_str) else {
                    continue;
                };
                let Some(hash) = f
                    .get("content_hash")
                    .and_then(Json::as_str)
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    continue;
                };
                let findings = f
                    .get("findings")
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(finding_from_json).collect())
                    .unwrap_or_default();
                let suppressed = f
                    .get("suppressed")
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(finding_from_json).collect())
                    .unwrap_or_default();
                entries.insert(
                    path.to_string(),
                    CacheEntry {
                        content_hash: hash,
                        findings,
                        suppressed,
                    },
                );
            }
        }
        Cache {
            rules_key: rules_key(),
            policy_hash,
            entries,
            warm: true,
        }
    }

    /// True when the cache was loaded with a matching header (i.e. hits
    /// are possible at all).
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// The cached entry for `rel_path` iff its content hash matches.
    pub fn lookup(&self, rel_path: &str, content_hash: u64) -> Option<&CacheEntry> {
        self.entries
            .get(rel_path)
            .filter(|e| e.content_hash == content_hash)
    }

    /// Records fresh results for a file.
    pub fn insert(
        &mut self,
        rel_path: &str,
        content_hash: u64,
        findings: Vec<Finding>,
        suppressed: Vec<Finding>,
    ) {
        self.entries.insert(
            rel_path.to_string(),
            CacheEntry {
                content_hash,
                findings,
                suppressed,
            },
        );
    }

    /// Serializes and writes the cache to `path` (creating parent
    /// directories).
    ///
    /// # Errors
    ///
    /// An error string naming the unwritable path.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let files: Vec<Json> = self
            .entries
            .iter()
            .map(|(path, e)| {
                Json::obj(vec![
                    ("path", Json::str(path)),
                    ("content_hash", Json::str(e.content_hash.to_string())),
                    (
                        "findings",
                        Json::Arr(e.findings.iter().map(finding_to_json).collect()),
                    ),
                    (
                        "suppressed",
                        Json::Arr(e.suppressed.iter().map(finding_to_json).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("tool", Json::str("nocstar-lint-cache")),
            ("rules_key", Json::str(&self.rules_key)),
            ("policy_hash", Json::str(self.policy_hash.to_string())),
            ("files", Json::Arr(files)),
        ]);
        std::fs::write(path, doc.to_string_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

fn finding_to_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("rule", Json::str(&f.rule)),
        ("severity", Json::str(f.severity.name())),
        ("path", Json::str(f.path.to_string_lossy())),
        ("line", Json::U64(u64::from(f.line))),
        ("message", Json::str(&f.message)),
        ("hint", Json::str(&f.hint)),
    ])
}

fn finding_from_json(j: &Json) -> Option<Finding> {
    Some(Finding {
        rule: j.get("rule")?.as_str()?.to_string(),
        severity: Severity::parse(j.get("severity")?.as_str()?)?,
        path: PathBuf::from(j.get("path")?.as_str()?),
        line: u32::try_from(j.get("line")?.as_u64()?).ok()?,
        message: j.get("message")?.as_str()?.to_string(),
        hint: j.get("hint")?.as_str()?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finding() -> Finding {
        Finding {
            rule: "sim-unwrap".into(),
            severity: Severity::Error,
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            message: "panics".into(),
            hint: "don't".into(),
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("nocstar-lint-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut c = Cache::empty(42);
        c.insert("crates/x/src/a.rs", 99, vec![sample_finding()], vec![]);
        c.save(&path).expect("saves");
        let back = Cache::load(&path, 42);
        assert!(back.is_warm());
        let e = back.lookup("crates/x/src/a.rs", 99).expect("hit");
        assert_eq!(e.findings.len(), 1);
        assert_eq!(e.findings[0].rule, "sim-unwrap");
        assert_eq!(e.findings[0].severity, Severity::Error);
        assert!(
            back.lookup("crates/x/src/a.rs", 100).is_none(),
            "stale hash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_policy_hash_discards_entries() {
        let dir = std::env::temp_dir().join(format!("nocstar-lint-cache2-{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut c = Cache::empty(1);
        c.insert("f.rs", 5, vec![], vec![]);
        c.save(&path).expect("saves");
        let other = Cache::load(&path, 2);
        assert!(!other.is_warm());
        assert!(other.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_garbage_cache_degrades() {
        let c = Cache::load(Path::new("/nonexistent/cache.json"), 1);
        assert!(!c.is_warm());
        let dir = std::env::temp_dir().join(format!("nocstar-lint-cache3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.json");
        std::fs::write(&path, "not json").expect("write");
        assert!(!Cache::load(&path, 1).is_warm());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
